//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use —
//! [`Criterion`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`BatchSize`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`] — with plain `std::time::Instant` timing instead of
//! criterion's statistical machinery. Each bench reports median
//! nanoseconds per iteration over `sample_size` samples.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is grouped (accepted, ignored: every batch
/// runs one iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations, one per sample.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` (one call = one iteration).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh state from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; timing here is per-sample, not
    /// per-window.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; there is no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        b.durations.sort();
        let median = b
            .durations
            .get(b.durations.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "bench {name:<48} median {:>12.1} ns/iter ({} samples)",
            median.as_nanos() as f64,
            b.durations.len()
        );
        self
    }
}

/// Declares a bench group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
