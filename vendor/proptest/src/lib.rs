//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's API this workspace's property
//! tests use: the [`proptest!`] macro, range/string/collection/tuple
//! strategies, `prop_oneof!`/`Just`/`sample::select`,
//! `prop_map`/`prop_flat_map`/`prop_recursive`,
//! `proptest::num::f32::{ANY, NORMAL, SUBNORMAL}`, `any::<T>()` and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, none of which the tests rely on:
//!
//! * generation is deterministic per test (seeded from the case index) —
//!   there is no `PROPTEST_` environment handling;
//! * failing cases are *not* shrunk; the panic reports the raw case;
//! * string "regex" strategies only honour the totality use-case: any
//!   pattern generates printable-ish character soup rather than matching
//!   the pattern language.

pub mod strategy;

pub mod test_runner {
    //! Configuration and the per-test case loop.

    /// Subset of proptest's config: the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline CI fast
            // while preserving the property-test character.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }

        /// Uniform fraction in `[0, 1)`.
        pub fn fraction(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric strategies beyond plain ranges.

    pub mod f32 {
        //! `f32`-specific strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over every `f32` bit pattern (NaNs and infinities
        /// included).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// All possible `f32` values, including NaN and the infinities.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }

        /// Strategy over normal floats (no zeros, denormals, NaNs or
        /// infinities), either sign.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// Normal (in the IEEE-754 sense) `f32` values.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                let sign = (rng.next_u64() & 1) << 31;
                let exponent = 1 + rng.below(254); // 1..=254: normal range
                let mantissa = rng.below(1 << 23);
                f32::from_bits(sign as u32 | (exponent as u32) << 23 | mantissa as u32)
            }
        }

        /// Strategy over subnormal (denormal) floats: zero exponent,
        /// non-zero mantissa, either sign.
        #[derive(Debug, Clone, Copy)]
        pub struct Subnormal;

        /// Subnormal `f32` values (the flush-to-zero edge cases of
        /// GPU-storage formats).
        pub const SUBNORMAL: Subnormal = Subnormal;

        impl Strategy for Subnormal {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                let sign = (rng.next_u64() & 1) << 31;
                let mantissa = 1 + rng.below((1 << 23) - 1);
                f32::from_bits(sign as u32 | mantissa as u32)
            }
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform draw from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        AnyStrategy::<T>(PhantomData).boxed()
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Everything the property tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...)` body runs
/// for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
