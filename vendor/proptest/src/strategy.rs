//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking:
/// `generate` produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value: `f` maps
    /// the value to a new strategy, which produces the final value (e.g.
    /// pick a length, then an index valid for that length).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy behind a cheap-to-clone handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive structures: `expand` receives a strategy for the
    /// previous depth level; generation picks a level at random, so both
    /// shallow and deep values appear.
    ///
    /// `_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored (they tune shrinking in real proptest).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the leaf level").clone();
            levels.push(expand(prev).boxed());
        }
        LevelPick { levels }.boxed()
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union of the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// [`Strategy::prop_recursive`] support: picks a depth level, then
/// generates from it.
struct LevelPick<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for LevelPick<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.levels.len() as u64) as usize;
        self.levels[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as $t;
                self.start.wrapping_add(off)
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_range_inclusive_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as $t;
                self.start().wrapping_add(off)
            }
        }
    )*};
}

impl_range_inclusive_strategy_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.fraction() as f32;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.fraction();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Pattern strategies: any `&str` generates character soup. Only the
/// totality use-case is supported — the pattern is *not* interpreted as a
/// regex (the workspace only ever uses `".*"`-style never-panic tests).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(80) as usize;
        (0..len)
            .map(|_| match rng.below(20) {
                0 => '\n',
                1 => '\t',
                2 => 'λ',
                3 => '€',
                4 => '\u{0}',
                _ => (0x20 + rng.below(0x5f) as u8) as char,
            })
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
