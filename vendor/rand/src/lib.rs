//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the deterministic subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over `Range<f32>` / `Range<usize>` (plus the other
//! primitive integer widths for good measure).
//!
//! The generator is SplitMix64 — a small, well-mixed 64-bit generator —
//! rather than upstream's ChaCha12. Sequences therefore differ from the
//! real `rand` crate, but every consumer in this workspace only relies on
//! determinism (same seed, same sequence), range correctness and rough
//! uniformity, all of which hold.

use std::ops::Range;

/// Core of every generator: a source of 64 random bits.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (`lo < hi` required by callers, as in
    /// the real crate; equal bounds would panic there and do here too).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 24 mantissa bits give a fraction in [0, 1); the product can
        // still round up to `hi`, so guard the half-open contract.
        let frac = (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0);
        let v = lo + (hi - lo) * frac;
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let v = lo + (hi - lo) * frac;
        if v < hi {
            v
        } else {
            lo
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every source of
/// randomness (mirrors the real crate's `Rng: RngCore` extension trait).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for the
    /// real crate's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x1b87_3b94_04b4_82cf,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f), "{f} out of range");
            let i = rng.gen_range(0usize..17);
            assert!(i < 17);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
