pub use brook_auto as core;
