//! # brook-auto-suite — the whole Brook Auto reproduction behind one
//! dependency
//!
//! The facade re-exports the runtime crate (`brook-auto`) and anchors
//! the workspace-level integration tests (`tests/`) and examples
//! (`examples/`):
//!
//! * `tests/backend_equivalence.rs` — the differential matrix: every
//!   registered backend × every paper workload;
//! * `tests/paper_claims.rs` — the paper's qualitative evaluation
//!   claims;
//! * `tests/fault_injection.rs` — the certification argument under
//!   injected faults.
//!
//! See `ARCHITECTURE.md` at the repository root for the layer stack and
//! how to add an execution backend.

pub use brook_auto as core;

pub use brook_auto::{
    registered_backends, Arg, BackendExecutor, BackendSpec, BrookContext, BrookError, BrookModule,
    KernelLaunch,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_the_runtime() {
        let ctx = crate::BrookContext::cpu();
        assert_eq!(ctx.backend_name(), "cpu");
        assert_eq!(crate::registered_backends().len(), 4);
    }
}
