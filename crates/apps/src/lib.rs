//! # brook-apps — the Brook+ reference application suite
//!
//! The paper's evaluation (§6) uses the reference applications shipped
//! with AMD's Brook+ release: "financial algorithms (Binomial Option
//! Pricing and Black Scholes), matrix operations (SpMV and sgemm),
//! sorting and binary searching, image filtering and fractal generation
//! (mandelbrot), prefix sum and a graph processing algorithm (Floyd
//! Warshall)", plus the `flops` capability benchmark of Figure 1.
//!
//! Every application follows the paper's structure: seeded, size-
//! parametrized input generation; a CPU reference implementation used to
//! validate the GPU output; and statistics reporting through
//! [`framework::measure`], which feeds the `perf-model` timing models
//! with counters measured by the `gles2-sim` substrate.

pub mod binary_search;
pub mod binomial;
pub mod bitonic_sort;
pub mod black_scholes;
pub mod flops;
pub mod floyd_warshall;
pub mod framework;
pub mod image_filter;
pub mod mandelbrot;
pub mod prefix_sum;
pub mod sgemm;
pub mod spmv;

pub use framework::{
    measure, registered_backends, run_backend_matrix, BackendRun, BackendSpec, MeasuredPoint, PaperApp,
    PlatformKind,
};

/// All eleven applications, in the order the figures present them.
pub fn all_apps() -> Vec<Box<dyn PaperApp>> {
    vec![
        Box::new(flops::Flops::default()),
        Box::new(binomial::Binomial),
        Box::new(black_scholes::BlackScholes),
        Box::new(prefix_sum::PrefixSum),
        Box::new(spmv::Spmv),
        Box::new(binary_search::BinarySearch),
        Box::new(bitonic_sort::BitonicSort),
        Box::new(floyd_warshall::FloydWarshall),
        Box::new(image_filter::ImageFilter::default()),
        Box::new(mandelbrot::Mandelbrot),
        Box::new(sgemm::Sgemm),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_apps() {
        let apps = all_apps();
        assert_eq!(apps.len(), 11);
        let names: Vec<_> = apps.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"flops"));
        assert!(names.contains(&"sgemm"));
        assert!(names.contains(&"floyd_warshall"));
    }
}
