//! Bitonic sort (paper Figure 3b): a data-independent sorting network
//! executed as repeated kernel invocations over the same GPU-resident
//! data — no transfers between passes, hence the paper's 135x speedup at
//! 256² elements. The Brook+ CPU reference is the naive quadratic sort
//! (the paper notes it "takes several hours" beyond 256²).

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// Bitonic sort of `size * size` elements.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitonicSort;

/// One compare-exchange pass of the bitonic network. GLSL ES 1.00 has no
/// integer bitwise operators, so the classic `i XOR d` partner and the
/// direction bit are derived with `fmod`/`floor` float arithmetic — all
/// quantities stay below 2^24 and remain exact.
pub const KERNEL: &str = "
kernel void bitonic_step(float a<>, float data[], float d, float blk, out float o<>) {
    float2 pp = indexof(o);
    float i = pp.x;
    float bit = fmod(floor(i / d), 2.0);
    float partner = (bit < 0.5) ? (i + d) : (i - d);
    float mine = a;
    float theirs = data[partner];
    float dirbit = fmod(floor(i / blk), 2.0);
    bool keep_min = (bit < 0.5) == (dirbit < 0.5);
    o = keep_min ? min(mine, theirs) : max(mine, theirs);
}
";

/// Pass schedule: (distance, direction block) pairs for `n = 2^m`.
pub fn schedule(n: usize) -> Vec<(f32, f32)> {
    assert!(n.is_power_of_two(), "bitonic sort requires a power-of-two length");
    let m = n.trailing_zeros();
    let mut passes = Vec::new();
    for stage in 0..m {
        for sub in (0..=stage).rev() {
            passes.push((2f32.powi(sub as i32), 2f32.powi(stage as i32 + 1)));
        }
    }
    passes
}

impl PaperApp for BitonicSort {
    fn name(&self) -> &'static str {
        "bitonic_sort"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        // The paper reports up to 256² ("for larger inputs ... the CPU
        // version takes several hours").
        vec![64, 128, 256]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(KERNEL)?;
        let n = size * size;
        let values = gen_values(seed, n, 0.0, 1e6);
        let mut ping = ctx.stream(&[n])?;
        let mut pong = ctx.stream(&[n])?;
        ctx.write(&ping, &values)?;
        for (d, blk) in schedule(n) {
            ctx.run(
                &module,
                "bitonic_step",
                &[
                    Arg::Stream(&ping),
                    Arg::Stream(&ping),
                    Arg::Float(d),
                    Arg::Float(blk),
                    Arg::Stream(&pong),
                ],
            )?;
            std::mem::swap(&mut ping, &mut pong);
        }
        ctx.read(&ping)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let mut values = gen_values(seed, size * size, 0.0, 1e6);
        values.sort_by(f32::total_cmp);
        values
    }

    fn cpu_cost(&self, size: usize, _vectorized: bool) -> CpuRun {
        // The Brook+ sample's CPU baseline is a naive O(n²) exchange sort
        // (consistent with the paper's "several hours" remark).
        let n = (size * size) as u64;
        let mut run = CpuRun::with_ops(n * n / 2 * 3);
        run.phases.push(MemPhase {
            accesses: n * n / 2,
            access_bytes: 4,
            working_set: n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        48
    }

    fn matrix_size(&self) -> usize {
        // The network length (size^2) must be a power of two.
        32
    }

    fn tolerance(&self) -> f32 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn sorts_on_gpu_and_matches_reference() {
        let point = measure(&BitonicSort, PlatformKind::Target, 16, 5).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn schedule_has_m_m_plus_1_over_2_passes() {
        assert_eq!(schedule(16).len(), 4 * 5 / 2);
        assert_eq!(schedule(65536).len(), 16 * 17 / 2);
    }

    #[test]
    fn no_transfers_between_passes() {
        let mut ctx = BrookContext::gles2(brook_auto::DeviceProfile::videocore_iv());
        let out = BitonicSort.run_gpu(&mut ctx, 16, 1).expect("run");
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let counters = ctx.gpu_counters();
        // One upload, one readback, many draws.
        assert_eq!(counters.bytes_uploaded, 256 * 4);
        assert_eq!(counters.draw_calls as usize, schedule(256).len());
    }

    #[test]
    fn quadratic_cpu_cost() {
        let c64 = BitonicSort.cpu_cost(64, false);
        let c128 = BitonicSort.cpu_cost(128, false);
        // 4x elements -> 16x ops.
        assert_eq!(c128.ops / c64.ops, 16);
    }
}
