//! 3x3 image filtering (paper Figure 3d): low arithmetic intensity
//! convolution that starts paying off on the GPU above 512x512 pixels,
//! reaching ~2.5x in the paper.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun};

/// 3x3 convolution benchmark. The default kernel is a Gaussian blur;
/// [`SOBEL_X`] is used by the ADAS example.
#[derive(Debug, Clone, Copy)]
pub struct ImageFilter {
    /// Convolution weights, row-major.
    pub weights: [f32; 9],
}

/// Gaussian 3x3 blur weights.
pub const GAUSSIAN: [f32; 9] = [
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    4.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
];

/// Horizontal Sobel edge-detection weights.
pub const SOBEL_X: [f32; 9] = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];

impl Default for ImageFilter {
    fn default() -> Self {
        ImageFilter { weights: GAUSSIAN }
    }
}

/// The Brook kernel: 9 gather reads around `indexof`; edge pixels clamp
/// through the texture unit (paper §4) — no boundary branches needed.
pub const KERNEL: &str = "
kernel void conv3x3(float img[][], float4 wa, float4 wb, float wc, out float o<>) {
    float2 p = indexof(o);
    float acc = img[p.y - 1.0][p.x - 1.0] * wa.x
              + img[p.y - 1.0][p.x]       * wa.y
              + img[p.y - 1.0][p.x + 1.0] * wa.z
              + img[p.y]      [p.x - 1.0] * wa.w
              + img[p.y]      [p.x]       * wb.x
              + img[p.y]      [p.x + 1.0] * wb.y
              + img[p.y + 1.0][p.x - 1.0] * wb.z
              + img[p.y + 1.0][p.x]       * wb.w
              + img[p.y + 1.0][p.x + 1.0] * wc;
    o = acc;
}
";

/// Reference convolution with clamped borders, identical op order.
pub fn convolve(img: &[f32], size: usize, w: &[f32; 9]) -> Vec<f32> {
    let clamp = |v: i64| v.clamp(0, size as i64 - 1) as usize;
    let mut out = Vec::with_capacity(size * size);
    for y in 0..size as i64 {
        for x in 0..size as i64 {
            let px = |dy: i64, dx: i64| img[clamp(y + dy) * size + clamp(x + dx)];
            let acc = px(-1, -1) * w[0]
                + px(-1, 0) * w[1]
                + px(-1, 1) * w[2]
                + px(0, -1) * w[3]
                + px(0, 0) * w[4]
                + px(0, 1) * w[5]
                + px(1, -1) * w[6]
                + px(1, 0) * w[7]
                + px(1, 1) * w[8];
            out.push(acc);
        }
    }
    out
}

impl PaperApp for ImageFilter {
    fn name(&self) -> &'static str {
        "image_filter"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(KERNEL)?;
        let img = gen_values(seed, size * size, 0.0, 1.0);
        let src = ctx.stream(&[size, size])?;
        let dst = ctx.stream(&[size, size])?;
        ctx.write(&src, &img)?;
        let w = &self.weights;
        ctx.run(
            &module,
            "conv3x3",
            &[
                Arg::Stream(&src),
                Arg::Float4([w[0], w[1], w[2], w[3]]),
                Arg::Float4([w[4], w[5], w[6], w[7]]),
                Arg::Float(w[8]),
                Arg::Stream(&dst),
            ],
        )?;
        ctx.read(&dst)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let img = gen_values(seed, size * size, 0.0, 1.0);
        convolve(&img, size, &self.weights)
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let n = (size * size) as u64;
        // 9 multiply-adds plus index arithmetic per pixel.
        let mut run = CpuRun::with_ops(n * 22);
        run.vectorized = vectorized;
        run.phases.push(perf_model::MemPhase {
            accesses: 10 * n,
            access_bytes: 4,
            working_set: 2 * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&ImageFilter::default(), PlatformKind::Target, 16, 11).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = vec![0.5f32; 64];
        let out = convolve(&img, 8, &GAUSSIAN);
        for v in out {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn sobel_finds_vertical_edge() {
        // Left half 0, right half 1: strong response at the boundary.
        let size = 8;
        let img: Vec<f32> = (0..size * size)
            .map(|i| if i % size >= size / 2 { 1.0 } else { 0.0 })
            .collect();
        let out = convolve(&img, size, &SOBEL_X);
        let boundary = out[3 * size + size / 2 - 1];
        assert!(boundary.abs() > 2.0, "edge response {boundary}");
        assert_eq!(out[3 * size + 1], 0.0, "flat region must be zero");
    }
}
