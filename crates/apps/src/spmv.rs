//! Sparse matrix-vector multiplication (paper Figure 2d): a series of
//! small O(n) kernels where transfers dominate at the explored sizes.
//! The target tops out at n = 1024 because the decompressed matrix hits
//! the 2048 texture limit (paper §6.1); the reference reaches 2048.

use crate::framework::{gen_indices, gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// Nonzeros per row of the ELLPACK-compressed matrix.
pub const NNZ_PER_ROW: usize = 8;

/// SpMV benchmark: `y = M * x` for an `n x n` matrix with
/// [`NNZ_PER_ROW`] nonzeros per row, `n = size`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spmv;

/// The Brook kernel: values and column indices as rank-2 gathers, the
/// dense vector as a rank-1 gather.
pub fn kernel_source() -> String {
    format!(
        "kernel void spmv(float vals[][], float cols[][], float x[], out float y<>) {{
             float2 p = indexof(y);
             float row = p.x;
             float sum = 0.0;
             int k;
             for (k = 0; k < {NNZ_PER_ROW}; k++) {{
                 float c = cols[row][float(k)];
                 sum += vals[row][float(k)] * x[c];
             }}
             y = sum;
         }}"
    )
}

/// Workload matrices: values, column indices (as floats) and the vector.
pub fn inputs(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let vals = gen_values(seed, n * NNZ_PER_ROW, -1.0, 1.0);
    let cols: Vec<f32> = gen_indices(seed, n * NNZ_PER_ROW, n)
        .iter()
        .map(|c| *c as f32)
        .collect();
    let x = gen_values(seed + 2, n, -1.0, 1.0);
    (vals, cols, x)
}

/// Reference SpMV, identical association order.
pub fn spmv_cpu(vals: &[f32], cols: &[f32], x: &[f32], n: usize) -> Vec<f32> {
    (0..n)
        .map(|row| {
            let mut sum = 0.0f32;
            for k in 0..NNZ_PER_ROW {
                let c = cols[row * NNZ_PER_ROW + k] as usize;
                sum += vals[row * NNZ_PER_ROW + k] * x[c];
            }
            sum
        })
        .collect()
}

impl PaperApp for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn sizes(&self, platform: PlatformKind) -> Vec<usize> {
        match platform {
            // "the maximum input value for our implementation is 1024 ...
            // when decompressed it reaches the maximum texture limit"
            PlatformKind::Target => vec![128, 256, 512, 1024],
            PlatformKind::Reference => vec![128, 256, 512, 1024, 2048],
        }
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(&kernel_source())?;
        let (vals, cols, x) = inputs(size, seed);
        let v = ctx.stream(&[size, NNZ_PER_ROW])?;
        let c = ctx.stream(&[size, NNZ_PER_ROW])?;
        let xv = ctx.stream(&[size])?;
        let y = ctx.stream(&[size])?;
        ctx.write(&v, &vals)?;
        ctx.write(&c, &cols)?;
        ctx.write(&xv, &x)?;
        ctx.run(
            &module,
            "spmv",
            &[
                Arg::Stream(&v),
                Arg::Stream(&c),
                Arg::Stream(&xv),
                Arg::Stream(&y),
            ],
        )?;
        ctx.read(&y)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let (vals, cols, x) = inputs(size, seed);
        spmv_cpu(&vals, &cols, &x, size)
    }

    fn cpu_cost(&self, size: usize, _vectorized: bool) -> CpuRun {
        let n = size as u64;
        let nnz = n * NNZ_PER_ROW as u64;
        let mut run = CpuRun::with_ops(3 * nnz);
        run.phases.push(MemPhase {
            accesses: 2 * nnz,
            access_bytes: 4,
            working_set: 2 * nnz * 4,
            pattern: AccessPattern::Sequential,
        });
        // Gathers into x are data-dependent.
        run.phases.push(MemPhase {
            accesses: nnz,
            access_bytes: 4,
            working_set: n * 4,
            pattern: AccessPattern::Random,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        // SpMV's size axis is n (not n²); full dispatch stays cheap.
        1024
    }

    fn tolerance(&self) -> f32 {
        1e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&Spmv, PlatformKind::Target, 64, 77).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn target_sizes_capped_at_1024() {
        assert_eq!(Spmv.sizes(PlatformKind::Target).last(), Some(&1024));
        assert_eq!(Spmv.sizes(PlatformKind::Reference).last(), Some(&2048));
    }

    #[test]
    fn reference_spmv_known_result() {
        // 2x2-ish: row 0 gathers x[1] with weight 2; row 1 gathers x[0]
        // with weight 3 (remaining slots zero weight).
        let n = 2;
        let mut vals = vec![0.0f32; n * NNZ_PER_ROW];
        let mut cols = vec![0.0f32; n * NNZ_PER_ROW];
        vals[0] = 2.0;
        cols[0] = 1.0;
        vals[NNZ_PER_ROW] = 3.0;
        cols[NNZ_PER_ROW] = 0.0;
        let x = vec![10.0, 20.0];
        assert_eq!(spmv_cpu(&vals, &cols, &x, n), vec![40.0, 30.0]);
    }
}
