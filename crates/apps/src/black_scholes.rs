//! Black-Scholes European option pricing (paper Figure 2b): elementwise,
//! transcendental-heavy, streaming pattern — the class of kernels the
//! paper found CPU-favourable on both platforms at the explored sizes.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun};

/// Risk-free rate used by the workload.
pub const RATE: f32 = 0.02;
/// Volatility used by the workload.
pub const VOLATILITY: f32 = 0.30;

/// Black-Scholes benchmark over `size x size` options.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackScholes;

/// The Brook source: a `cnd` helper (Abramowitz-Stegun cumulative normal
/// distribution) plus the pricing kernel.
pub const KERNEL: &str = "
float cnd(float x) {
    float l = abs(x);
    float k = 1.0 / (1.0 + 0.2316419 * l);
    float k2 = k * k;
    float k3 = k2 * k;
    float k4 = k2 * k2;
    float k5 = k4 * k;
    float poly = 0.31938153 * k - 0.356563782 * k2 + 1.781477937 * k3
               - 1.821255978 * k4 + 1.330274429 * k5;
    float w = 1.0 - 0.39894228 * exp(-0.5 * l * l) * poly;
    if (x < 0.0) { w = 1.0 - w; }
    return w;
}

kernel void black_scholes(float s<>, float k<>, float t<>, float r, float v, out float call<>) {
    float sq = v * sqrt(t);
    float d1 = (log(s / k) + (r + 0.5 * v * v) * t) / sq;
    float d2 = d1 - sq;
    call = s * cnd(d1) - k * exp(-r * t) * cnd(d2);
}
";

/// Reference scalar implementation (identical operation order).
pub fn price(s: f32, k: f32, t: f32, r: f32, v: f32) -> f32 {
    fn cnd(x: f32) -> f32 {
        let l = x.abs();
        let k = 1.0 / (1.0 + 0.2316419 * l);
        let k2 = k * k;
        let k3 = k2 * k;
        let k4 = k2 * k2;
        let k5 = k4 * k;
        #[allow(clippy::excessive_precision)]
        let poly = 0.31938153 * k - 0.356563782 * k2 + 1.781477937 * k3 - 1.821255978 * k4 + 1.330274429 * k5;
        #[allow(clippy::excessive_precision)]
        let w = 1.0 - 0.39894228 * (-0.5 * l * l).exp() * poly;
        if x < 0.0 {
            1.0 - w
        } else {
            w
        }
    }
    let sq = v * t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / sq;
    let d2 = d1 - sq;
    s * cnd(d1) - k * (-r * t).exp() * cnd(d2)
}

fn inputs(size: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = size * size;
    (
        gen_values(seed, n, 10.0, 100.0),     // spot
        gen_values(seed + 1, n, 10.0, 100.0), // strike
        gen_values(seed + 2, n, 0.2, 2.0),    // expiry
    )
}

impl PaperApp for BlackScholes {
    fn name(&self) -> &'static str {
        "black_scholes"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(KERNEL)?;
        let (sv, kv, tv) = inputs(size, seed);
        let s = ctx.stream(&[size, size])?;
        let k = ctx.stream(&[size, size])?;
        let t = ctx.stream(&[size, size])?;
        let call = ctx.stream(&[size, size])?;
        ctx.write(&s, &sv)?;
        ctx.write(&k, &kv)?;
        ctx.write(&t, &tv)?;
        ctx.run(
            &module,
            "black_scholes",
            &[
                Arg::Stream(&s),
                Arg::Stream(&k),
                Arg::Stream(&t),
                Arg::Float(RATE),
                Arg::Float(VOLATILITY),
                Arg::Stream(&call),
            ],
        )?;
        ctx.read(&call)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let (sv, kv, tv) = inputs(size, seed);
        sv.iter()
            .zip(&kv)
            .zip(&tv)
            .map(|((s, k), t)| price(*s, *k, *t, RATE, VOLATILITY))
            .collect()
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let n = (size * size) as u64;
        // Per option: 2 exp (~25 ops each as libm polynomials), 1 log, 1
        // sqrt (~15), plus ~45 arithmetic ops in cnd x2 and the formula.
        let ops_per_option = 2 * 25 + 25 + 15 + 45;
        let mut run = CpuRun::with_ops(n * ops_per_option);
        run.vectorized = vectorized;
        run.phases.push(perf_model::MemPhase {
            accesses: 4 * n,
            access_bytes: 4,
            working_set: 4 * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        32
    }

    fn tolerance(&self) -> f32 {
        1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&BlackScholes, PlatformKind::Target, 16, 3).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn validates_on_reference() {
        let point = measure(&BlackScholes, PlatformKind::Reference, 16, 3).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn prices_are_sane() {
        // Deep in-the-money call is worth roughly spot - strike.
        let p = price(100.0, 10.0, 1.0, RATE, VOLATILITY);
        assert!((p - (100.0 - 10.0 * (-RATE).exp())).abs() < 1.0, "price {p}");
        // Far out-of-the-money call is nearly worthless.
        assert!(price(10.0, 100.0, 0.2, RATE, VOLATILITY) < 0.01);
    }
}
