//! Single-precision matrix-matrix multiplication (paper Figures 3f and
//! 4): the classic GPGPU workload, reaching ~11x in the paper's Brook
//! Auto backend and serving as the productivity comparison against a
//! hand-written OpenGL ES 2 implementation.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// `size x size` matrix multiplication.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgemm;

/// The Brook kernel for a given dimension: the loop bound is manifest in
/// the source (the runtime regenerates the kernel per configuration) so
/// BA003 can deduce the trip count. This mirrors the paper's Brook
/// version — ~70 lines including driver code, written in hours, versus
/// 1500 lines over a year for the hand-tuned GL version (§6.3).
pub fn kernel_source(n: usize) -> String {
    format!(
        "kernel void sgemm(float a[][], float b[][], out float c<>) {{
             float2 p = indexof(c);
             float sum = 0.0;
             int k;
             for (k = 0; k < {n}; k++) {{
                 sum += a[p.y][float(k)] * b[float(k)][p.x];
             }}
             c = sum;
         }}"
    )
}

/// Reference triple loop in the same association order as the kernel.
pub fn matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0f32;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

impl PaperApp for Sgemm {
    fn name(&self) -> &'static str {
        "sgemm"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(&kernel_source(size))?;
        let av = gen_values(seed, size * size, -1.0, 1.0);
        let bv = gen_values(seed + 1, size * size, -1.0, 1.0);
        let a = ctx.stream(&[size, size])?;
        let b = ctx.stream(&[size, size])?;
        let c = ctx.stream(&[size, size])?;
        ctx.write(&a, &av)?;
        ctx.write(&b, &bv)?;
        ctx.run(
            &module,
            "sgemm",
            &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)],
        )?;
        ctx.read(&c)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let av = gen_values(seed, size * size, -1.0, 1.0);
        let bv = gen_values(seed + 1, size * size, -1.0, 1.0);
        matmul(&av, &bv, size)
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let n = size as u64;
        let mut run = CpuRun::with_ops(2 * n * n * n);
        run.vectorized = vectorized;
        // A walks rows sequentially; B walks columns (stride n), which is
        // effectively random once the matrix exceeds the cache.
        run.phases.push(MemPhase {
            accesses: n * n * n,
            access_bytes: 4,
            working_set: n * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run.phases.push(MemPhase {
            accesses: n * n * n,
            access_bytes: 4,
            working_set: n * n * 4,
            pattern: AccessPattern::Random,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        24
    }

    fn tolerance(&self) -> f32 {
        // n accumulated products; identical association order keeps the
        // difference at rounding noise.
        1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&Sgemm, PlatformKind::Target, 16, 21).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn validates_on_reference() {
        let point = measure(&Sgemm, PlatformKind::Reference, 16, 21).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn identity_times_x_is_x() {
        let n = 4;
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let x: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(matmul(&ident, &x, n), x);
    }

    #[test]
    fn kernel_source_embeds_bound() {
        assert!(kernel_source(256).contains("k < 256"));
    }
}
