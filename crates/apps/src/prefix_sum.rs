//! Prefix sum / scan (paper Figure 2c): a multipass kernel with low
//! arithmetic intensity whose data movement dominates, against a CPU
//! baseline that is "extremely efficient ... a simple accumulation loop".

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// Inclusive prefix sum over `size * size` elements.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixSum;

/// One Hillis-Steele scan step: `o[i] = a[i] + a[i - offset]` for
/// `i >= offset`.
pub const KERNEL: &str = "
kernel void scan_step(float a<>, float src[], float offset, out float o<>) {
    float2 p = indexof(o);
    float i = p.x;
    float v = a;
    if (i >= offset) {
        v = v + src[i - offset];
    }
    o = v;
}
";

impl PaperApp for PrefixSum {
    fn name(&self) -> &'static str {
        "prefix_sum"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(KERNEL)?;
        let n = size * size;
        let values = gen_values(seed, n, 0.0, 1.0);
        let mut ping = ctx.stream(&[n])?;
        let mut pong = ctx.stream(&[n])?;
        ctx.write(&ping, &values)?;
        let mut offset = 1usize;
        while offset < n {
            ctx.run(
                &module,
                "scan_step",
                &[
                    Arg::Stream(&ping),
                    Arg::Stream(&ping),
                    Arg::Float(offset as f32),
                    Arg::Stream(&pong),
                ],
            )?;
            std::mem::swap(&mut ping, &mut pong);
            offset *= 2;
        }
        ctx.read(&ping)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        // The CPU reference matches the GPU's floating-point association
        // (Hillis-Steele combines in tree order); replicate it so the
        // comparison is exact at validation sizes.
        let n = size * size;
        let mut cur = gen_values(seed, n, 0.0, 1.0);
        let mut next = vec![0.0f32; n];
        let mut offset = 1usize;
        while offset < n {
            for i in 0..n {
                next[i] = if i >= offset {
                    cur[i] + cur[i - offset]
                } else {
                    cur[i]
                };
            }
            std::mem::swap(&mut cur, &mut next);
            offset *= 2;
        }
        cur
    }

    fn cpu_cost(&self, size: usize, _vectorized: bool) -> CpuRun {
        // The *benchmark's* CPU baseline is the serial accumulation loop
        // (paper §6.1), not the tree scan used for validation.
        let n = (size * size) as u64;
        let mut run = CpuRun::with_ops(n);
        run.phases.push(MemPhase {
            accesses: 2 * n,
            access_bytes: 4,
            working_set: 2 * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        48
    }

    fn tolerance(&self) -> f32 {
        1e-4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&PrefixSum, PlatformKind::Target, 16, 2).expect("measure");
        assert!(point.validated);
        // log2(256) = 8 passes.
        assert_eq!(point.gpu.draw_calls, 8);
    }

    #[test]
    fn cpu_reference_is_a_prefix_sum() {
        let out = PrefixSum.run_cpu(4, 123);
        let inputs = gen_values(123, 16, 0.0, 1.0);
        let mut acc = 0.0f64;
        for (i, v) in out.iter().enumerate() {
            acc += inputs[i] as f64;
            assert!((*v as f64 - acc).abs() < 1e-3, "element {i}: {v} vs {acc}");
        }
    }

    #[test]
    fn cpu_cost_is_linear() {
        let a = PrefixSum.cpu_cost(128, false);
        let b = PrefixSum.cpu_cost(256, false);
        assert_eq!(b.ops / a.ops, 4);
    }
}
