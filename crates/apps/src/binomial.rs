//! Binomial option pricing (paper Figure 2a): backward induction over a
//! binomial lattice, executed as one GPU pass per step. Computationally
//! intensive but stream-heavy — the paper's canonical example of a
//! kernel that stays below CPU performance at the explored sizes (< 20%)
//! while trending upward.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// Lattice depth (steps); fixed while the number of options sweeps.
pub const STEPS: usize = 64;
/// Up-move factor per step.
pub const UP: f32 = 1.05;
/// Down-move factor per step.
pub const DOWN: f32 = 1.0 / 1.05;
/// Risk-neutral up probability (with discounting folded in).
pub const PU: f32 = 0.502;
/// Complement probability with discounting.
pub const PD: f32 = 0.4968;

/// Binomial pricing of `size` options over a [`STEPS`]-step lattice.
#[derive(Debug, Clone, Copy, Default)]
pub struct Binomial;

/// Terminal-payoff and backward-induction kernels. The lattice lives in
/// an `options x (STEPS+1)` stream; strikes and spots are rank-1 gathers
/// indexed by the option row.
pub fn kernel_source() -> String {
    format!(
        "kernel void binom_init(float strikes[], float spots[], out float v<>) {{
             float2 p = indexof(v);
             float st = spots[p.y] * pow({UP}, p.x) * pow({DOWN}, {steps}.0 - p.x);
             v = max(st - strikes[p.y], 0.0);
         }}

         kernel void binom_step(float vin<>, float lat[][], out float vout<>) {{
             float2 p = indexof(vout);
             vout = {PU} * lat[p.y][p.x + 1.0] + {PD} * lat[p.y][p.x];
         }}",
        steps = STEPS
    )
}

fn inputs(options: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    (
        gen_values(seed, options, 40.0, 60.0),     // strikes
        gen_values(seed + 1, options, 40.0, 60.0), // spots
    )
}

/// Reference pricer: identical lattice arithmetic per option.
pub fn price_cpu(strike: f32, spot: f32) -> f32 {
    let mut lattice = [0.0f32; STEPS + 1];
    for (j, v) in lattice.iter_mut().enumerate() {
        let st = spot * UP.powf(j as f32) * DOWN.powf(STEPS as f32 - j as f32);
        *v = (st - strike).max(0.0);
    }
    for _step in 0..STEPS {
        for j in 0..STEPS {
            lattice[j] = PU * lattice[j + 1] + PD * lattice[j];
        }
    }
    lattice[0]
}

impl PaperApp for Binomial {
    fn name(&self) -> &'static str {
        "binomial"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let options = size;
        let module = ctx.compile(&kernel_source())?;
        let (strikes, spots) = inputs(options, seed);
        let sk = ctx.stream(&[options])?;
        let sp = ctx.stream(&[options])?;
        ctx.write(&sk, &strikes)?;
        ctx.write(&sp, &spots)?;
        let mut ping = ctx.stream(&[options, STEPS + 1])?;
        let mut pong = ctx.stream(&[options, STEPS + 1])?;
        ctx.run(
            &module,
            "binom_init",
            &[Arg::Stream(&sk), Arg::Stream(&sp), Arg::Stream(&ping)],
        )?;
        for _ in 0..STEPS {
            ctx.run(
                &module,
                "binom_step",
                &[Arg::Stream(&ping), Arg::Stream(&ping), Arg::Stream(&pong)],
            )?;
            std::mem::swap(&mut ping, &mut pong);
        }
        // Column 0 of each option row is the price.
        let lattice = ctx.read(&ping)?;
        Ok((0..options).map(|o| lattice[o * (STEPS + 1)]).collect())
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let (strikes, spots) = inputs(size, seed);
        strikes
            .iter()
            .zip(&spots)
            .map(|(k, s)| price_cpu(*k, *s))
            .collect()
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let options = size as u64;
        let steps = STEPS as u64;
        // Terminal setup: ~20 ops per node (pow); induction: 3 ops per
        // node per step. The per-option lattice (260 B) lives in L1 —
        // the cache effectiveness the paper credits the CPU with.
        let mut run = CpuRun::with_ops(options * ((steps + 1) * 20 + steps * steps * 3));
        run.vectorized = vectorized;
        run.phases.push(MemPhase {
            accesses: options * steps * steps,
            access_bytes: 4,
            working_set: (steps + 1) * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        64
    }

    fn tolerance(&self) -> f32 {
        // 64 accumulation steps; pow() on the init path differs by a few
        // ulps between libm and the interpreter.
        2e-2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&Binomial, PlatformKind::Target, 16, 13).expect("measure");
        assert!(point.validated);
        // init + STEPS induction passes.
        assert_eq!(point.gpu.draw_calls as usize, 1 + STEPS);
    }

    #[test]
    fn deep_in_the_money_approximates_intrinsic() {
        let p = price_cpu(10.0, 60.0);
        assert!((49.0..=52.0).contains(&p), "price {p}");
    }

    #[test]
    fn worthless_when_spot_far_below_strike() {
        assert!(price_cpu(1000.0, 10.0) < 1e-3);
    }

    #[test]
    fn price_increases_with_spot() {
        let lo = price_cpu(50.0, 45.0);
        let hi = price_cpu(50.0, 55.0);
        assert!(hi > lo);
    }
}
