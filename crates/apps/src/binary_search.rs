//! Parallel binary search (paper Figure 3a): size² keys searched in a
//! sorted array of size² elements. CPU-favourable while the array's hot
//! tree levels fit the cache; the GPU takes over at 2048² (2.16x in the
//! paper) because all searches run in parallel.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase, Platform};

/// Binary-search benchmark: `size * size` keys over `size * size` sorted
/// values.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinarySearch;

/// The Brook kernel: a fixed 22-iteration loop (`ceil(log2(2048^2))`)
/// with an inner guard so converged searches stay put — the "trivially
/// modified ... enforcing maximum loop counts" pattern of paper §6.
pub const KERNEL: &str = "
kernel void bsearch(float key<>, float data[], float n, out float o<>) {
    float lo = 0.0;
    float hi = n;
    int i;
    for (i = 0; i < 22; i++) {
        if (lo < hi) {
            float mid = floor((lo + hi) * 0.5);
            float v = data[mid];
            if (v < key) { lo = mid + 1.0; } else { hi = mid; }
        }
    }
    o = lo;
}
";

fn sorted_data(size: usize, seed: u64) -> Vec<f32> {
    let mut v = gen_values(seed, size * size, 0.0, 1e6);
    v.sort_by(f32::total_cmp);
    v
}

fn keys(size: usize, seed: u64) -> Vec<f32> {
    gen_values(seed + 1, size * size, 0.0, 1e6)
}

/// Lower-bound search mirroring the kernel exactly (same float
/// arithmetic, fixed trip count with guard).
pub fn lower_bound(data: &[f32], key: f32) -> f32 {
    let mut lo = 0.0f32;
    let mut hi = data.len() as f32;
    for _ in 0..22 {
        if lo < hi {
            let mid = ((lo + hi) * 0.5).floor();
            let v = data[mid as usize];
            if v < key {
                lo = mid + 1.0;
            } else {
                hi = mid;
            }
        }
    }
    lo
}

impl PaperApp for BinarySearch {
    fn name(&self) -> &'static str {
        "binary_search"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(KERNEL)?;
        let n = size * size;
        let data = sorted_data(size, seed);
        let kv = keys(size, seed);
        let d = ctx.stream(&[n])?;
        let k = ctx.stream(&[n])?;
        let o = ctx.stream(&[n])?;
        ctx.write(&d, &data)?;
        ctx.write(&k, &kv)?;
        ctx.run(
            &module,
            "bsearch",
            &[
                Arg::Stream(&k),
                Arg::Stream(&d),
                Arg::Float(n as f32),
                Arg::Stream(&o),
            ],
        )?;
        ctx.read(&o)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let data = sorted_data(size, seed);
        keys(size, seed).iter().map(|k| lower_bound(&data, *k)).collect()
    }

    fn cpu_cost(&self, size: usize, _vectorized: bool) -> CpuRun {
        // Tree-level cache model: the upper levels of the implicit search
        // tree are shared by all searches and stay cached; only the last
        // `log2(working_set / l2)` levels miss. This is what produces the
        // paper's cache-boundary crossover (§6.2). The boundary constant
        // comes from the reference platform's L2 (both platforms show the
        // same crossover shape in Figure 3a).
        let n = (size * size) as u64;
        let levels = 22u64;
        let working_set = n * 4;
        let l2 = Platform::reference().mem.l2_bytes;
        let cold_levels = if working_set > l2 {
            (working_set as f64 / l2 as f64).log2().ceil() as u64
        } else {
            0
        }
        .min(levels);
        let hot_levels = levels - cold_levels;
        let mut run = CpuRun::with_ops(n * levels * 5);
        run.phases.push(MemPhase {
            accesses: n * hot_levels,
            access_bytes: 4,
            // Hot levels are cache-resident on either platform.
            working_set: (32 * 1024).min(working_set),
            pattern: AccessPattern::Random,
        });
        run.phases.push(MemPhase {
            accesses: n * cold_levels,
            access_bytes: 4,
            working_set,
            pattern: AccessPattern::Random,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        32
    }

    fn tolerance(&self) -> f32 {
        // Results are indices: must match exactly.
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&BinarySearch, PlatformKind::Target, 16, 9).expect("measure");
        assert!(point.validated);
    }

    #[test]
    fn lower_bound_matches_std() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 2.0).collect();
        for key in [0.0f32, 1.0, 2.0, 55.0, 197.9, 198.0, 500.0] {
            let ours = lower_bound(&data, key) as usize;
            let std = data.partition_point(|v| *v < key);
            assert_eq!(ours, std, "key {key}");
        }
    }

    #[test]
    fn cold_levels_grow_with_size() {
        let app = BinarySearch;
        let small = app.cpu_cost(256, false);
        let large = app.cpu_cost(2048, false);
        let cold = |r: &CpuRun| r.phases[1].accesses;
        assert!(cold(&large) / (2048u64 * 2048) > cold(&small) / (256u64 * 256));
    }
}
