//! Floyd-Warshall all-pairs shortest paths (paper Figure 3c): n GPU
//! passes over an n x n distance matrix. The kernel produces *two*
//! outputs (distance and predecessor), so the Brook Auto backend splits
//! it into two passes per step — exactly the case paper §6.2 describes.
//! Speedup rises past 256 vertices to a ~6.5x plateau in the paper.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun, MemPhase};

/// Floyd-Warshall over `size` vertices.
#[derive(Debug, Clone, Copy, Default)]
pub struct FloydWarshall;

/// One relaxation step for intermediate vertex `k`. Two `out` streams:
/// the compiler emits one GPU pass per output (BA005 note).
pub const KERNEL: &str = "
kernel void fw_step(float dij<>, float d[][], float pin<>, float k,
                    out float dout<>, out float pout<>) {
    float2 q = indexof(dout);
    float alt = d[q.y][k] + d[k][q.x];
    if (alt < dij) {
        dout = alt;
        pout = k;
    } else {
        dout = dij;
        pout = pin;
    }
}
";

/// Generates a random dense weighted graph (no negative edges).
pub fn graph(n: usize, seed: u64) -> Vec<f32> {
    let mut d = gen_values(seed, n * n, 1.0, 100.0);
    for i in 0..n {
        d[i * n + i] = 0.0;
    }
    d
}

/// Reference CPU Floyd-Warshall with predecessor tracking, in the same
/// k-outer order and float arithmetic as the GPU passes.
pub fn fw_cpu(dist: &[f32], n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut d = dist.to_vec();
    let mut p: Vec<f32> = (0..n * n).map(|i| (i % n) as f32).collect();
    let mut dn = vec![0.0f32; n * n];
    let mut pn = vec![0.0f32; n * n];
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let alt = d[i * n + k] + d[k * n + j];
                let idx = i * n + j;
                if alt < d[idx] {
                    dn[idx] = alt;
                    pn[idx] = k as f32;
                } else {
                    dn[idx] = d[idx];
                    pn[idx] = p[idx];
                }
            }
        }
        std::mem::swap(&mut d, &mut dn);
        std::mem::swap(&mut p, &mut pn);
    }
    (d, p)
}

impl PaperApp for FloydWarshall {
    fn name(&self) -> &'static str {
        "floyd_warshall"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let n = size;
        let module = ctx.compile(KERNEL)?;
        let init_d = graph(n, seed);
        let init_p: Vec<f32> = (0..n * n).map(|i| (i % n) as f32).collect();
        let mut d_ping = ctx.stream(&[n, n])?;
        let mut d_pong = ctx.stream(&[n, n])?;
        let mut p_ping = ctx.stream(&[n, n])?;
        let mut p_pong = ctx.stream(&[n, n])?;
        ctx.write(&d_ping, &init_d)?;
        ctx.write(&p_ping, &init_p)?;
        for k in 0..n {
            ctx.run(
                &module,
                "fw_step",
                &[
                    Arg::Stream(&d_ping),
                    Arg::Stream(&d_ping),
                    Arg::Stream(&p_ping),
                    Arg::Float(k as f32),
                    Arg::Stream(&d_pong),
                    Arg::Stream(&p_pong),
                ],
            )?;
            std::mem::swap(&mut d_ping, &mut d_pong);
            std::mem::swap(&mut p_ping, &mut p_pong);
        }
        ctx.read(&d_ping)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        fw_cpu(&graph(size, seed), size).0
    }

    fn cpu_cost(&self, size: usize, _vectorized: bool) -> CpuRun {
        let n = size as u64;
        let mut run = CpuRun::with_ops(4 * n * n * n);
        // d[k][j] and d[i][j] stream sequentially; d[i][k] is a column
        // walk amortized per i (one access per n j-iterations).
        run.phases.push(MemPhase {
            accesses: 2 * n * n * n,
            access_bytes: 4,
            working_set: n * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run.phases.push(MemPhase {
            accesses: n * n,
            access_bytes: 4,
            working_set: n * n * 4,
            pattern: AccessPattern::Random,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        24
    }

    fn tolerance(&self) -> f32 {
        1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&FloydWarshall, PlatformKind::Target, 12, 4).expect("measure");
        assert!(point.validated);
        // Two outputs -> two passes per k step (paper's split).
        assert_eq!(point.gpu.draw_calls, 2 * 12);
    }

    #[test]
    fn shortest_paths_on_known_graph() {
        // 3-node graph: 0->1 = 5, 1->2 = 4, 0->2 direct = 20; the path
        // through 1 costs 9.
        let inf = 1e6f32;
        #[rustfmt::skip]
        let d = vec![
            0.0, 5.0, 20.0,
            inf, 0.0, 4.0,
            inf, inf, 0.0,
        ];
        let (dist, pred) = fw_cpu(&d, 3);
        assert_eq!(dist[2], 9.0);
        assert_eq!(pred[2], 1.0, "path 0->2 goes through vertex 1");
        assert_eq!(dist[1], 5.0); // row 0, col 1
    }

    #[test]
    fn triangle_inequality_holds() {
        let n = 16;
        let (dist, _) = fw_cpu(&graph(n, 9), n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(
                        dist[i * n + j] <= dist[i * n + k] + dist[k * n + j] + 1e-3,
                        "triangle violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }
}
