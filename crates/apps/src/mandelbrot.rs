//! Mandelbrot fractal generation (paper Figure 3e): high arithmetic
//! intensity, value independent of any input stream — only the output is
//! transferred, making it a GPU showcase (31x in the paper).

use crate::framework::{PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun};

/// Iteration cap of the escape-time loop.
pub const MAX_ITER: usize = 256;

/// Region of the complex plane rendered by the workload (the classic
/// full-set view).
pub const REGION: (f32, f32, f32, f32) = (-2.5, -1.25, 1.0, 1.25);

/// Mandelbrot benchmark over a `size x size` image.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mandelbrot;

/// The Brook kernel: no input streams; the pixel's coordinates come from
/// `indexof` (paper §5.2) and the loop is statically bounded (BA003).
pub fn kernel_source() -> String {
    format!(
        "kernel void mandelbrot(float x0, float y0, float dx, float dy, out float o<>) {{
             float2 p = indexof(o);
             float cr = x0 + p.x * dx;
             float ci = y0 + p.y * dy;
             float zr = 0.0;
             float zi = 0.0;
             float count = 0.0;
             int i;
             for (i = 0; i < {MAX_ITER}; i++) {{
                 if (zr * zr + zi * zi < 4.0) {{
                     float t = zr * zr - zi * zi + cr;
                     zi = 2.0 * zr * zi + ci;
                     zr = t;
                     count += 1.0;
                 }}
             }}
             o = count;
         }}"
    )
}

fn deltas(size: usize) -> (f32, f32) {
    let (x0, y0, x1, y1) = REGION;
    ((x1 - x0) / size as f32, (y1 - y0) / size as f32)
}

/// Escape-time iteration count for one pixel, mirroring the kernel's
/// operation order (the GPU version iterates to the cap with a guard;
/// the count matches an early-exit loop exactly).
pub fn escape_count(cr: f32, ci: f32) -> f32 {
    let (mut zr, mut zi, mut count) = (0.0f32, 0.0f32, 0.0f32);
    for _ in 0..MAX_ITER {
        if zr * zr + zi * zi < 4.0 {
            let t = zr * zr - zi * zi + cr;
            zi = 2.0 * zr * zi + ci;
            zr = t;
            count += 1.0;
        } else {
            break;
        }
    }
    count
}

/// Average iteration count over the region, estimated on a sparse grid —
/// used by the analytic CPU cost (the CPU reference exits early, so its
/// cost is data-dependent).
pub fn average_iterations(size: usize) -> f64 {
    let (dx, dy) = deltas(size);
    let (x0, y0, _, _) = REGION;
    let step = (size / 32).max(1);
    let mut total = 0.0f64;
    let mut count = 0u64;
    for y in (0..size).step_by(step) {
        for x in (0..size).step_by(step) {
            total += escape_count(x0 + x as f32 * dx, y0 + y as f32 * dy) as f64;
            count += 1;
        }
    }
    total / count as f64
}

impl PaperApp for Mandelbrot {
    fn name(&self) -> &'static str {
        "mandelbrot"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![128, 256, 512, 1024, 2048]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, _seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(&kernel_source())?;
        let o = ctx.stream(&[size, size])?;
        let (dx, dy) = deltas(size);
        let (x0, y0, _, _) = REGION;
        ctx.run(
            &module,
            "mandelbrot",
            &[
                Arg::Float(x0),
                Arg::Float(y0),
                Arg::Float(dx),
                Arg::Float(dy),
                Arg::Stream(&o),
            ],
        )?;
        ctx.read(&o)
    }

    fn run_cpu(&self, size: usize, _seed: u64) -> Vec<f32> {
        let (dx, dy) = deltas(size);
        let (x0, y0, _, _) = REGION;
        let mut out = Vec::with_capacity(size * size);
        for y in 0..size {
            for x in 0..size {
                out.push(escape_count(x0 + x as f32 * dx, y0 + y as f32 * dy));
            }
        }
        out
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let n = (size * size) as u64;
        let avg = average_iterations(size);
        // The Brook+ CPU reference executes the kernel body verbatim: the
        // loop always runs MAX_ITER guarded iterations (~4 ops for the
        // guard), with the full ~10-op body only while |z| < 2.
        let guarded = MAX_ITER as f64 * 4.0;
        let mut run = CpuRun::with_ops((n as f64 * (avg * 10.0 + guarded + 8.0)) as u64);
        run.vectorized = vectorized;
        run.phases.push(perf_model::MemPhase {
            accesses: n,
            access_bytes: 4,
            working_set: n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn validates_on_target() {
        let point = measure(&Mandelbrot, PlatformKind::Target, 32, 0).expect("measure");
        assert!(point.validated);
        // No input streams: only the output crosses the bus (paper §6.2).
        assert_eq!(point.gpu.bytes_uploaded, 0);
        assert!(point.gpu.bytes_downloaded > 0);
    }

    #[test]
    fn interior_hits_cap_and_exterior_escapes() {
        assert_eq!(escape_count(0.0, 0.0), MAX_ITER as f32);
        assert!(escape_count(2.0, 2.0) < 3.0);
    }

    #[test]
    fn average_iterations_in_plausible_band() {
        let avg = average_iterations(256);
        assert!(avg > 10.0 && avg < 200.0, "avg {avg}");
    }
}
