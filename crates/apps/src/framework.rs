//! Common harness for the Brook+ reference applications (paper §6).
//!
//! Every application follows the paper's structure: "Each benchmark is
//! parametrized, so that the size of its input set is configurable as
//! well as the seed of the random generator ... a CPU implementation of
//! each algorithm is included, allowing to validate the GPU output
//! against the CPU results ... time measurement functionality and
//! statistics reporting is integrated".

use brook_auto::{BrookContext, BrookError, DeviceProfile, DrawMode};
use perf_model::{CpuRun, GpuRun, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The differential-test layer enumerates execution backends through the
// runtime's registry, so every future backend is matrixed automatically.
pub use brook_auto::{registered_backends, BackendSpec};

/// Which of the two evaluation platforms a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// ARM + VideoCore IV, Brook Auto over OpenGL ES 2 (packed RGBA8).
    Target,
    /// x86 + Radeon HD 3400, Brook+ over CAL (native float textures,
    /// vectorized kernels).
    Reference,
}

impl PlatformKind {
    /// The timing model for this platform.
    pub fn platform(&self) -> Platform {
        match self {
            PlatformKind::Target => Platform::target(),
            PlatformKind::Reference => Platform::reference(),
        }
    }

    /// The simulated device profile.
    pub fn device(&self) -> DeviceProfile {
        match self {
            PlatformKind::Target => DeviceProfile::videocore_iv(),
            PlatformKind::Reference => DeviceProfile::radeon_hd3400(),
        }
    }

    /// Maximum usable square size (texture limit; paper §6.1).
    pub fn max_size(&self) -> usize {
        self.device().max_texture_size as usize
    }
}

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// Application name.
    pub app: &'static str,
    /// Input-size parameter (the x axis of the paper's figures).
    pub size: usize,
    /// Modeled CPU time in seconds.
    pub cpu_time: f64,
    /// Modeled GPU time in seconds.
    pub gpu_time: f64,
    /// `cpu_time / gpu_time` (> 1: GPU wins).
    pub speedup: f64,
    /// Raw GPU counters.
    pub gpu: GpuRun,
    /// Raw CPU counters.
    pub cpu: CpuRun,
    /// Whether the GPU output was validated against the CPU reference
    /// on this run (done at validation-sized inputs).
    pub validated: bool,
}

/// The interface every reference application implements.
pub trait PaperApp {
    /// Benchmark name as used in the figures.
    fn name(&self) -> &'static str;

    /// Paper x-axis sizes for the given platform (target stops at the
    /// texture limit, e.g. SpMV at 1024; paper §6.1).
    fn sizes(&self, platform: PlatformKind) -> Vec<usize>;

    /// Runs the workload on the given context and returns the GPU
    /// result buffer for validation.
    ///
    /// # Errors
    /// Compilation, certification or dispatch failures.
    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError>;

    /// Computes the reference result on the CPU (real execution).
    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32>;

    /// Instrumented CPU cost at `size` (closed-form counts mirroring the
    /// reference implementation's loop structure; see DESIGN.md).
    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun;

    /// Largest size at which full (non-sampled) GPU execution plus CPU
    /// validation is affordable in the simulator.
    fn validate_up_to(&self) -> usize {
        64
    }

    /// Size used by the cross-backend differential matrix: small enough
    /// to afford full dispatch on every backend, and respecting the
    /// app's structural constraints (e.g. the sorting network needs a
    /// power-of-two length).
    fn matrix_size(&self) -> usize {
        self.validate_up_to()
    }

    /// Comparison tolerance for validation (absolute + relative mix).
    fn tolerance(&self) -> f32 {
        1e-3
    }
}

/// One backend's output in a differential run.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Backend name from the registry.
    pub backend: &'static str,
    /// The workload's result buffer on that backend.
    pub output: Vec<f32>,
}

/// Runs `app` on **every registered backend** at `size` and cross-checks
/// the results — the differential-testing core of the paper's
/// certification argument, generalized from the original CPU-vs-GPU pair
/// to the whole backend matrix:
///
/// * every backend's output must match the app's native CPU reference
///   within [`PaperApp::tolerance`];
/// * the serial and parallel CPU interpreter backends must agree
///   **bit-for-bit** (same interpreter core, partitioned domain).
///
/// Returns the per-backend outputs for further scrutiny.
///
/// # Errors
/// Compilation/dispatch failures and cross-validation mismatches, tagged
/// with the app and backend names.
pub fn run_backend_matrix(app: &dyn PaperApp, size: usize, seed: u64) -> Result<Vec<BackendRun>, BrookError> {
    let reference = app.run_cpu(size, seed);
    let mut runs = Vec::new();
    for spec in registered_backends() {
        let mut ctx = (spec.make)();
        let output = app
            .run_gpu(&mut ctx, size, seed)
            .map_err(|e| BrookError::Usage(format!("{} on {} at size {size}: {e}", app.name(), spec.name)))?;
        validate(&reference, &output, app.tolerance()).map_err(|m| {
            BrookError::Usage(format!(
                "{} on {} at size {size} diverged from the CPU reference: {m}",
                app.name(),
                spec.name
            ))
        })?;
        runs.push(BackendRun {
            backend: spec.name,
            output,
        });
    }
    let bits = |name: &str| {
        runs.iter()
            .find(|r| r.backend == name)
            .map(|r| r.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
    };
    if let (Some(serial), Some(parallel)) = (bits("cpu"), bits("cpu-parallel")) {
        if serial != parallel {
            return Err(BrookError::Usage(format!(
                "{} at size {size}: parallel CPU backend is not bit-identical to the serial CPU backend",
                app.name()
            )));
        }
    }
    Ok(runs)
}

/// Deterministic input generator used by all applications (paper §6:
/// seeded random inputs for reproducibility).
pub fn gen_values(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Deterministic integer generator.
pub fn gen_indices(seed: u64, n: usize, bound: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

/// Compares GPU output against the CPU reference.
pub fn validate(cpu: &[f32], gpu: &[f32], tolerance: f32) -> Result<(), String> {
    if cpu.len() != gpu.len() {
        return Err(format!("length mismatch: cpu {} vs gpu {}", cpu.len(), gpu.len()));
    }
    for (i, (c, g)) in cpu.iter().zip(gpu).enumerate() {
        let err = (c - g).abs();
        let scale = 1.0f32.max(c.abs());
        if err > tolerance * scale {
            return Err(format!(
                "element {i}: cpu {c} vs gpu {g} (err {err}, tol {tolerance})"
            ));
        }
    }
    Ok(())
}

/// Runs one application point: GPU counters via the simulator (sampled
/// dispatch above the validation size), CPU cost analytically, both
/// converted to modeled seconds. Validation runs real CPU-vs-GPU
/// comparison when `size <= app.validate_up_to()`.
///
/// # Errors
/// Propagates compilation/dispatch errors and validation mismatches.
pub fn measure(
    app: &dyn PaperApp,
    platform: PlatformKind,
    size: usize,
    seed: u64,
) -> Result<MeasuredPoint, BrookError> {
    let mut ctx = BrookContext::gles2(platform.device());
    let full = size <= app.validate_up_to();
    if !full {
        // Strided sampling keeps large sweeps tractable; counts are
        // extrapolated (DESIGN.md §5).
        let stride = (size / 16).clamp(2, 64) as u32;
        ctx.set_dispatch(DrawMode::Sampled { stride });
    }
    let gpu_out = app.run_gpu(&mut ctx, size, seed)?;
    let gpu = ctx.gpu_counters();
    let p = platform.platform();
    // The paper's CPU baselines are plain scalar C on both platforms;
    // `vectorized` stays available for ablation studies.
    let cpu = app.cpu_cost(size, false);
    let mut validated = false;
    if full {
        let cpu_out = app.run_cpu(size, seed);
        validate(&cpu_out, &gpu_out, app.tolerance()).map_err(|m| {
            BrookError::Usage(format!("{} validation failed at size {size}: {m}", app.name()))
        })?;
        validated = true;
    }
    let cpu_time = p.cpu_time(&cpu);
    let gpu_time = p.gpu_time(&gpu);
    Ok(MeasuredPoint {
        app: app.name(),
        size,
        cpu_time,
        gpu_time,
        speedup: cpu_time / gpu_time,
        gpu,
        cpu,
        validated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_values(7, 16, 0.0, 1.0), gen_values(7, 16, 0.0, 1.0));
        assert_ne!(gen_values(7, 16, 0.0, 1.0), gen_values(8, 16, 0.0, 1.0));
        assert_eq!(gen_indices(3, 8, 100), gen_indices(3, 8, 100));
    }

    #[test]
    fn generator_ranges_respected() {
        let v = gen_values(1, 1000, -2.0, 3.0);
        assert!(v.iter().all(|x| (-2.0..3.0).contains(x)));
        let ix = gen_indices(1, 1000, 17);
        assert!(ix.iter().all(|i| *i < 17));
    }

    #[test]
    fn validate_accepts_close_and_rejects_far() {
        assert!(validate(&[1.0, 2.0], &[1.0005, 2.0005], 1e-3).is_ok());
        assert!(validate(&[1.0, 2.0], &[1.1, 2.0], 1e-3).is_err());
        assert!(validate(&[1.0], &[1.0, 2.0], 1e-3).is_err());
    }

    #[test]
    fn platform_kinds_differ() {
        assert_eq!(PlatformKind::Target.max_size(), 2048);
        assert_eq!(PlatformKind::Reference.max_size(), 4096);
        assert!(PlatformKind::Reference.platform().vectorized_kernels);
    }
}
