//! The `flops` capability benchmark (paper Figure 1): ~2 billion floating
//! point operations over 1 MB of data, measuring relative GPU/CPU
//! capability including transfers.

use crate::framework::{gen_values, PaperApp, PlatformKind};
use brook_auto::{Arg, BrookContext, BrookError};
use perf_model::{AccessPattern, CpuRun};

/// Default configuration: 512x512 elements (1 MB), ~7.6 kflop each.
#[derive(Debug, Clone, Copy)]
pub struct Flops {
    /// MAD iterations of the vec4 inner loop per element (8 flops each).
    pub iters: usize,
}

impl Default for Flops {
    fn default() -> Self {
        // 512*512 elements * 954 iterations * 8 flops ≈ 2.0 Gflop.
        Flops { iters: 954 }
    }
}

impl Flops {
    /// The Brook kernel. The inner loop runs on `float4` vectors — the
    /// flops kernel exploits the vector microarchitecture (paper §5.4)
    /// even though stream storage is scalar.
    pub fn kernel_source(&self) -> String {
        format!(
            "kernel void flops(float a<>, float b<>, out float o<>) {{
                 float4 x = float4(a, a + 0.25, a + 0.5, a + 0.75);
                 float4 m = float4(b * 0.5, b * 0.5 + 0.1, b * 0.5 + 0.2, b * 0.5 + 0.3);
                 int i;
                 for (i = 0; i < {}; i++) {{
                     x = x * m + m;
                 }}
                 o = x.x + x.y + x.z + x.w;
             }}",
            self.iters
        )
    }

    /// Total useful flops at `size`.
    pub fn total_flops(&self, size: usize) -> u64 {
        (size * size) as u64 * self.iters as u64 * 8
    }
}

impl PaperApp for Flops {
    fn name(&self) -> &'static str {
        "flops"
    }

    fn sizes(&self, _platform: PlatformKind) -> Vec<usize> {
        vec![512]
    }

    fn run_gpu(&self, ctx: &mut BrookContext, size: usize, seed: u64) -> Result<Vec<f32>, BrookError> {
        let module = ctx.compile(&self.kernel_source())?;
        let n = size * size;
        let a = ctx.stream(&[size, size])?;
        let b = ctx.stream(&[size, size])?;
        let o = ctx.stream(&[size, size])?;
        ctx.write(&a, &gen_values(seed, n, 0.0, 1.0))?;
        ctx.write(&b, &gen_values(seed + 1, n, 0.2, 0.9))?;
        ctx.run(
            &module,
            "flops",
            &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&o)],
        )?;
        ctx.read(&o)
    }

    fn run_cpu(&self, size: usize, seed: u64) -> Vec<f32> {
        let n = size * size;
        let av = gen_values(seed, n, 0.0, 1.0);
        let bv = gen_values(seed + 1, n, 0.2, 0.9);
        av.iter()
            .zip(&bv)
            .map(|(a, b)| {
                let mut x = [*a, a + 0.25, a + 0.5, a + 0.75];
                let m = [b * 0.5, b * 0.5 + 0.1, b * 0.5 + 0.2, b * 0.5 + 0.3];
                for _ in 0..self.iters {
                    for l in 0..4 {
                        x[l] = x[l] * m[l] + m[l];
                    }
                }
                x.iter().sum::<f32>()
            })
            .collect()
    }

    fn cpu_cost(&self, size: usize, vectorized: bool) -> CpuRun {
        let n = (size * size) as u64;
        let mut run = CpuRun::with_ops(self.total_flops(size));
        run.vectorized = vectorized;
        run.phases.push(perf_model::MemPhase {
            accesses: 3 * n,
            access_bytes: 4,
            working_set: 3 * n * 4,
            pattern: AccessPattern::Sequential,
        });
        run
    }

    fn validate_up_to(&self) -> usize {
        16
    }

    fn tolerance(&self) -> f32 {
        // The geometric recurrence amplifies the last-bit differences of
        // fused vs separate rounding; results stay within ~1e-3 relative.
        5e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::measure;

    #[test]
    fn kernel_is_certifiable_and_validates() {
        let app = Flops::default();
        let point = measure(&app, PlatformKind::Target, 16, 42).expect("measure");
        assert!(point.validated);
        assert!(point.cpu_time > 0.0 && point.gpu_time > 0.0);
    }

    #[test]
    fn two_gflop_at_paper_size() {
        let app = Flops::default();
        let gf = app.total_flops(512) as f64 / 1e9;
        assert!((1.9..2.2).contains(&gf), "total flops {gf} GF");
    }

    #[test]
    fn deterministic_across_runs() {
        let app = Flops::default();
        let a = app.run_cpu(8, 7);
        let b = app.run_cpu(8, 7);
        assert_eq!(a, b);
    }
}
