//! # brook-inject — seeded, deterministic fault injection
//!
//! The paper's certification argument (§2 rules d/e) is about *fault
//! response*: a GPU task failing must neither crash the system nor
//! corrupt other tasks. The rest of the stack can only demonstrate that
//! claim if faults actually happen — reproducibly, at precise points,
//! on every backend. This crate is that source of faults:
//!
//! * a [`FaultPlan`] schedules faults at precise launch indices —
//!   device loss (transient or persistent), transient result
//!   corruption of one output block, injected worker panics, latency
//!   spikes and hangs;
//! * a [`FaultInjector`] executes the plan deterministically: each
//!   scheduled fault fires exactly once, on the first attempt that
//!   reaches its launch index, and every firing is logged as an
//!   [`InjectedFault`] so recovery can be *attributed* to its cause;
//! * [`CancelToken`] + [`cancellable_sleep`] make every injected delay
//!   interruptible, so a watchdog can always unwedge a hung dispatch —
//!   injected hangs are cooperative by construction, mirroring a
//!   device-reset path on real hardware;
//! * the per-launch [`LaunchResilience`] record and the aggregated
//!   [`ResilienceSummary`] are the evidence schema recovery ladders
//!   report through (`ComplianceReport` surfaces the summary).
//!
//! The crate is dependency-free and knows nothing about Brook IR or
//! backends; the runtime threads an injector behind its dispatch hook.
//! Determinism contract: the same plan against the same launch sequence
//! injects the same faults in the same order — randomness exists only
//! inside [`FaultPlan::random`], which is a pure function of its seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One kind of injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Dispatch fails with a device-loss error. A transient loss fails
    /// exactly one attempt; a `persistent` loss latches until the
    /// runtime fails over to another backend.
    DeviceLoss {
        /// Latch the loss for every subsequent attempt (until failover).
        persistent: bool,
    },
    /// After an otherwise successful dispatch, flip `xor_bits` in every
    /// element of one block of one output stream — the transient
    /// bit-flip redundant execution must catch. `block` indexes
    /// lane-engine-sized element blocks (the runtime maps it to an
    /// element span, clamped into the output domain).
    CorruptOutput {
        /// Output position within the launch's output list (clamped).
        output: usize,
        /// Block index within that output (clamped into the domain).
        block: usize,
        /// Bits XORed into each affected element (0 is promoted to a
        /// sign-bit flip so the fault is never a silent no-op).
        xor_bits: u32,
    },
    /// Panic inside dispatch — a worker bug the shields must contain.
    Panic,
    /// Sleep before dispatch (cancellable): a latency spike.
    Latency {
        /// Injected delay.
        millis: u64,
    },
    /// Sleep until a watchdog cancels the attempt: a wedged device.
    Hang,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::DeviceLoss { persistent: true } => write!(f, "device-loss(persistent)"),
            FaultKind::DeviceLoss { persistent: false } => write!(f, "device-loss(transient)"),
            FaultKind::CorruptOutput {
                output,
                block,
                xor_bits,
            } => {
                write!(f, "corrupt(out {output}, block {block}, xor {xor_bits:#x})")
            }
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Latency { millis } => write!(f, "latency({millis}ms)"),
            FaultKind::Hang => write!(f, "hang"),
        }
    }
}

/// A fault scheduled at a precise launch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Zero-based logical launch index (retries of a launch keep its
    /// index — a fault fires once, not once per attempt).
    pub launch: u64,
    /// What happens there.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. Build one with the `with_*`
/// builders for precise campaigns, or [`FaultPlan::random`] for seeded
/// fuzzing — either way the plan is pure data: no clocks, no RNG state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed the plan was derived from (0 for hand-built plans);
    /// carried for reproduction bundles.
    pub seed: u64,
    /// The schedule, in no particular order (the injector matches on
    /// launch index).
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; useful to measure the cost of an
    /// armed-but-idle hook).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a device loss at `launch`.
    #[must_use]
    pub fn with_device_loss(mut self, launch: u64, persistent: bool) -> Self {
        self.faults.push(ScheduledFault {
            launch,
            kind: FaultKind::DeviceLoss { persistent },
        });
        self
    }

    /// Schedules a transient output corruption at `launch`.
    #[must_use]
    pub fn with_corruption(mut self, launch: u64, output: usize, block: usize, xor_bits: u32) -> Self {
        self.faults.push(ScheduledFault {
            launch,
            kind: FaultKind::CorruptOutput {
                output,
                block,
                xor_bits,
            },
        });
        self
    }

    /// Schedules an injected worker panic at `launch`.
    #[must_use]
    pub fn with_panic(mut self, launch: u64) -> Self {
        self.faults.push(ScheduledFault {
            launch,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Schedules a latency spike at `launch`.
    #[must_use]
    pub fn with_latency(mut self, launch: u64, millis: u64) -> Self {
        self.faults.push(ScheduledFault {
            launch,
            kind: FaultKind::Latency { millis },
        });
        self
    }

    /// Schedules a hang (sleep-until-cancelled) at `launch`.
    #[must_use]
    pub fn with_hang(mut self, launch: u64) -> Self {
        self.faults.push(ScheduledFault {
            launch,
            kind: FaultKind::Hang,
        });
        self
    }

    /// A seeded random plan over `launches` logical launches: a pure
    /// function of its arguments (same seed → same plan, byte for
    /// byte). `mix` bounds how nasty the plan gets; the fuzz campaigns
    /// tune it per backend (e.g. no persistent loss on device backends
    /// whose differential baseline is the same device).
    pub fn random(seed: u64, launches: u64, mix: &FaultMix) -> Self {
        let mut state = seed ^ 0x6a09_e667_f3bc_c908;
        let mut faults = Vec::new();
        let mut budget = |count: u32| -> u64 {
            // Deterministic count in 0..=count.
            if count == 0 || launches == 0 {
                0
            } else {
                splitmix64(&mut state) % u64::from(count + 1)
            }
        };
        let n_loss = budget(mix.max_device_losses);
        let n_corrupt = budget(mix.max_corruptions);
        let n_panic = budget(mix.max_panics);
        let n_latency = budget(mix.max_latency_spikes);
        let n_hang = budget(mix.max_hangs);
        for _ in 0..n_loss {
            let launch = splitmix64(&mut state) % launches;
            let persistent = mix.allow_persistent_loss && splitmix64(&mut state).is_multiple_of(4);
            faults.push(ScheduledFault {
                launch,
                kind: FaultKind::DeviceLoss { persistent },
            });
        }
        for _ in 0..n_corrupt {
            faults.push(ScheduledFault {
                launch: splitmix64(&mut state) % launches,
                kind: FaultKind::CorruptOutput {
                    output: (splitmix64(&mut state) % 2) as usize,
                    block: (splitmix64(&mut state) % 64) as usize,
                    xor_bits: (splitmix64(&mut state) as u32) | 0x0080_0000,
                },
            });
        }
        for _ in 0..n_panic {
            faults.push(ScheduledFault {
                launch: splitmix64(&mut state) % launches,
                kind: FaultKind::Panic,
            });
        }
        for _ in 0..n_latency {
            faults.push(ScheduledFault {
                launch: splitmix64(&mut state) % launches,
                kind: FaultKind::Latency {
                    millis: 1 + splitmix64(&mut state) % mix.max_latency_ms.max(1),
                },
            });
        }
        for _ in 0..n_hang {
            faults.push(ScheduledFault {
                launch: splitmix64(&mut state) % launches,
                kind: FaultKind::Hang,
            });
        }
        FaultPlan { seed, faults }
    }
}

/// Bounds for [`FaultPlan::random`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMix {
    /// Upper bound on scheduled device losses.
    pub max_device_losses: u32,
    /// Whether a loss may be persistent (forcing failover).
    pub allow_persistent_loss: bool,
    /// Upper bound on scheduled output corruptions.
    pub max_corruptions: u32,
    /// Upper bound on scheduled panics.
    pub max_panics: u32,
    /// Upper bound on scheduled latency spikes.
    pub max_latency_spikes: u32,
    /// Upper bound on a single latency spike in milliseconds.
    pub max_latency_ms: u64,
    /// Upper bound on scheduled hangs.
    pub max_hangs: u32,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            max_device_losses: 2,
            allow_persistent_loss: true,
            max_corruptions: 2,
            max_panics: 1,
            max_latency_spikes: 2,
            max_latency_ms: 3,
            max_hangs: 1,
        }
    }
}

/// A fault the injector actually fired, tagged with its launch index —
/// the unit of attribution in a [`LaunchResilience`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Logical launch index the fault fired at.
    pub launch: u64,
    /// The fault.
    pub kind: FaultKind,
}

/// What the injector decided for one dispatch attempt. The runtime
/// keeps asking until it gets [`PreDispatch::Proceed`]; every other
/// answer consumes exactly one scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreDispatch {
    /// No (more) pre-dispatch faults here; run the kernel.
    Proceed,
    /// The device is (or just became) lost — fail this attempt with a
    /// device error.
    DeviceLost {
        /// The loss latches until failover.
        persistent: bool,
    },
    /// Panic now (inside the caller's unwind shield).
    Panic,
    /// Sleep this long (cancellably), then ask again.
    Latency {
        /// Injected delay.
        millis: u64,
    },
    /// Sleep until the watchdog cancels the attempt, then fail it.
    Hang,
}

/// Executes a [`FaultPlan`] deterministically. One injector belongs to
/// one context; the runtime consults it at every dispatch.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
    /// Latched persistent device loss (until [`mark_failed_over`]).
    ///
    /// [`mark_failed_over`]: FaultInjector::mark_failed_over
    device_lost: bool,
    failed_over: bool,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.faults.len();
        FaultInjector {
            plan,
            fired: vec![false; n],
            device_lost: false,
            failed_over: false,
            log: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether a persistent device loss is currently latched.
    pub fn device_lost(&self) -> bool {
        self.device_lost
    }

    /// Tells the injector the runtime failed over to a replacement
    /// backend: the lost device is out of the picture, so the loss
    /// latch clears and no further device-loss faults fire (the plan
    /// targeted the device that is gone). Every other fault kind keeps
    /// firing — recovery must hold on the failover backend too.
    pub fn mark_failed_over(&mut self) {
        self.device_lost = false;
        self.failed_over = true;
    }

    /// Every fault fired so far, in firing order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.log
    }

    fn fire(&mut self, idx: usize, launch: u64) -> FaultKind {
        self.fired[idx] = true;
        let kind = self.plan.faults[idx].kind.clone();
        self.log.push(InjectedFault {
            launch,
            kind: kind.clone(),
        });
        kind
    }

    /// The next pre-dispatch fault for `launch`, consuming it. Call in
    /// a loop until [`PreDispatch::Proceed`]. A latched persistent loss
    /// answers [`PreDispatch::DeviceLost`] without consuming anything.
    pub fn pre_dispatch(&mut self, launch: u64) -> PreDispatch {
        if self.device_lost {
            return PreDispatch::DeviceLost { persistent: true };
        }
        let next = (0..self.plan.faults.len()).find(|i| {
            let f = &self.plan.faults[*i];
            let suppressed = matches!(f.kind, FaultKind::CorruptOutput { .. })
                || (self.failed_over && matches!(f.kind, FaultKind::DeviceLoss { .. }));
            !self.fired[*i] && f.launch == launch && !suppressed
        });
        let Some(idx) = next else {
            return PreDispatch::Proceed;
        };
        match self.fire(idx, launch) {
            FaultKind::DeviceLoss { persistent } => {
                if persistent {
                    self.device_lost = true;
                }
                PreDispatch::DeviceLost { persistent }
            }
            FaultKind::Panic => PreDispatch::Panic,
            FaultKind::Latency { millis } => PreDispatch::Latency { millis },
            FaultKind::Hang => PreDispatch::Hang,
            FaultKind::CorruptOutput { .. } => unreachable!("filtered above"),
        }
    }

    /// The next post-dispatch corruption for `launch`, consuming it.
    /// Returns `(output, block, xor_bits)` with `xor_bits` guaranteed
    /// nonzero.
    pub fn corruption(&mut self, launch: u64) -> Option<(usize, usize, u32)> {
        let idx = (0..self.plan.faults.len()).find(|i| {
            !self.fired[*i]
                && self.plan.faults[*i].launch == launch
                && matches!(self.plan.faults[*i].kind, FaultKind::CorruptOutput { .. })
        })?;
        match self.fire(idx, launch) {
            FaultKind::CorruptOutput {
                output,
                block,
                xor_bits,
            } => {
                // A zero mask would make the injected fault a silent
                // no-op; promote it to a sign flip.
                Some((output, block, if xor_bits == 0 { 0x8000_0000 } else { xor_bits }))
            }
            _ => unreachable!("filtered above"),
        }
    }
}

// ---------------------------------------------------------------------
// Cancellation and deterministic backoff.

/// A shared cancellation flag: the watchdog's handle into an injected
/// sleep (and into a recovery ladder's retry loop).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every sleeper polling this token wakes.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Sleeps up to `total`, polling `cancel` (and an optional deadline) in
/// millisecond slices. Returns `true` if the full duration elapsed,
/// `false` if the sleep was cut short by cancellation or the deadline.
pub fn cancellable_sleep(total: Duration, cancel: &CancelToken, deadline: Option<Instant>) -> bool {
    let end = Instant::now() + total;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if let Some(d) = deadline {
            if now >= d {
                return false;
            }
        }
        if now >= end {
            return true;
        }
        let mut slice = end - now;
        if let Some(d) = deadline {
            slice = slice.min(d.saturating_duration_since(now));
        }
        std::thread::sleep(slice.min(Duration::from_millis(1)));
    }
}

/// Deterministic jittered exponential backoff: attempt `k` sleeps
/// `base · 2^k` scaled by a seeded jitter factor in `[0.5, 1.5)`,
/// capped. Pure function of `(seed, attempt)` — reproducible runs have
/// reproducible pauses.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    seed: u64,
}

impl Backoff {
    /// A backoff schedule with the given base, cap and jitter seed.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms,
            cap_ms,
            seed,
        }
    }

    /// The delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(16));
        let mut state = self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Jitter in [0.5, 1.5): de-synchronizes retry herds without
        // breaking determinism (the factor depends only on seed+attempt).
        let jitter = 0.5 + (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let ms = ((exp as f64) * jitter).round() as u64;
        Duration::from_millis(ms.clamp(self.base_ms.min(self.cap_ms), self.cap_ms))
    }
}

/// SplitMix64 — the crate's only source of (seeded) randomness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// The resilience evidence schema.

/// Per-launch recovery evidence: what was injected, what the ladder did
/// about it, and how much deadline was left when the result was handed
/// back. One record per *logical* launch (retries fold into it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LaunchResilience {
    /// Logical launch index within the context's lifetime.
    pub launch: u64,
    /// Kernel name.
    pub kernel: String,
    /// Backend the launch first dispatched on.
    pub backend: String,
    /// Dispatch attempts (1 = clean first try).
    pub attempts: u32,
    /// Retries after transient failures (attempts − 1 − panics folded).
    pub retries: u32,
    /// Panics caught by the ladder's unwind shield.
    pub panics_caught: u32,
    /// Corruptions caught by redundant execution.
    pub corruptions_detected: u32,
    /// Faults the injector fired during this launch, in order.
    pub injected: Vec<InjectedFault>,
    /// `from → to (verification)` when the launch failed over.
    pub failover: Option<String>,
    /// Wall-clock from first attempt to success/failure.
    pub elapsed_ms: f64,
    /// Margin left under the per-launch deadline (negative = missed);
    /// `None` when no deadline was configured.
    pub deadline_margin_ms: Option<f64>,
    /// False iff a configured deadline was exceeded.
    pub deadline_met: bool,
}

impl LaunchResilience {
    /// Whether anything noteworthy happened (the quiet majority of
    /// launches stays out of rendered reports).
    pub fn eventful(&self) -> bool {
        self.attempts > 1
            || !self.injected.is_empty()
            || self.failover.is_some()
            || self.corruptions_detected > 0
            || !self.deadline_met
    }
}

/// Aggregated resilience evidence over many launches — the figure a
/// compliance report carries and a service exports as counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceSummary {
    /// Launches recorded.
    pub launches: u64,
    /// Faults injected across them.
    pub injected_faults: u64,
    /// Transient-failure retries.
    pub retries: u64,
    /// Panics caught and contained.
    pub panics_caught: u64,
    /// Corruptions caught by redundant execution.
    pub corruptions_detected: u64,
    /// Backend failovers (each verified against the oracle).
    pub failovers: u64,
    /// Launches that exceeded their deadline.
    pub deadline_misses: u64,
    /// Tightest observed deadline margin in milliseconds.
    pub min_deadline_margin_ms: Option<f64>,
}

impl ResilienceSummary {
    /// Folds one launch record into the summary.
    pub fn absorb(&mut self, r: &LaunchResilience) {
        self.launches += 1;
        self.injected_faults += r.injected.len() as u64;
        self.retries += u64::from(r.retries);
        self.panics_caught += u64::from(r.panics_caught);
        self.corruptions_detected += u64::from(r.corruptions_detected);
        self.failovers += u64::from(r.failover.is_some());
        self.deadline_misses += u64::from(!r.deadline_met);
        if let Some(m) = r.deadline_margin_ms {
            self.min_deadline_margin_ms = Some(match self.min_deadline_margin_ms {
                Some(prev) => prev.min(m),
                None => m,
            });
        }
    }

    /// Summarizes a slice of launch records.
    pub fn from_records(records: &[LaunchResilience]) -> Self {
        let mut s = ResilienceSummary::default();
        for r in records {
            s.absorb(r);
        }
        s
    }

    /// True when nothing was recorded (reports omit the section).
    pub fn is_empty(&self) -> bool {
        self.launches == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_launch() {
        let plan = FaultPlan::new().with_latency(2, 5).with_panic(2).with_hang(4);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.pre_dispatch(0), PreDispatch::Proceed);
        assert_eq!(inj.pre_dispatch(1), PreDispatch::Proceed);
        // Launch 2 carries two faults, consumed in schedule order.
        assert_eq!(inj.pre_dispatch(2), PreDispatch::Latency { millis: 5 });
        assert_eq!(inj.pre_dispatch(2), PreDispatch::Panic);
        assert_eq!(inj.pre_dispatch(2), PreDispatch::Proceed);
        // Retrying launch 2 re-fires nothing.
        assert_eq!(inj.pre_dispatch(2), PreDispatch::Proceed);
        assert_eq!(inj.pre_dispatch(4), PreDispatch::Hang);
        assert_eq!(inj.injected().len(), 3);
    }

    #[test]
    fn persistent_loss_latches_until_failover() {
        let plan = FaultPlan::new().with_device_loss(1, true);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.pre_dispatch(0), PreDispatch::Proceed);
        assert_eq!(inj.pre_dispatch(1), PreDispatch::DeviceLost { persistent: true });
        // Latched: every later launch (and retry) sees the loss.
        assert_eq!(inj.pre_dispatch(1), PreDispatch::DeviceLost { persistent: true });
        assert_eq!(inj.pre_dispatch(7), PreDispatch::DeviceLost { persistent: true });
        assert!(inj.device_lost());
        inj.mark_failed_over();
        assert!(!inj.device_lost());
        assert_eq!(inj.pre_dispatch(8), PreDispatch::Proceed);
        // Only the single firing was logged, not the latched repeats.
        assert_eq!(inj.injected().len(), 1);
    }

    #[test]
    fn transient_loss_fails_exactly_one_attempt() {
        let plan = FaultPlan::new().with_device_loss(3, false);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.pre_dispatch(3), PreDispatch::DeviceLost { persistent: false });
        assert!(!inj.device_lost());
        assert_eq!(inj.pre_dispatch(3), PreDispatch::Proceed);
    }

    #[test]
    fn corruption_is_post_dispatch_and_never_a_noop() {
        let plan = FaultPlan::new().with_corruption(5, 0, 2, 0);
        let mut inj = FaultInjector::new(plan);
        // Corruption does not surface pre-dispatch.
        assert_eq!(inj.pre_dispatch(5), PreDispatch::Proceed);
        let (out, block, bits) = inj.corruption(5).expect("scheduled");
        assert_eq!((out, block), (0, 2));
        assert_ne!(bits, 0, "zero mask must be promoted");
        assert_eq!(inj.corruption(5), None, "consumed");
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let mix = FaultMix::default();
        let a = FaultPlan::random(42, 10, &mix);
        let b = FaultPlan::random(42, 10, &mix);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 10, &mix);
        assert!(a != c || a.faults.is_empty());
        for f in &a.faults {
            assert!(f.launch < 10);
        }
        let total_bound = mix.max_device_losses
            + mix.max_corruptions
            + mix.max_panics
            + mix.max_latency_spikes
            + mix.max_hangs;
        assert!(a.faults.len() <= total_bound as usize);
    }

    #[test]
    fn cancellable_sleep_is_cancellable() {
        let token = CancelToken::new();
        token.cancel();
        let start = Instant::now();
        assert!(!cancellable_sleep(Duration::from_secs(60), &token, None));
        assert!(start.elapsed() < Duration::from_secs(1));
        // Deadline also cuts the sleep short.
        let fresh = CancelToken::new();
        let start = Instant::now();
        assert!(!cancellable_sleep(
            Duration::from_secs(60),
            &fresh,
            Some(Instant::now() + Duration::from_millis(5)),
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let b = Backoff::new(2, 100, 7);
        assert_eq!(b.delay(0), b.delay(0));
        for k in 0..10 {
            let d = b.delay(k).as_millis() as u64;
            assert!((1..=100).contains(&d), "attempt {k}: {d}ms");
        }
        // The cap holds even for absurd attempt counts.
        assert!(b.delay(60).as_millis() as u64 <= 100);
    }

    #[test]
    fn summary_absorbs_records() {
        let mut r = LaunchResilience {
            launch: 3,
            retries: 2,
            attempts: 3,
            deadline_met: true,
            deadline_margin_ms: Some(4.0),
            ..Default::default()
        };
        r.injected.push(InjectedFault {
            launch: 3,
            kind: FaultKind::Panic,
        });
        let quiet = LaunchResilience {
            launch: 4,
            attempts: 1,
            deadline_met: true,
            deadline_margin_ms: Some(9.0),
            ..Default::default()
        };
        assert!(r.eventful());
        assert!(!quiet.eventful());
        let s = ResilienceSummary::from_records(&[r, quiet]);
        assert_eq!(s.launches, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.injected_faults, 1);
        assert_eq!(s.min_deadline_margin_ms, Some(4.0));
        assert!(!s.is_empty());
    }
}
