//! The flat BrookIR interpreter — the fast CPU execution engine.
//!
//! Executes the flat instruction stream of an [`IrKernel`] over a
//! **preallocated register frame**: no AST walk, no per-scope hash
//! maps, no per-node allocation. Control flow is direct `pc`
//! manipulation through [`Inst::Jump`]/[`Inst::BranchIfFalse`].
//!
//! Semantics are shared with the legacy tree walker through
//! [`crate::eval`], so the two are bit-exact by construction; the fuzz
//! campaigns in `brook-fuzz` assert it on every generated kernel.

use crate::eval;
use crate::{Inst, IrKernel};
use brook_lang::builtins::BUILTINS;
use brook_lang::span::Span;
use glsl_es::Value;
use std::ops::Range;

/// Iteration budget per element, defending against runaway loops that
/// slipped past certification (e.g. with enforcement disabled). Matches
/// the tree walker's budget.
pub const MAX_ITERATIONS: u64 = 1 << 22;

/// A parameter binding for an IR kernel run, in parameter order.
pub enum Binding<'a> {
    /// Elementwise input stream.
    Elem {
        /// Backing values (`width` floats per element).
        data: &'a [f32],
        /// Logical shape.
        shape: &'a [usize],
        /// Element width.
        width: u8,
    },
    /// Random-access gather.
    Gather {
        /// Backing values.
        data: &'a [f32],
        /// Logical shape.
        shape: &'a [usize],
        /// Element width.
        width: u8,
    },
    /// Scalar argument.
    Scalar(Value),
    /// Output stream (index into the output buffer list).
    Out(usize),
}

/// A runtime fault, carrying the source span of the faulting
/// instruction and the domain element being computed, so diagnostics
/// point at the original program text *and* the offending data point —
/// for a fault raised out of a lane block, the element index names the
/// exact diverged lane, not the block.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    /// Human-readable message (tree-walker compatible).
    pub msg: String,
    /// Source location of the instruction that faulted.
    pub span: Span,
    /// Linear domain index of the element whose execution faulted
    /// (row-major; `None` for faults raised outside element execution).
    pub element: Option<usize>,
}

impl ExecError {
    /// Renders the message with its element and source location when
    /// they exist.
    pub fn render(&self) -> String {
        let at_span = !(self.span.is_empty() && self.span.line == 0);
        match (self.element, at_span) {
            (Some(e), true) => format!("{} (element {e}, source line {})", self.msg, self.span),
            (Some(e), false) => format!("{} (element {e})", self.msg),
            (None, true) => format!("{} (source line {})", self.msg, self.span),
            (None, false) => self.msg.clone(),
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Splits a logical shape into `(inner extent, rows, is_linear)` — the
/// same domain factorization the tree walker and the GL layout use.
pub fn domain_extents(shape: &[usize]) -> (usize, usize, bool) {
    if shape.len() == 2 {
        (shape[1], shape[0], false)
    } else {
        (shape.iter().product(), 1, true)
    }
}

/// Proportional element index of an input stream of `shape` for output
/// position `pos` in `domain` — identical arithmetic to the tree walker
/// and the generated GLSL. Shared by the scalar interpreter and the
/// lane engine, whose bit-exactness depends on this exact float
/// arithmetic never drifting between the two.
pub fn input_index(pos: (usize, usize), domain: (usize, usize), shape: &[usize]) -> (usize, usize) {
    let (dx, dy) = domain;
    let (x, y) = pos;
    if shape.len() == 2 {
        let (rows, cols) = (shape[0], shape[1]);
        let ix = ((x as f32 + 0.5) / dx as f32 * cols as f32).floor() as usize;
        let iy = ((y as f32 + 0.5) / dy as f32 * rows as f32).floor() as usize;
        (ix.min(cols - 1), iy.min(rows - 1))
    } else {
        let len: usize = shape.iter().product();
        let l = y * dx + x;
        (l.min(len - 1), 0)
    }
}

/// `indexof` of an elementwise input of `shape` at `pos` (both engines).
pub fn indexof_elem(pos: (usize, usize), domain: (usize, usize), shape: &[usize]) -> [f32; 2] {
    let (ix, iy) = input_index(pos, domain, shape);
    if shape.len() == 2 {
        [ix as f32, iy as f32]
    } else {
        [(iy * domain.0 + ix) as f32, 0.0]
    }
}

/// `indexof` of an output or scalar binding at `pos` (both engines).
pub fn indexof_pos(pos: (usize, usize), domain: (usize, usize), linear: bool) -> [f32; 2] {
    let (x, y) = pos;
    if linear {
        [(y * domain.0 + x) as f32, 0.0]
    } else {
        [x as f32, y as f32]
    }
}

struct Machine<'a, 'b> {
    kernel: &'a IrKernel,
    outputs: &'a mut [&'b mut [f32]],
    /// Output-slot -> index into `outputs` (from the `Out` bindings).
    out_buf: Vec<usize>,
    out_width: Vec<usize>,
    /// First domain element the output slices cover.
    out_start: usize,
    pos: (usize, usize),
    domain: (usize, usize),
    linear: bool,
    regs: Vec<Value>,
    iterations: u64,
}

/// Runs a (non-reduce) kernel over a contiguous partition of its output
/// domain — elements `range` in row-major order, writing into output
/// slices covering exactly that partition. `bindings` are in parameter
/// order. The full-domain run is `range = 0..domain_len`.
///
/// # Errors
/// Runtime faults (iteration budget, deliberate [`Inst::Fail`]s) with
/// source provenance.
pub fn run_kernel_range(
    kernel: &IrKernel,
    bindings: &[Binding<'_>],
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<(), ExecError> {
    let (dx, dy, linear) = domain_extents(domain_shape);
    debug_assert!(range.end <= dx * dy, "domain range exceeds the domain");
    let mut out_buf = Vec::with_capacity(kernel.outputs.len());
    let mut out_width = Vec::with_capacity(kernel.outputs.len());
    for (_, p) in kernel.output_params() {
        let slot_param = kernel.outputs[out_buf.len()] as usize;
        match &bindings[slot_param] {
            Binding::Out(i) => out_buf.push(*i),
            _ => {
                return Err(ExecError {
                    msg: format!("output parameter `{}` is not bound to an output buffer", p.name),
                    span: kernel.span,
                    element: None,
                })
            }
        }
        out_width.push(p.ty.width as usize);
    }
    let mut m = Machine {
        kernel,
        outputs,
        out_buf,
        out_width,
        out_start: range.start,
        pos: (0, 0),
        domain: (dx, dy),
        linear,
        regs: kernel
            .regs
            .iter()
            .map(|t| Value::zero(eval::brook_to_glsl_type(*t)))
            .collect(),
        iterations: 0,
    };
    for p in range {
        m.pos = (p % dx, p / dx);
        m.iterations = 0;
        m.run_element(bindings)?;
    }
    Ok(())
}

/// Serial reduction: folds the kernel body over every input element,
/// seeding the accumulator register per step — the same fold order as
/// the tree walker (bit-identical results).
///
/// # Errors
/// Usage faults (non-reduce kernel) and runtime faults.
pub fn run_reduce(kernel: &IrKernel, data: &[f32]) -> Result<f32, ExecError> {
    let usage = |msg: String| ExecError {
        msg,
        span: kernel.span,
        element: None,
    };
    if !kernel.is_reduce {
        return Err(usage(format!("kernel `{}` is not a reduce kernel", kernel.name)));
    }
    let op = kernel
        .reduce_op
        .ok_or_else(|| usage("reduce kernel without a detected operation".into()))?;
    let acc_reg = kernel
        .acc_reg
        .ok_or_else(|| usage("reduce kernel without an accumulator".into()))?;
    let input_param = kernel
        .params
        .iter()
        .position(|p| p.kind == brook_lang::ast::ParamKind::Stream)
        .ok_or_else(|| usage("reduce kernel without an input stream".into()))?;
    let mut acc = op.identity();
    let elem_shape = [1usize];
    // Binding setup is hoisted out of the fold loop: the vector, the
    // non-input (accumulator-scalar) slot list, the machine and its
    // register frame are all built once and updated in place, so the
    // loop itself allocates nothing and touches exactly two bindings
    // per step. The per-step slice of the input (`&data[i..=i]` with
    // shape `[1]`, position `(i, 0)`, domain `(1, 1)`) mirrors the tree
    // walker exactly, keeping `indexof` and element addressing
    // bit-identical.
    let mut bindings: Vec<Binding<'_>> = kernel
        .params
        .iter()
        .enumerate()
        .map(|(pi, _)| {
            if pi == input_param {
                Binding::Elem {
                    data: &data[..data.len().min(1)],
                    shape: &elem_shape,
                    width: 1,
                }
            } else {
                Binding::Scalar(Value::Float(acc))
            }
        })
        .collect();
    let scalar_slots: Vec<usize> = (0..kernel.params.len()).filter(|pi| *pi != input_param).collect();
    let mut m = Machine {
        kernel,
        outputs: &mut [],
        out_buf: Vec::new(),
        out_width: Vec::new(),
        out_start: 0,
        pos: (0, 0),
        domain: (1, 1),
        linear: true,
        regs: kernel
            .regs
            .iter()
            .map(|t| Value::zero(eval::brook_to_glsl_type(*t)))
            .collect(),
        iterations: 0,
    };
    for i in 0..data.len() {
        bindings[input_param] = Binding::Elem {
            data: &data[i..=i],
            shape: &elem_shape,
            width: 1,
        };
        for pi in &scalar_slots {
            bindings[*pi] = Binding::Scalar(Value::Float(acc));
        }
        m.pos = (i, 0);
        m.iterations = 0;
        m.regs[acc_reg as usize] = Value::Float(acc);
        m.run_element(&bindings)?;
        acc = m.regs[acc_reg as usize]
            .as_float()
            .ok_or_else(|| usage("reduce accumulator lost its value".into()))?;
    }
    Ok(acc)
}

impl Machine<'_, '_> {
    fn err_at(&self, at: usize, msg: impl Into<String>) -> ExecError {
        ExecError {
            msg: msg.into(),
            span: self.kernel.spans[at],
            // Row-major linear index of the faulting element — the lane
            // engine's fault tests pin that this names the diverged
            // lane's element, not its block.
            element: Some(self.pos.1 * self.domain.0 + self.pos.0),
        }
    }

    /// Scalar offset of the current position inside the (possibly
    /// partitioned) output buffers.
    fn out_offset(&self, width: usize) -> usize {
        let (x, y) = self.pos;
        let elem = y * self.domain.0 + x;
        (elem - self.out_start) * width
    }

    /// Proportional element index of input stream `shape` for the
    /// current output position — identical arithmetic to the tree
    /// walker and the generated GLSL.
    fn input_index(&self, shape: &[usize]) -> (usize, usize) {
        input_index(self.pos, self.domain, shape)
    }

    fn elem_value(&self, data: &[f32], shape: &[usize], width: u8) -> Value {
        let (ix, iy) = self.input_index(shape);
        let cols = if shape.len() == 2 {
            shape[1]
        } else {
            shape.iter().product()
        };
        let idx = (iy * cols + ix) * width as usize;
        eval::value_from_slice(&data[idx..idx + width as usize])
    }

    fn read_out(&self, slot: u16) -> Value {
        let w = self.out_width[slot as usize];
        let base = self.out_offset(w);
        eval::value_from_slice(&self.outputs[self.out_buf[slot as usize]][base..base + w])
    }

    fn write_out(&mut self, slot: u16, v: Value) {
        let w = self.out_width[slot as usize];
        let base = self.out_offset(w);
        let lanes = v.to_vec4();
        for (i, out) in self.outputs[self.out_buf[slot as usize]][base..base + w]
            .iter_mut()
            .enumerate()
        {
            *out = lanes[i];
        }
    }

    #[inline]
    fn run_element(&mut self, bindings: &[Binding<'_>]) -> Result<(), ExecError> {
        let insts = &self.kernel.insts;
        let mut pc = 0usize;
        while pc < insts.len() {
            match &insts[pc] {
                Inst::Nop => {}
                Inst::Const { dst, v } => self.regs[*dst as usize] = *v,
                Inst::Mov { dst, src } => self.regs[*dst as usize] = self.regs[*src as usize],
                Inst::DeclInit { dst, src, ty } => {
                    self.regs[*dst as usize] = eval::coerce_to(self.regs[*src as usize], *ty);
                }
                Inst::AssignLocal { dst, op, src } => {
                    let cur = self.regs[*dst as usize];
                    let rhs = self.regs[*src as usize];
                    self.regs[*dst as usize] =
                        eval::apply_assign(cur, *op, rhs).map_err(|m| self.err_at(pc, m))?;
                }
                Inst::Bin { dst, op, lhs, rhs } => {
                    let l = self.regs[*lhs as usize];
                    let r = self.regs[*rhs as usize];
                    self.regs[*dst as usize] =
                        eval::brook_bin_op(*op, l, r).map_err(|m| self.err_at(pc, m))?;
                }
                Inst::Un { dst, op, src } => {
                    let v = self.regs[*src as usize];
                    self.regs[*dst as usize] = match op {
                        brook_lang::ast::UnOp::Neg => match v {
                            Value::Int(i) => Value::Int(i.wrapping_neg()),
                            other => other
                                .map(|f| -f)
                                .ok_or_else(|| self.err_at(pc, "cannot negate a bool"))?,
                        },
                        brook_lang::ast::UnOp::Not => {
                            Value::Bool(!v.as_bool().ok_or_else(|| self.err_at(pc, "`!` needs a bool"))?)
                        }
                    };
                }
                Inst::CastInt { dst, src } => {
                    self.regs[*dst as usize] = Value::Int(match self.regs[*src as usize] {
                        Value::Float(f) => f as i32,
                        Value::Int(i) => i,
                        _ => return Err(self.err_at(pc, "int() needs a scalar")),
                    });
                }
                Inst::Construct { dst, width, args } => {
                    let vals: Vec<Value> = args.iter().map(|r| self.regs[*r as usize]).collect();
                    self.regs[*dst as usize] =
                        eval::construct(*width as usize, &vals).map_err(|m| self.err_at(pc, m))?;
                }
                Inst::Swizzle { dst, src, sel } => {
                    let v = self.regs[*src as usize];
                    self.regs[*dst as usize] = eval::swizzle(&v, sel).map_err(|m| self.err_at(pc, m))?;
                }
                Inst::SwizzleStore { dst, op, src, sel } => {
                    let current = self.regs[*dst as usize];
                    let mut lanes: Vec<f32> = current.lanes().to_vec();
                    if lanes.is_empty() {
                        return Err(self.err_at(pc, "cannot swizzle a non-float value"));
                    }
                    let view = eval::swizzle(&current, sel).map_err(|m| self.err_at(pc, m))?;
                    let combined = eval::apply_assign(view, *op, self.regs[*src as usize])
                        .map_err(|m| self.err_at(pc, m))?;
                    let lanes_src = combined.lanes();
                    for (i, c) in sel.bytes().enumerate() {
                        let li = eval::lane_index(c);
                        if li >= lanes.len() || i >= lanes_src.len() {
                            return Err(self.err_at(pc, "swizzle assignment out of range"));
                        }
                        lanes[li] = lanes_src[i];
                    }
                    self.regs[*dst as usize] = eval::value_from_slice(&lanes);
                }
                Inst::Builtin { dst, which, args } => {
                    let mut vals = Vec::with_capacity(args.len());
                    for r in args {
                        vals.push(match self.regs[*r as usize] {
                            Value::Int(i) => Value::Float(i as f32),
                            other => other,
                        });
                    }
                    let b = &BUILTINS[*which as usize];
                    self.regs[*dst as usize] =
                        eval::eval_brook_builtin(b.name, &vals).map_err(|m| self.err_at(pc, m))?;
                }
                Inst::Select { dst, cond, a, b } => {
                    let c = self.regs[*cond as usize]
                        .as_bool()
                        .ok_or_else(|| self.err_at(pc, "ternary condition is not a bool"))?;
                    self.regs[*dst as usize] = if c {
                        self.regs[*a as usize]
                    } else {
                        self.regs[*b as usize]
                    };
                }
                Inst::ReadElem { dst, param } => {
                    let Binding::Elem { data, shape, width } = &bindings[*param as usize] else {
                        return Err(self.err_at(
                            pc,
                            format!(
                                "parameter `{}` is not bound to an elementwise stream",
                                self.kernel.params[*param as usize].name
                            ),
                        ));
                    };
                    self.regs[*dst as usize] = self.elem_value(data, shape, *width);
                }
                Inst::ReadScalar { dst, param } => {
                    let Binding::Scalar(v) = &bindings[*param as usize] else {
                        return Err(self.err_at(
                            pc,
                            format!(
                                "parameter `{}` is not bound to a scalar",
                                self.kernel.params[*param as usize].name
                            ),
                        ));
                    };
                    self.regs[*dst as usize] = *v;
                }
                Inst::ReadOut { dst, out } => {
                    self.regs[*dst as usize] = self.read_out(*out);
                }
                Inst::WriteOut { out, op, src } => {
                    let cur = self.read_out(*out);
                    let rhs = self.regs[*src as usize];
                    let combined = eval::apply_assign(cur, *op, rhs).map_err(|m| self.err_at(pc, m))?;
                    self.write_out(*out, combined);
                }
                Inst::Gather {
                    dst,
                    param,
                    idx,
                    proven,
                } => {
                    let Binding::Gather { data, shape, width } = &bindings[*param as usize] else {
                        return Err(self.err_at(
                            pc,
                            format!(
                                "`{}` is not a gather parameter",
                                self.kernel.params[*param as usize].name
                            ),
                        ));
                    };
                    let mut ix = Vec::with_capacity(idx.len());
                    for r in idx {
                        ix.push(eval::gather_index(self.regs[*r as usize]).map_err(|m| self.err_at(pc, m))?);
                    }
                    let elide = proven.as_ref().is_some_and(|p| {
                        eval::proven_fits_dyn(p, shape, eval::indexof_comp_max(self.domain, self.linear))
                    });
                    self.regs[*dst as usize] = if elide {
                        eval::gather_unclamped(data, shape, *width, &ix)
                    } else {
                        eval::gather_clamped(data, shape, *width, &ix)
                    };
                }
                Inst::Indexof { dst, param } => {
                    self.regs[*dst as usize] = match &bindings[*param as usize] {
                        Binding::Elem { shape, .. } => {
                            Value::Vec2(indexof_elem(self.pos, self.domain, shape))
                        }
                        Binding::Out(_) | Binding::Scalar(_) => {
                            Value::Vec2(indexof_pos(self.pos, self.domain, self.linear))
                        }
                        Binding::Gather { .. } => {
                            return Err(self.err_at(
                                pc,
                                format!(
                                    "indexof on non-stream `{}`",
                                    self.kernel.params[*param as usize].name
                                ),
                            ))
                        }
                    };
                }
                Inst::Jump { target } => {
                    let t = *target as usize;
                    if t <= pc {
                        self.iterations += 1;
                        if self.iterations > MAX_ITERATIONS {
                            return Err(self.err_at(pc, "iteration budget exceeded (unbounded loop)"));
                        }
                    }
                    pc = t;
                    continue;
                }
                Inst::BranchIfFalse { cond, target } => {
                    let c = self.regs[*cond as usize]
                        .as_bool()
                        .ok_or_else(|| self.err_at(pc, "branch condition is not a bool"))?;
                    if !c {
                        let t = *target as usize;
                        if t <= pc {
                            self.iterations += 1;
                            if self.iterations > MAX_ITERATIONS {
                                return Err(self.err_at(pc, "iteration budget exceeded (unbounded loop)"));
                            }
                        }
                        pc = t;
                        continue;
                    }
                }
                Inst::Ret => return Ok(()),
                Inst::Fail { msg, .. } => return Err(self.err_at(pc, msg.clone())),
            }
            pc += 1;
        }
        Ok(())
    }
}

/// One register frame dry-run helper for unit tests: runs a kernel over
/// a tiny 1-D domain with the given scalar inputs.
#[cfg(test)]
pub(crate) fn run_simple(kernel: &IrKernel, inputs: &[&[f32]], n: usize) -> Result<Vec<f32>, ExecError> {
    let shape = [n];
    let mut bindings = Vec::new();
    let mut next_input = 0usize;
    let mut n_outs = 0usize;
    for p in &kernel.params {
        match p.kind {
            brook_lang::ast::ParamKind::Stream => {
                bindings.push(Binding::Elem {
                    data: inputs[next_input],
                    shape: &shape,
                    width: 1,
                });
                next_input += 1;
            }
            brook_lang::ast::ParamKind::OutStream => {
                bindings.push(Binding::Out(n_outs));
                n_outs += 1;
            }
            _ => panic!("run_simple only supports stream params"),
        }
    }
    let mut buf = vec![0.0f32; n];
    {
        let mut outs: Vec<&mut [f32]> = vec![&mut buf];
        run_kernel_range(kernel, &bindings, &mut outs, &shape, 0..n)?;
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    #[test]
    fn straight_line_math() {
        let k = lower_src("kernel void f(float a<>, out float o<>) { o = a * 2.0 + 1.0; }");
        let out = run_simple(&k, &[&[1.0, 2.0, 3.0]], 3).expect("run");
        assert_eq!(out, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn loops_and_locals() {
        let k = lower_src(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 4; i++) { s += a; }
                o = s;
            }",
        );
        let out = run_simple(&k, &[&[1.5, -2.0]], 2).expect("run");
        assert_eq!(out, vec![6.0, -8.0]);
    }

    #[test]
    fn unbounded_loop_hits_budget_with_provenance() {
        let src = "kernel void f(float a<>, out float o<>) {\n    float s = a;\n    while (s > -1.0) { s += 1.0; }\n    o = s;\n}";
        let k = lower_src(src);
        let err = run_simple(&k, &[&[0.0]], 1).expect_err("must exhaust the budget");
        assert!(err.msg.contains("iteration budget"), "{}", err.msg);
        assert_eq!(err.span.line, 3, "error must point at the while loop's line");
    }

    #[test]
    fn reduce_folds_in_order() {
        let k = lower_src("reduce void sum(float a<>, reduce float r<>) { r += a; }");
        let total = run_reduce(&k, &[1.0, 2.0, 3.0, 4.0]).expect("reduce");
        assert_eq!(total, 10.0);
    }

    #[test]
    fn kernel_return_finishes_element() {
        let k = lower_src(
            "kernel void f(float a<>, out float o<>) { o = 5.0; if (a > 0.0) { return; } o = 1.0; }",
        );
        let out = run_simple(&k, &[&[1.0, -1.0]], 2).expect("run");
        assert_eq!(out, vec![5.0, 1.0]);
    }
}
