//! # Explicit SIMD slab execution (`std::arch`) and vectorized reductions
//!
//! Tier-2 (`crate::tier`) threads BrookIR into native closures over the
//! lane engine's structure-of-arrays slabs and *hopes* rustc
//! autovectorizes the 16-lane loop bodies. This module removes the
//! hope: the hot slab operations get hand-written `core::arch::x86_64`
//! SSE2/AVX2 kernels selected by **runtime feature detection**
//! ([`detect`]), with the scalar loop bodies retained verbatim (see
//! [`mod@self`]'s `scalar` submodule) as the portable fallback for
//! non-x86_64 targets and the `BROOK_SIMD=off` override.
//!
//! ## The bit-exactness rules
//!
//! Results must stay bit-identical with the scalar interpreter chain,
//! so every vector kernel obeys three pinned rules:
//!
//! 1. **No FMA contraction.** Fused multiply-add changes rounding;
//!    only the exact IEEE-754 operations the scalar bodies perform
//!    (`add/sub/mul/div/sqrt`, sign-bit ops) are emitted. Rust never
//!    contracts `a * b + c` on its own, and neither do we.
//! 2. **Operand order preserved.** `f32::min`/`f32::max` are not
//!    commutative at the bit level (NaN and `±0.0` ties); the vector
//!    sequence replicates rustc's exact lowering —
//!    `nan = unord(a, a); t = min_ps(b, a); blend(t, b, nan)` — so
//!    every lane equals `f32::min(a, b)` bit-for-bit, NaN included.
//! 3. **Masked blends, not masked math.** Partial blocks compute all
//!    16 lanes (slabs are always initialized and `f32` arithmetic on
//!    dead-lane garbage has no observable effect) and then blend-store
//!    only the live lanes, which is exactly the scalar masked walk's
//!    write set. Per-lane *memory* walks (element reads, gathers)
//!    still touch live lanes only.
//!
//! Faults keep falling through SIMD → tier → lanes → scalar: the SIMD
//! steps are straight-line arithmetic and cannot fault; control flow,
//! budgets and `Fail` sites stay on the existing tier paths with
//! identical element and source-line attribution.
//!
//! ## Vectorized reductions
//!
//! The lane planner hard-rejects reduce kernels (cross-element
//! accumulator dependence). [`ReduceProgram`] opens them to the fast
//! tiers when — and only when — the fold is **provably
//! reassociation-safe**:
//!
//! * the combine must be `min`/`max` (`f32` sum and product fold
//!   serially: reassociation changes rounding);
//! * the combine operand must be proven **NaN-free** and strictly
//!   **sign-definite** by the abstract interpreter's value ranges
//!   ([`crate::KernelFacts::reduce_combine`]) — then `min`/`max` is a
//!   pure lattice operation whose result has one bit pattern under any
//!   association and order, because equal non-zero non-NaN floats are
//!   bit-identical and `±0.0`/NaN ties cannot occur.
//!
//! Admitted kernels run as a synthesized elementwise **map phase**
//! (per-element combine operands, through the lane/tier engines and
//! parallelizable across workers) followed by a deterministic SIMD
//! **fold** seeded with the fold identity. Any map-phase fault
//! discards the partials and re-runs the whole reduction through
//! [`crate::interp::run_reduce`], which owns the canonical scalar
//! error surface. Each admission decision is recorded in the module's
//! `ComplianceReport` like every other plan.

use crate::interp::{self, Binding, ExecError};
use crate::lanes::{self, COp, LaneKernel, Mask, LANES};
use crate::tier::{self, TierKernel};
use crate::{AssignOp, Inst, IrKernel, KernelFacts, Node, ParamKind, Reg};
use brook_lang::ast::ScalarKind;
use brook_lang::builtins::BUILTINS;
use brook_lang::ReduceOp;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Level selection.
// ---------------------------------------------------------------------------

/// The instruction-set level the explicit-SIMD kernels run at.
/// Ordered: `Scalar < Sse2 < Avx2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Portable scalar loop bodies (the verbatim tier semantics).
    Scalar,
    /// 128-bit `core::arch::x86_64` kernels (x86_64 baseline).
    Sse2,
    /// 256-bit kernels (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (used in reports and the module toggle
    /// fingerprint).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The widest level the running CPU supports, via
/// `is_x86_feature_detected!`. Non-x86_64 targets always report
/// [`SimdLevel::Scalar`].
#[must_use]
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
    }
    SimdLevel::Scalar
}

/// Parses a `BROOK_SIMD` override value. Unrecognized strings are
/// ignored (auto-detection applies).
#[must_use]
pub fn parse_level(v: &str) -> Option<SimdLevel> {
    match v.to_ascii_lowercase().as_str() {
        "off" | "scalar" | "0" => Some(SimdLevel::Scalar),
        "sse2" => Some(SimdLevel::Sse2),
        "avx2" => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// The `BROOK_SIMD` environment override, if set and recognized.
#[must_use]
pub fn from_env() -> Option<SimdLevel> {
    std::env::var("BROOK_SIMD").ok().and_then(|v| parse_level(&v))
}

/// The effective level: the `BROOK_SIMD` override capped at what the
/// CPU supports, else plain detection.
#[must_use]
pub fn auto() -> SimdLevel {
    match from_env() {
        Some(l) => l.min(detect()),
        None => detect(),
    }
}

/// The `BrookContext` SIMD toggle. [`SimdMode::Auto`] defers to the
/// `BROOK_SIMD` environment override and CPU detection; the explicit
/// modes force a level (still capped at what the CPU supports, so a
/// forced `Avx2` on an SSE2-only machine degrades safely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// `BROOK_SIMD` override if set, else runtime detection.
    #[default]
    Auto,
    /// Force the portable scalar bodies.
    Off,
    /// Force the 128-bit kernels.
    Sse2,
    /// Force the 256-bit kernels.
    Avx2,
}

impl SimdMode {
    /// Resolves the mode to the level execution will actually use.
    #[must_use]
    pub fn resolve(self) -> SimdLevel {
        match self {
            SimdMode::Auto => auto(),
            SimdMode::Off => SimdLevel::Scalar,
            SimdMode::Sse2 => SimdLevel::Sse2.min(detect()),
            SimdMode::Avx2 => SimdLevel::Avx2.min(detect()),
        }
    }
}

// ---------------------------------------------------------------------------
// 32-byte-aligned slab arenas.
// ---------------------------------------------------------------------------

/// One 32-byte-aligned group of 8 floats; the allocation unit of
/// [`AlignedF32`].
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy, Default)]
struct FChunk([f32; 8]);

/// One 32-byte-aligned group of 8 ints; the allocation unit of
/// [`AlignedI32`].
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy, Default)]
struct IChunk([i32; 8]);

/// A zero-filled `f32` arena whose base is 32-byte aligned, so AVX2
/// aligned loads/stores of [`LANES`]-aligned slab blocks are legal.
/// Drop-in replacement for the lane engine's former `Vec<f32>` slabs.
#[derive(Debug, Default)]
pub struct AlignedF32 {
    chunks: Vec<FChunk>,
    len: usize,
}

impl AlignedF32 {
    /// Clears and re-sizes the arena to `len` zeroed floats (the exact
    /// `Vec::clear` + `Vec::resize(len, 0.0)` semantics the slabs had).
    pub fn clear_resize(&mut self, len: usize) {
        self.chunks.clear();
        self.chunks.resize(len.div_ceil(8), FChunk([0.0; 8]));
        self.len = len;
        debug_assert_eq!(
            self.chunks.as_ptr() as usize % 32,
            0,
            "f32 slab arena lost 32-byte alignment"
        );
    }

    /// The arena as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `chunks` owns at least `len` contiguous, initialized
        // `f32`s (`FChunk` is `repr(C)` over `[f32; 8]`).
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f32>(), self.len) }
    }

    /// The arena as a plain mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as `as_slice`, with unique access.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

/// The `i32` twin of [`AlignedF32`].
#[derive(Debug, Default)]
pub struct AlignedI32 {
    chunks: Vec<IChunk>,
    len: usize,
}

impl AlignedI32 {
    /// Clears and re-sizes the arena to `len` zeroed ints.
    pub fn clear_resize(&mut self, len: usize) {
        self.chunks.clear();
        self.chunks.resize(len.div_ceil(8), IChunk([0; 8]));
        self.len = len;
        debug_assert_eq!(
            self.chunks.as_ptr() as usize % 32,
            0,
            "i32 slab arena lost 32-byte alignment"
        );
    }

    /// The arena as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        // SAFETY: `chunks` owns at least `len` contiguous, initialized
        // `i32`s (`IChunk` is `repr(C)` over `[i32; 8]`).
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<i32>(), self.len) }
    }

    /// The arena as a plain mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        // SAFETY: as `as_slice`, with unique access.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<i32>(), self.len) }
    }
}

// ---------------------------------------------------------------------------
// The vector operation vocabulary the tier compiler dispatches to.
// ---------------------------------------------------------------------------

/// Binary float slab operations with explicit vector kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VfOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `f32::min(a, b)` bit-exact (NaN in `a` selects `b`; ties select
    /// `a`).
    Min,
    /// `f32::max(a, b)` bit-exact.
    Max,
}

/// Unary float slab operations with explicit vector kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VuOp {
    Sqrt,
    /// Sign-bit clear — exactly `f32::abs`, NaN payloads preserved.
    Abs,
    /// Sign-bit flip — exactly Rust unary `-`.
    Neg,
}

/// Binary wrapping-int slab operations with explicit vector kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ViOp {
    Add,
    Sub,
    /// `pmulld` needs SSE4.1; under plain SSE2 the scalar body runs.
    Mul,
}

/// Slab offsets of one fused arith→arith pair (one component block;
/// `ta`/`tb` route op1's in-register result into op2's operands).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedFF {
    pub x1: usize,
    pub y1: usize,
    pub d1: usize,
    pub x2: usize,
    pub y2: usize,
    pub d2: usize,
    pub ta: bool,
    pub tb: bool,
}

/// Slab offsets of one fused arith→compare pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedFC {
    pub x1: usize,
    pub y1: usize,
    pub d1: usize,
    pub x2: usize,
    pub y2: usize,
    pub ta: bool,
    pub tb: bool,
}

/// Slab offsets of one gather/elem-fetch→arith tail (the fetched
/// lane values arrive in a stack buffer).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TBuf {
    pub d2: usize,
    pub a2: usize,
    pub b2: usize,
    pub ta: bool,
    pub tb: bool,
}

/// The tier engine's masked lane walk, replicated for the scalar
/// reference bodies: full blocks run the unmasked loop, partial blocks
/// walk set bits.
macro_rules! simd_loop {
    ($m:expr, $l:ident, $body:block) => {
        if $m == FULL {
            for $l in 0..LANES {
                $body
            }
        } else {
            let mut mm = $m;
            while mm != 0 {
                let $l = mm.trailing_zeros() as usize;
                $body
                mm &= mm - 1;
            }
        }
    };
}

/// The scalar loop bodies, verbatim from the tier closures. These are
/// the portable fallback and the reference the vector kernels are
/// tested bit-exact against.
pub(crate) mod scalar {
    use super::{FusedFC, FusedFF, TBuf, VfOp, ViOp, VuOp};
    use crate::lanes::{COp, Mask, FULL, LANES};

    pub(crate) fn fop(op: VfOp) -> fn(f32, f32) -> f32 {
        match op {
            VfOp::Add => |a, b| a + b,
            VfOp::Sub => |a, b| a - b,
            VfOp::Mul => |a, b| a * b,
            VfOp::Div => |a, b| a / b,
            VfOp::Min => f32::min,
            VfOp::Max => f32::max,
        }
    }

    pub(crate) fn uop(op: VuOp) -> fn(f32) -> f32 {
        match op {
            VuOp::Sqrt => f32::sqrt,
            VuOp::Abs => f32::abs,
            VuOp::Neg => |x| -x,
        }
    }

    pub(crate) fn iop(op: ViOp) -> fn(i32, i32) -> i32 {
        match op {
            ViOp::Add => i32::wrapping_add,
            ViOp::Sub => i32::wrapping_sub,
            ViOp::Mul => i32::wrapping_mul,
        }
    }

    pub(crate) fn cop(op: COp) -> fn(f32, f32) -> bool {
        match op {
            COp::Lt => |a, b| a < b,
            COp::Le => |a, b| a <= b,
            COp::Gt => |a, b| a > b,
            COp::Ge => |a, b| a >= b,
            COp::Eq => |a, b| a == b,
            COp::Ne => |a, b| a != b,
        }
    }

    pub(super) fn vf_bin(op: VfOp, f: &mut [f32], d: usize, x: usize, y: usize, m: Mask) {
        let g = fop(op);
        simd_loop!(m, l, {
            f[d + l] = g(f[x + l], f[y + l]);
        });
    }

    pub(super) fn vf_un(op: VuOp, f: &mut [f32], d: usize, x: usize, m: Mask) {
        let g = uop(op);
        simd_loop!(m, l, {
            f[d + l] = g(f[x + l]);
        });
    }

    pub(super) fn vi_bin(op: ViOp, i: &mut [i32], d: usize, x: usize, y: usize, m: Mask) {
        let g = iop(op);
        simd_loop!(m, l, {
            i[d + l] = g(i[x + l], i[y + l]);
        });
    }

    /// All-lane compare bits; lanes outside the caller's mask are
    /// unspecified (the caller blends with its mask).
    pub(super) fn vf_cmp(op: COp, f: &[f32], x: usize, y: usize) -> Mask {
        let g = cop(op);
        let mut bits: Mask = 0;
        for l in 0..LANES {
            if g(f[x + l], f[y + l]) {
                bits |= 1 << l;
            }
        }
        bits
    }

    pub(super) fn vf_sel(f: &mut [f32], d: usize, a: usize, b: usize, cond: Mask, m: Mask) {
        simd_loop!(m, l, {
            f[d + l] = if cond & (1 << l) != 0 { f[a + l] } else { f[b + l] };
        });
    }

    pub(super) fn vf_fused_ff(op1: VfOp, op2: VfOp, f: &mut [f32], p: FusedFF, m: Mask) {
        let (g1, g2) = (fop(op1), fop(op2));
        simd_loop!(m, l, {
            let t = g1(f[p.x1 + l], f[p.y1 + l]);
            f[p.d1 + l] = t;
            let xa = if p.ta { t } else { f[p.x2 + l] };
            let xb = if p.tb { t } else { f[p.y2 + l] };
            f[p.d2 + l] = g2(xa, xb);
        });
    }

    pub(super) fn vf_fused_fc(op1: VfOp, cmp: COp, f: &mut [f32], p: FusedFC, m: Mask) -> Mask {
        let (g1, gc) = (fop(op1), cop(cmp));
        let mut bits: Mask = 0;
        simd_loop!(m, l, {
            let t = g1(f[p.x1 + l], f[p.y1 + l]);
            f[p.d1 + l] = t;
            let xa = if p.ta { t } else { f[p.x2 + l] };
            let xb = if p.tb { t } else { f[p.y2 + l] };
            if gc(xa, xb) {
                bits |= 1 << l;
            }
        });
        bits
    }

    pub(super) fn vf_arith_tbuf(op: VfOp, f: &mut [f32], t: &[f32; LANES], p: TBuf, m: Mask) {
        let g = fop(op);
        simd_loop!(m, l, {
            let xa = if p.ta { t[l] } else { f[p.a2 + l] };
            let xb = if p.tb { t[l] } else { f[p.b2 + l] };
            f[p.d2 + l] = g(xa, xb);
        });
    }

    pub(super) fn fold_minmax(op: crate::ReduceOp, xs: &[f32]) -> f32 {
        let g: fn(f32, f32) -> f32 = if matches!(op, crate::ReduceOp::Min) {
            f32::min
        } else {
            f32::max
        };
        xs.iter().fold(op.identity(), |acc, &x| g(acc, x))
    }
}

// ---------------------------------------------------------------------------
// x86_64 kernels.
// ---------------------------------------------------------------------------

/// Lane-mask expansion tables: bit `l` of the mask selects all-ones in
/// word `l`. `MASK4` serves SSE2 nibbles, `MASK8` AVX2 half-blocks.
#[cfg(target_arch = "x86_64")]
static MASK4: [[i32; 4]; 16] = build_mask4();
#[cfg(target_arch = "x86_64")]
static MASK8: [[i32; 8]; 256] = build_mask8();

#[cfg(target_arch = "x86_64")]
const fn build_mask4() -> [[i32; 4]; 16] {
    let mut t = [[0i32; 4]; 16];
    let mut m = 0;
    while m < 16 {
        let mut l = 0;
        while l < 4 {
            if m & (1 << l) != 0 {
                t[m][l] = -1;
            }
            l += 1;
        }
        m += 1;
    }
    t
}

#[cfg(target_arch = "x86_64")]
const fn build_mask8() -> [[i32; 8]; 256] {
    let mut t = [[0i32; 8]; 256];
    let mut m = 0;
    while m < 256 {
        let mut l = 0;
        while l < 8 {
            if m & (1 << l) != 0 {
                t[m][l] = -1;
            }
            l += 1;
        }
        m += 1;
    }
    t
}

/// 128-bit kernels. SSE2 is in the x86_64 baseline, so these are
/// always sound to call on this architecture.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::{FusedFC, FusedFF, TBuf, VfOp, ViOp, VuOp, MASK4};
    use crate::lanes::{COp, Mask, FULL, LANES};
    use core::arch::x86_64::*;

    #[inline(always)]
    unsafe fn vf(op: VfOp, a: __m128, b: __m128) -> __m128 {
        match op {
            VfOp::Add => _mm_add_ps(a, b),
            VfOp::Sub => _mm_sub_ps(a, b),
            VfOp::Mul => _mm_mul_ps(a, b),
            VfOp::Div => _mm_div_ps(a, b),
            // rustc's exact `f32::min` lowering: NaN lanes of `a` take
            // `b`; ties take `a` (the second minps operand).
            VfOp::Min => {
                let nan = _mm_cmpunord_ps(a, a);
                let t = _mm_min_ps(b, a);
                _mm_or_ps(_mm_and_ps(nan, b), _mm_andnot_ps(nan, t))
            }
            VfOp::Max => {
                let nan = _mm_cmpunord_ps(a, a);
                let t = _mm_max_ps(b, a);
                _mm_or_ps(_mm_and_ps(nan, b), _mm_andnot_ps(nan, t))
            }
        }
    }

    #[inline(always)]
    unsafe fn vu(op: VuOp, a: __m128) -> __m128 {
        match op {
            VuOp::Sqrt => _mm_sqrt_ps(a),
            VuOp::Abs => _mm_and_ps(a, _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff))),
            VuOp::Neg => _mm_xor_ps(a, _mm_set1_ps(-0.0)),
        }
    }

    #[inline(always)]
    unsafe fn vc(op: COp, a: __m128, b: __m128) -> __m128 {
        match op {
            COp::Lt => _mm_cmplt_ps(a, b),
            COp::Le => _mm_cmple_ps(a, b),
            COp::Gt => _mm_cmpgt_ps(a, b),
            COp::Ge => _mm_cmpge_ps(a, b),
            // `==` is false on NaN (ordered), `!=` true (unordered) —
            // exactly cmpeqps / cmpneqps.
            COp::Eq => _mm_cmpeq_ps(a, b),
            COp::Ne => _mm_cmpneq_ps(a, b),
        }
    }

    /// Loads one [`LANES`]-float slab block as 4 vectors.
    #[inline(always)]
    unsafe fn ld(f: &[f32], off: usize) -> [__m128; 4] {
        let s = &f[off..off + LANES];
        let p = s.as_ptr();
        debug_assert_eq!(p as usize % 16, 0, "slab block not 16-byte aligned");
        [
            _mm_load_ps(p),
            _mm_load_ps(p.add(4)),
            _mm_load_ps(p.add(8)),
            _mm_load_ps(p.add(12)),
        ]
    }

    /// Loads one 16-float stack buffer (unaligned).
    #[inline(always)]
    unsafe fn ldu(t: &[f32; LANES]) -> [__m128; 4] {
        let p = t.as_ptr();
        [
            _mm_loadu_ps(p),
            _mm_loadu_ps(p.add(4)),
            _mm_loadu_ps(p.add(8)),
            _mm_loadu_ps(p.add(12)),
        ]
    }

    /// Mask-blend-stores one slab block: live lanes take `v`, dead
    /// lanes keep memory — the scalar walk's exact write set.
    #[inline(always)]
    unsafe fn st(f: &mut [f32], off: usize, v: [__m128; 4], m: Mask) {
        let s = &mut f[off..off + LANES];
        let p = s.as_mut_ptr();
        debug_assert_eq!(p as usize % 16, 0, "slab block not 16-byte aligned");
        if m == FULL {
            _mm_store_ps(p, v[0]);
            _mm_store_ps(p.add(4), v[1]);
            _mm_store_ps(p.add(8), v[2]);
            _mm_store_ps(p.add(12), v[3]);
            return;
        }
        for (q, vq) in v.iter().enumerate() {
            let nib = ((m >> (q * 4)) & 0xF) as usize;
            if nib == 0 {
                continue;
            }
            let pq = p.add(q * 4);
            if nib == 0xF {
                _mm_store_ps(pq, *vq);
            } else {
                let mf = _mm_castsi128_ps(_mm_loadu_si128(MASK4[nib].as_ptr().cast()));
                let old = _mm_load_ps(pq);
                _mm_store_ps(pq, _mm_or_ps(_mm_and_ps(mf, *vq), _mm_andnot_ps(mf, old)));
            }
        }
    }

    #[inline(always)]
    unsafe fn zip(op: VfOp, a: [__m128; 4], b: [__m128; 4]) -> [__m128; 4] {
        [
            vf(op, a[0], b[0]),
            vf(op, a[1], b[1]),
            vf(op, a[2], b[2]),
            vf(op, a[3], b[3]),
        ]
    }

    pub(super) unsafe fn vf_bin(op: VfOp, f: &mut [f32], d: usize, x: usize, y: usize, m: Mask) {
        let r = zip(op, ld(f, x), ld(f, y));
        st(f, d, r, m);
    }

    pub(super) unsafe fn vf_un(op: VuOp, f: &mut [f32], d: usize, x: usize, m: Mask) {
        let a = ld(f, x);
        let r = [vu(op, a[0]), vu(op, a[1]), vu(op, a[2]), vu(op, a[3])];
        st(f, d, r, m);
    }

    pub(super) unsafe fn vf_cmp(op: COp, f: &[f32], x: usize, y: usize) -> Mask {
        let a = ld(f, x);
        let b = ld(f, y);
        let mut bits: Mask = 0;
        for q in 0..4 {
            bits |= (_mm_movemask_ps(vc(op, a[q], b[q])) as Mask) << (q * 4);
        }
        bits
    }

    pub(super) unsafe fn vf_sel(f: &mut [f32], d: usize, a: usize, b: usize, cond: Mask, m: Mask) {
        let va = ld(f, a);
        let vb = ld(f, b);
        let mut r = [_mm_setzero_ps(); 4];
        for (q, rq) in r.iter_mut().enumerate() {
            let nib = ((cond >> (q * 4)) & 0xF) as usize;
            let cm = _mm_castsi128_ps(_mm_loadu_si128(MASK4[nib].as_ptr().cast()));
            *rq = _mm_or_ps(_mm_and_ps(cm, va[q]), _mm_andnot_ps(cm, vb[q]));
        }
        st(f, d, r, m);
    }

    #[inline(always)]
    unsafe fn ldi(i: &[i32], off: usize) -> [__m128i; 4] {
        let s = &i[off..off + LANES];
        let p = s.as_ptr().cast::<__m128i>();
        [
            _mm_loadu_si128(p),
            _mm_loadu_si128(p.add(1)),
            _mm_loadu_si128(p.add(2)),
            _mm_loadu_si128(p.add(3)),
        ]
    }

    #[inline(always)]
    unsafe fn gi(op: ViOp, x: __m128i, y: __m128i) -> __m128i {
        match op {
            ViOp::Add => _mm_add_epi32(x, y),
            ViOp::Sub => _mm_sub_epi32(x, y),
            ViOp::Mul => unreachable!("pmulld needs SSE4.1; handled scalar"),
        }
    }

    pub(super) unsafe fn vi_bin(op: ViOp, i: &mut [i32], d: usize, x: usize, y: usize, m: Mask) {
        if matches!(op, ViOp::Mul) {
            // pmulld is SSE4.1; keep the scalar body under plain SSE2.
            super::scalar::vi_bin(op, i, d, x, y, m);
            return;
        }
        let a = ldi(i, x);
        let b = ldi(i, y);
        let r = [
            gi(op, a[0], b[0]),
            gi(op, a[1], b[1]),
            gi(op, a[2], b[2]),
            gi(op, a[3], b[3]),
        ];
        let s = &mut i[d..d + LANES];
        let p = s.as_mut_ptr().cast::<__m128i>();
        if m == FULL {
            _mm_storeu_si128(p, r[0]);
            _mm_storeu_si128(p.add(1), r[1]);
            _mm_storeu_si128(p.add(2), r[2]);
            _mm_storeu_si128(p.add(3), r[3]);
            return;
        }
        for (q, rq) in r.iter().enumerate() {
            let nib = ((m >> (q * 4)) & 0xF) as usize;
            if nib == 0 {
                continue;
            }
            let pq = p.add(q);
            if nib == 0xF {
                _mm_storeu_si128(pq, *rq);
            } else {
                let mi = _mm_loadu_si128(MASK4[nib].as_ptr().cast());
                let old = _mm_loadu_si128(pq);
                _mm_storeu_si128(
                    pq,
                    _mm_or_si128(_mm_and_si128(mi, *rq), _mm_andnot_si128(mi, old)),
                );
            }
        }
    }

    pub(super) unsafe fn vf_fused_ff(op1: VfOp, op2: VfOp, f: &mut [f32], p: FusedFF, m: Mask) {
        let t = zip(op1, ld(f, p.x1), ld(f, p.y1));
        // Store op1's block before loading op2's operands: an operand
        // aliasing `d1` must observe the freshly stored lanes, exactly
        // as the scalar per-lane order does.
        st(f, p.d1, t, m);
        let xa = if p.ta { t } else { ld(f, p.x2) };
        let xb = if p.tb { t } else { ld(f, p.y2) };
        st(f, p.d2, zip(op2, xa, xb), m);
    }

    pub(super) unsafe fn vf_fused_fc(op1: VfOp, cmp: COp, f: &mut [f32], p: FusedFC, m: Mask) -> Mask {
        let t = zip(op1, ld(f, p.x1), ld(f, p.y1));
        st(f, p.d1, t, m);
        let xa = if p.ta { t } else { ld(f, p.x2) };
        let xb = if p.tb { t } else { ld(f, p.y2) };
        let mut bits: Mask = 0;
        for q in 0..4 {
            bits |= (_mm_movemask_ps(vc(cmp, xa[q], xb[q])) as Mask) << (q * 4);
        }
        bits
    }

    pub(super) unsafe fn vf_arith_tbuf(op: VfOp, f: &mut [f32], t: &[f32; LANES], p: TBuf, m: Mask) {
        let tv = ldu(t);
        let xa = if p.ta { tv } else { ld(f, p.a2) };
        let xb = if p.tb { tv } else { ld(f, p.b2) };
        st(f, p.d2, zip(op, xa, xb), m);
    }

    /// Plain `minps`/`maxps` fold. Only sound under the reduce
    /// admission proof (no NaN, no `±0.0` ties), where every order
    /// yields the same bits.
    pub(super) unsafe fn fold_minmax(op: crate::ReduceOp, xs: &[f32]) -> f32 {
        let is_min = matches!(op, crate::ReduceOp::Min);
        let id = op.identity();
        let mut vacc = _mm_set1_ps(id);
        let mut chunks = xs.chunks_exact(4);
        for c in chunks.by_ref() {
            let v = _mm_loadu_ps(c.as_ptr());
            vacc = if is_min {
                _mm_min_ps(vacc, v)
            } else {
                _mm_max_ps(vacc, v)
            };
        }
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), vacc);
        let g: fn(f32, f32) -> f32 = if is_min { f32::min } else { f32::max };
        let mut acc = lanes.iter().fold(id, |a, &x| g(a, x));
        for &x in chunks.remainder() {
            acc = g(acc, x);
        }
        acc
    }
}

/// 256-bit kernels, called only after `is_x86_feature_detected!("avx2")`.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{FusedFC, FusedFF, TBuf, VfOp, ViOp, VuOp, MASK8};
    use crate::lanes::{COp, Mask, FULL, LANES};
    use core::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn vf(op: VfOp, a: __m256, b: __m256) -> __m256 {
        match op {
            VfOp::Add => _mm256_add_ps(a, b),
            VfOp::Sub => _mm256_sub_ps(a, b),
            VfOp::Mul => _mm256_mul_ps(a, b),
            VfOp::Div => _mm256_div_ps(a, b),
            // rustc's exact `f32::min` lowering (see the SSE2 twin).
            VfOp::Min => {
                let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(a, a);
                _mm256_blendv_ps(_mm256_min_ps(b, a), b, nan)
            }
            VfOp::Max => {
                let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(a, a);
                _mm256_blendv_ps(_mm256_max_ps(b, a), b, nan)
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn vu(op: VuOp, a: __m256) -> __m256 {
        match op {
            VuOp::Sqrt => _mm256_sqrt_ps(a),
            VuOp::Abs => _mm256_and_ps(a, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff))),
            VuOp::Neg => _mm256_xor_ps(a, _mm256_set1_ps(-0.0)),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn vc(op: COp, a: __m256, b: __m256) -> __m256 {
        match op {
            COp::Lt => _mm256_cmp_ps::<_CMP_LT_OQ>(a, b),
            COp::Le => _mm256_cmp_ps::<_CMP_LE_OQ>(a, b),
            COp::Gt => _mm256_cmp_ps::<_CMP_GT_OQ>(a, b),
            COp::Ge => _mm256_cmp_ps::<_CMP_GE_OQ>(a, b),
            COp::Eq => _mm256_cmp_ps::<_CMP_EQ_OQ>(a, b),
            COp::Ne => _mm256_cmp_ps::<_CMP_NEQ_UQ>(a, b),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ld(f: &[f32], off: usize) -> [__m256; 2] {
        let s = &f[off..off + LANES];
        let p = s.as_ptr();
        debug_assert_eq!(p as usize % 32, 0, "slab block not 32-byte aligned");
        [_mm256_load_ps(p), _mm256_load_ps(p.add(8))]
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ldu(t: &[f32; LANES]) -> [__m256; 2] {
        let p = t.as_ptr();
        [_mm256_loadu_ps(p), _mm256_loadu_ps(p.add(8))]
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn st(f: &mut [f32], off: usize, v: [__m256; 2], m: Mask) {
        let s = &mut f[off..off + LANES];
        let p = s.as_mut_ptr();
        debug_assert_eq!(p as usize % 32, 0, "slab block not 32-byte aligned");
        if m == FULL {
            _mm256_store_ps(p, v[0]);
            _mm256_store_ps(p.add(8), v[1]);
            return;
        }
        let lo = (m & 0xFF) as usize;
        let hi = ((m >> 8) & 0xFF) as usize;
        if lo == 0xFF {
            _mm256_store_ps(p, v[0]);
        } else if lo != 0 {
            _mm256_maskstore_ps(p, _mm256_loadu_si256(MASK8[lo].as_ptr().cast()), v[0]);
        }
        if hi == 0xFF {
            _mm256_store_ps(p.add(8), v[1]);
        } else if hi != 0 {
            _mm256_maskstore_ps(p.add(8), _mm256_loadu_si256(MASK8[hi].as_ptr().cast()), v[1]);
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn zip(op: VfOp, a: [__m256; 2], b: [__m256; 2]) -> [__m256; 2] {
        [vf(op, a[0], b[0]), vf(op, a[1], b[1])]
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_bin(op: VfOp, f: &mut [f32], d: usize, x: usize, y: usize, m: Mask) {
        let r = zip(op, ld(f, x), ld(f, y));
        st(f, d, r, m);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_un(op: VuOp, f: &mut [f32], d: usize, x: usize, m: Mask) {
        let a = ld(f, x);
        st(f, d, [vu(op, a[0]), vu(op, a[1])], m);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_cmp(op: COp, f: &[f32], x: usize, y: usize) -> Mask {
        let a = ld(f, x);
        let b = ld(f, y);
        let lo = _mm256_movemask_ps(vc(op, a[0], b[0])) as Mask & 0xFF;
        let hi = _mm256_movemask_ps(vc(op, a[1], b[1])) as Mask & 0xFF;
        lo | (hi << 8)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_sel(f: &mut [f32], d: usize, a: usize, b: usize, cond: Mask, m: Mask) {
        let va = ld(f, a);
        let vb = ld(f, b);
        let clo = _mm256_castsi256_ps(_mm256_loadu_si256(MASK8[(cond & 0xFF) as usize].as_ptr().cast()));
        let chi = _mm256_castsi256_ps(_mm256_loadu_si256(
            MASK8[((cond >> 8) & 0xFF) as usize].as_ptr().cast(),
        ));
        let r = [
            _mm256_blendv_ps(vb[0], va[0], clo),
            _mm256_blendv_ps(vb[1], va[1], chi),
        ];
        st(f, d, r, m);
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn ldi(i: &[i32], off: usize) -> [__m256i; 2] {
        let p = i[off..off + LANES].as_ptr().cast::<__m256i>();
        [_mm256_loadu_si256(p), _mm256_loadu_si256(p.add(1))]
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gi(op: ViOp, x: __m256i, y: __m256i) -> __m256i {
        match op {
            ViOp::Add => _mm256_add_epi32(x, y),
            ViOp::Sub => _mm256_sub_epi32(x, y),
            ViOp::Mul => _mm256_mullo_epi32(x, y),
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vi_bin(op: ViOp, i: &mut [i32], d: usize, x: usize, y: usize, m: Mask) {
        let a = ldi(i, x);
        let b = ldi(i, y);
        let r = [gi(op, a[0], b[0]), gi(op, a[1], b[1])];
        let s = &mut i[d..d + LANES];
        let p = s.as_mut_ptr();
        if m == FULL {
            _mm256_storeu_si256(p.cast(), r[0]);
            _mm256_storeu_si256(p.cast::<__m256i>().add(1), r[1]);
            return;
        }
        let lo = (m & 0xFF) as usize;
        let hi = ((m >> 8) & 0xFF) as usize;
        if lo != 0 {
            _mm256_maskstore_epi32(p, _mm256_loadu_si256(MASK8[lo].as_ptr().cast()), r[0]);
        }
        if hi != 0 {
            _mm256_maskstore_epi32(p.add(8), _mm256_loadu_si256(MASK8[hi].as_ptr().cast()), r[1]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_fused_ff(op1: VfOp, op2: VfOp, f: &mut [f32], p: FusedFF, m: Mask) {
        let t = zip(op1, ld(f, p.x1), ld(f, p.y1));
        // Store-before-load: operands aliasing `d1` observe the fresh
        // lanes, as in the scalar per-lane order.
        st(f, p.d1, t, m);
        let xa = if p.ta { t } else { ld(f, p.x2) };
        let xb = if p.tb { t } else { ld(f, p.y2) };
        st(f, p.d2, zip(op2, xa, xb), m);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_fused_fc(op1: VfOp, cmp: COp, f: &mut [f32], p: FusedFC, m: Mask) -> Mask {
        let t = zip(op1, ld(f, p.x1), ld(f, p.y1));
        st(f, p.d1, t, m);
        let xa = if p.ta { t } else { ld(f, p.x2) };
        let xb = if p.tb { t } else { ld(f, p.y2) };
        let lo = _mm256_movemask_ps(vc(cmp, xa[0], xb[0])) as Mask & 0xFF;
        let hi = _mm256_movemask_ps(vc(cmp, xa[1], xb[1])) as Mask & 0xFF;
        lo | (hi << 8)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn vf_arith_tbuf(op: VfOp, f: &mut [f32], t: &[f32; LANES], p: TBuf, m: Mask) {
        let tv = ldu(t);
        let xa = if p.ta { tv } else { ld(f, p.a2) };
        let xb = if p.tb { tv } else { ld(f, p.b2) };
        st(f, p.d2, zip(op, xa, xb), m);
    }

    /// Two-float-index gather linearization for one block:
    /// `floor(f[o0..]+0.5)` and `floor(f[o1..]+0.5)`, an optional
    /// float-domain per-dimension clamp, then `iy * d1 + ix`, all 16
    /// lanes. The caller guarantees `d0, d1 <= 2^24` and
    /// `d0 * d1 <= i32::MAX`, which makes every in-range intermediate
    /// exactly representable in `f32`/`i32` — so the result matches
    /// the scalar `i64` computation bit-for-bit:
    ///
    ///  * in-range indices are integral after `floor` and convert
    ///    exactly;
    ///  * with `clamp`, `vmaxps(v, 0)` returns the second operand on
    ///    NaN — the same 0 the scalar `NaN as i64` saturating cast
    ///    plus integer clamp produces — and any value above the bound
    ///    (including `+inf` and floats beyond `i32` range, which the
    ///    scalar path clamps through `i64`) takes `dim - 1` from
    ///    `vminps`;
    ///  * without `clamp` the caller holds an analyzer proof that
    ///    every *live* lane is in-bounds; dead-lane outputs are
    ///    unspecified garbage the caller must not read.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather2_idx(
        f: &[f32],
        o0: usize,
        o1: usize,
        d0: usize,
        d1: usize,
        clamp: bool,
        out: &mut [i32; LANES],
    ) {
        let half = _mm256_set1_ps(0.5);
        let dim1 = _mm256_set1_epi32(d1 as i32);
        let y_hi = _mm256_set1_ps((d0 - 1) as f32);
        let x_hi = _mm256_set1_ps((d1 - 1) as f32);
        let zero = _mm256_setzero_ps();
        for h in 0..2 {
            let ya = _mm256_loadu_ps(f.as_ptr().add(o0 + 8 * h));
            let xa = _mm256_loadu_ps(f.as_ptr().add(o1 + 8 * h));
            let mut y = _mm256_floor_ps(_mm256_add_ps(ya, half));
            let mut x = _mm256_floor_ps(_mm256_add_ps(xa, half));
            if clamp {
                y = _mm256_min_ps(_mm256_max_ps(y, zero), y_hi);
                x = _mm256_min_ps(_mm256_max_ps(x, zero), x_hi);
            }
            let lin = _mm256_add_epi32(
                _mm256_mullo_epi32(_mm256_cvttps_epi32(y), dim1),
                _mm256_cvttps_epi32(x),
            );
            _mm256_storeu_si256(out.as_mut_ptr().add(8 * h).cast(), lin);
        }
    }

    /// Plain `vminps`/`vmaxps` fold; see the SSE2 twin for the
    /// soundness argument.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_minmax(op: crate::ReduceOp, xs: &[f32]) -> f32 {
        let is_min = matches!(op, crate::ReduceOp::Min);
        let id = op.identity();
        let mut vacc = _mm256_set1_ps(id);
        let mut chunks = xs.chunks_exact(8);
        for c in chunks.by_ref() {
            let v = _mm256_loadu_ps(c.as_ptr());
            vacc = if is_min {
                _mm256_min_ps(vacc, v)
            } else {
                _mm256_max_ps(vacc, v)
            };
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vacc);
        let g: fn(f32, f32) -> f32 = if is_min { f32::min } else { f32::max };
        let mut acc = lanes.iter().fold(id, |a, &x| g(a, x));
        for &x in chunks.remainder() {
            acc = g(acc, x);
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Runtime dispatch. `level` is capped at `detect()` by every planner
// entry point, so the feature-gated kernels are sound to call.
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($level:expr, $($call:tt)+) => {{
        #[cfg(target_arch = "x86_64")]
        {
            match $level {
                // SAFETY: the planner caps `level` at `detect()`, so
                // the required ISA is present on this CPU.
                SimdLevel::Avx2 => return unsafe { avx2::$($call)+ },
                SimdLevel::Sse2 => return unsafe { sse2::$($call)+ },
                SimdLevel::Scalar => {}
            }
        }
        let _ = $level;
        scalar::$($call)+
    }};
}

pub(crate) fn vf_bin(level: SimdLevel, op: VfOp, f: &mut [f32], d: usize, x: usize, y: usize, m: Mask) {
    dispatch!(level, vf_bin(op, f, d, x, y, m))
}

pub(crate) fn vf_un(level: SimdLevel, op: VuOp, f: &mut [f32], d: usize, x: usize, m: Mask) {
    dispatch!(level, vf_un(op, f, d, x, m))
}

/// All-lane compare bits for one block; bits outside the execution
/// mask are unspecified and must be blended by the caller.
pub(crate) fn vf_cmp(level: SimdLevel, op: COp, f: &[f32], x: usize, y: usize) -> Mask {
    dispatch!(level, vf_cmp(op, f, x, y))
}

pub(crate) fn vf_sel(level: SimdLevel, f: &mut [f32], d: usize, a: usize, b: usize, cond: Mask, m: Mask) {
    dispatch!(level, vf_sel(f, d, a, b, cond, m))
}

pub(crate) fn vi_bin(level: SimdLevel, op: ViOp, i: &mut [i32], d: usize, x: usize, y: usize, m: Mask) {
    dispatch!(level, vi_bin(op, i, d, x, y, m))
}

pub(crate) fn vf_fused_ff(level: SimdLevel, op1: VfOp, op2: VfOp, f: &mut [f32], p: FusedFF, m: Mask) {
    dispatch!(level, vf_fused_ff(op1, op2, f, p, m))
}

/// Fused arith→compare; returns all-lane bits (see [`vf_cmp`]).
pub(crate) fn vf_fused_fc(level: SimdLevel, op1: VfOp, cmp: COp, f: &mut [f32], p: FusedFC, m: Mask) -> Mask {
    dispatch!(level, vf_fused_fc(op1, cmp, f, p, m))
}

/// Arithmetic tail of a fused gather/elem-fetch pair: the fetched
/// per-lane values arrive in `t` (dead lanes zeroed by the caller).
pub(crate) fn vf_arith_tbuf(level: SimdLevel, op: VfOp, f: &mut [f32], t: &[f32; LANES], p: TBuf, m: Mask) {
    dispatch!(level, vf_arith_tbuf(op, f, t, p, m))
}

/// Largest gather dimension the vectorized index computation accepts:
/// every integer up to `2^24` is exactly representable in `f32`, so
/// the float-domain clamp bound `dim - 1` is exact.
const MAX_IDX_DIM: usize = 1 << 24;

/// Vectorized two-float-index gather linearization: fills `out` with
/// `floor(f[o?+l]+0.5)` linearized as `iy * d1 + ix` (per-dimension
/// clamp when `clamp` is set) for all 16 lanes and returns `true`, or
/// returns `false` when the level has no vector floor (SSE2's
/// `roundps` is SSE4.1) or a dimension exceeds the exact-in-`f32`/
/// `i32` bound — the caller keeps its scalar loop. Bit-exact with the
/// scalar `i64` index path by the argument on [the AVX2 kernel]; the
/// loads themselves stay with the caller, per live lane, so dead
/// lanes never touch memory. Without `clamp` the caller must hold an
/// analyzer in-bounds proof for every live lane.
#[allow(clippy::too_many_arguments)]
pub(crate) fn vf_gather2_idx(
    level: SimdLevel,
    f: &[f32],
    o0: usize,
    o1: usize,
    d0: usize,
    d1: usize,
    clamp: bool,
    out: &mut [i32; LANES],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2
        && (1..=MAX_IDX_DIM).contains(&d0)
        && (1..=MAX_IDX_DIM).contains(&d1)
        && d0.saturating_mul(d1) <= i32::MAX as usize
    {
        // SAFETY: dispatch only selects Avx2 after runtime detection
        // confirmed the ISA (see `dispatch!`).
        unsafe { avx2::gather2_idx(f, o0, o1, d0, d1, clamp, out) };
        return true;
    }
    let _ = (level, f, o0, o1, d0, d1, clamp, out);
    false
}

// ---------------------------------------------------------------------------
// Vectorized reductions.
// ---------------------------------------------------------------------------

/// Where a reduce kernel combines the accumulator: the single
/// `min`/`max` builtin reading it, the single store writing it back,
/// and the per-element operand register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineSite {
    /// Instruction index of the `min`/`max` builtin.
    pub builtin_pc: usize,
    /// Instruction index of the accumulator write-back.
    pub store_pc: usize,
    /// The non-accumulator combine operand.
    pub operand: Reg,
}

/// Structurally matches a reduce kernel against the vectorizable
/// shape: a `min`/`max` combine executed at most once per element
/// (never under a loop), with the accumulator read by that combine
/// only and written by its store only.
///
/// This is the *syntactic* half of admission; the semantic half (the
/// operand proven NaN-free and sign-definite) comes from the abstract
/// interpreter via [`crate::KernelFacts::reduce_combine`].
///
/// # Errors
/// A human-readable reason the kernel folds serially, recorded
/// verbatim in the compliance report.
pub fn reduce_combine_site(k: &IrKernel) -> Result<CombineSite, String> {
    if !k.is_reduce {
        return Err("not a reduce kernel".into());
    }
    let op = k
        .reduce_op
        .ok_or("combine is not a recognized reduction operator")?;
    let builtin_name = match op {
        ReduceOp::Min => "min",
        ReduceOp::Max => "max",
        ReduceOp::Add => return Err("f32 sum folds serially (reassociation changes rounding)".into()),
        ReduceOp::Mul => return Err("f32 product folds serially (reassociation changes rounding)".into()),
    };
    let acc = k.acc_reg.ok_or("reduce kernel has no accumulator register")?;
    if k.params.len() != 2 {
        return Err("extra parameters fold serially (reduce dispatch binds input + accumulator only)".into());
    }
    let input = k
        .params
        .iter()
        .position(|p| matches!(p.kind, ParamKind::Stream))
        .ok_or("reduce kernel has no input stream")?;
    if k.params[input].ty.width != 1 {
        return Err("vector-element reduce streams fold serially".into());
    }
    if !k.outputs.is_empty() {
        return Err("reduce kernel with output streams folds serially".into());
    }
    if k.uses_indexof {
        return Err("indexof in a reduce kernel folds serially".into());
    }

    // The accumulator must be read exactly once — by the combine
    // builtin — and written exactly once — by its store.
    let mut builtin_pc = None;
    let mut store_pc = None;
    let mut rbuf: Vec<Reg> = Vec::new();
    for (pc, inst) in k.insts.iter().enumerate() {
        rbuf.clear();
        inst.reads(&mut rbuf);
        let reads_acc = rbuf.contains(&acc);
        let writes_acc = inst.dst() == Some(acc);
        match inst {
            Inst::Builtin { args, .. } if reads_acc => {
                if builtin_pc.replace(pc).is_some() {
                    return Err("accumulator combined more than once per element".into());
                }
                if args.len() != 2 {
                    return Err("combine builtin is not a two-operand min/max".into());
                }
            }
            Inst::AssignLocal { dst, op, .. } if *dst == acc => {
                if store_pc.replace(pc).is_some() {
                    return Err("accumulator written more than once per element".into());
                }
                if !matches!(op, AssignOp::Assign) {
                    return Err("compound accumulator assignment folds serially".into());
                }
                if reads_acc && !matches!(op, AssignOp::Assign) {
                    return Err("accumulator store reads the accumulator".into());
                }
            }
            _ if reads_acc => {
                return Err("accumulator observed outside the combine (order-sensitive)".into());
            }
            _ if writes_acc => {
                return Err("accumulator written outside the combine store".into());
            }
            _ => {}
        }
    }
    let builtin_pc = builtin_pc.ok_or("accumulator is never combined")?;
    let store_pc = store_pc.ok_or("accumulator is never written back")?;

    let Inst::Builtin { dst: t, which, args } = &k.insts[builtin_pc] else {
        unreachable!("matched above");
    };
    if BUILTINS[*which as usize].name != builtin_name {
        return Err(format!(
            "accumulator read by `{}`, not the `{builtin_name}` combine",
            BUILTINS[*which as usize].name
        ));
    }
    let operand = if args[0] == acc && args[1] != acc {
        args[1]
    } else if args[1] == acc && args[0] != acc {
        args[0]
    } else {
        return Err("combine must pair the accumulator with an element operand".into());
    };
    let rt = k.regs[operand as usize];
    if !(matches!(rt.scalar, ScalarKind::Float) && rt.width == 1) {
        return Err("combine operand is not a scalar float".into());
    }
    let Inst::AssignLocal { src, .. } = &k.insts[store_pc] else {
        unreachable!("matched above");
    };
    if *src != *t {
        return Err("accumulator store does not take the combine result".into());
    }
    // `t` must be a private wire: written by the builtin only, read by
    // the store only.
    for (pc, inst) in k.insts.iter().enumerate() {
        if pc != builtin_pc && inst.dst() == Some(*t) {
            return Err("combine result register is reused".into());
        }
        rbuf.clear();
        inst.reads(&mut rbuf);
        if pc != store_pc && rbuf.contains(t) {
            return Err("combine result observed outside the accumulator store".into());
        }
    }
    if store_pc < builtin_pc {
        return Err("accumulator store precedes the combine".into());
    }
    // At most one execution per element: the combine may sit under
    // `if`s (skipped elements contribute the fold identity) but never
    // under a loop.
    for pc in [builtin_pc, store_pc] {
        match pc_under_loop(&k.body, pc as u32) {
            Some(false) => {}
            Some(true) => return Err("combine under a loop folds serially".into()),
            None => return Err("combine outside the structured region tree".into()),
        }
    }
    Ok(CombineSite {
        builtin_pc,
        store_pc,
        operand,
    })
}

/// Whether `pc` falls inside a loop header/body region.
fn pc_under_loop(nodes: &[Node], pc: u32) -> Option<bool> {
    fn walk(nodes: &[Node], pc: u32, under: bool) -> Option<bool> {
        for n in nodes {
            match n {
                Node::Seq { start, end } => {
                    if (*start..*end).contains(&pc) {
                        return Some(under);
                    }
                }
                Node::If {
                    then,
                    els,
                    branch_at,
                    jump_at,
                    ..
                } => {
                    if pc == *branch_at || *jump_at == Some(pc) {
                        return Some(under);
                    }
                    if let Some(r) = walk(then, pc, under) {
                        return Some(r);
                    }
                    if let Some(r) = walk(els, pc, under) {
                        return Some(r);
                    }
                }
                Node::Loop(lp) => {
                    if pc == lp.exit_at || pc == lp.back_at {
                        return Some(true);
                    }
                    if let Some(r) = walk(&lp.header, pc, true) {
                        return Some(r);
                    }
                    if let Some(r) = walk(&lp.body, pc, true) {
                        return Some(r);
                    }
                }
            }
        }
        None
    }
    walk(nodes, pc, false)
}

/// Synthesizes the elementwise map-phase kernel: the reduce body with
/// the combine replaced by `out[i] = operand` (the accumulator
/// parameter becomes the output stream). Instructions are replaced
/// 1:1, so spans, the region tree and fault attribution carry over.
fn synthesize_map(k: &IrKernel, site: &CombineSite) -> IrKernel {
    let mut map = k.clone();
    map.is_reduce = false;
    map.reduce_op = None;
    map.acc_reg = None;
    let acc_param = map
        .params
        .iter()
        .position(|p| matches!(p.kind, ParamKind::ReduceOut))
        .expect("reduce kernel has a ReduceOut parameter");
    map.params[acc_param].kind = ParamKind::OutStream;
    map.outputs = vec![acc_param as u16];
    map.insts[site.builtin_pc] = Inst::Nop;
    map.insts[site.store_pc] = Inst::WriteOut {
        out: 0,
        op: AssignOp::Assign,
        src: site.operand,
    };
    map
}

/// A reduce kernel admitted to the vectorized path: the synthesized
/// map kernel with its lane plan (and tier chain when admitted), plus
/// the reassociation-safe fold.
pub struct ReduceKernel {
    /// The combine operator (always `Min` or `Max`).
    pub op: ReduceOp,
    /// The SIMD level of the fold (and the map's tier chain).
    pub level: SimdLevel,
    /// Human-readable admission record for the compliance report.
    pub detail: String,
    map: IrKernel,
    lane: LaneKernel,
    tier: Option<TierKernel>,
    input_param: usize,
}

impl ReduceKernel {
    /// Runs the map phase over `range` of an `n_total`-element domain,
    /// writing per-element combine operands into `out` (one slot per
    /// range element, already pre-filled with the fold identity so
    /// elements whose combine is branch-skipped contribute nothing).
    ///
    /// # Errors
    /// Exactly the scalar interpreter's faults with element
    /// attribution; callers discard the partials and fold serially.
    pub fn run_map(
        &self,
        data: &[f32],
        out: &mut [f32],
        n_total: usize,
        range: Range<usize>,
    ) -> Result<(), ExecError> {
        let shape = [n_total];
        let mut bindings: Vec<Binding<'_>> = Vec::with_capacity(self.map.params.len());
        for (pi, _) in self.map.params.iter().enumerate() {
            bindings.push(if pi == self.input_param {
                Binding::Elem {
                    data,
                    shape: &shape,
                    width: 1,
                }
            } else {
                Binding::Out(0)
            });
        }
        let mut outs: [&mut [f32]; 1] = [out];
        match &self.tier {
            Some(t) => tier::run_kernel_range(t, &self.lane, &self.map, &bindings, &mut outs, &shape, range),
            None => lanes::run_kernel_range(&self.lane, &self.map, &bindings, &mut outs, &shape, range),
        }
    }
}

impl std::fmt::Debug for ReduceKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReduceKernel")
            .field("op", &self.op)
            .field("level", &self.level)
            .field("detail", &self.detail)
            .finish_non_exhaustive()
    }
}

/// Vectorized-reduce plans for a module's reduce kernels, parallel to
/// the lane/tier plan lists: admitted kernels carry their plan,
/// rejected kernels the serial-fold reason.
#[derive(Debug, Default)]
pub struct ReduceProgram {
    /// `(kernel name, plan or rejection reason)` — reduce kernels only.
    pub kernels: Vec<(String, Result<ReduceKernel, String>)>,
}

impl ReduceProgram {
    /// Plans every reduce kernel of a lowered program against the
    /// analyzer facts. `level` is capped at what the CPU supports.
    #[must_use]
    pub fn plan_program_with(
        ir: &crate::IrProgram,
        facts: &[KernelFacts],
        level: SimdLevel,
    ) -> ReduceProgram {
        let level = level.min(detect());
        ReduceProgram {
            kernels: ir
                .kernels
                .iter()
                .enumerate()
                .filter(|(_, k)| k.is_reduce)
                .map(|(i, k)| (k.name.clone(), plan_reduce(k, facts.get(i), level)))
                .collect(),
        }
    }

    /// The admitted plan for `name`, if any.
    #[must_use]
    pub fn kernel(&self, name: &str) -> Option<&ReduceKernel> {
        self.kernels
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, r)| r.as_ref().ok())
    }

    /// The admission decision for `name`, if `name` is a reduce kernel.
    #[must_use]
    pub fn decision(&self, name: &str) -> Option<&Result<ReduceKernel, String>> {
        self.kernels.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }
}

/// Plans one reduce kernel: structural match, semantic proof, map
/// synthesis, lane plan and (best-effort) tier chain.
fn plan_reduce(k: &IrKernel, facts: Option<&KernelFacts>, level: SimdLevel) -> Result<ReduceKernel, String> {
    let site = reduce_combine_site(k)?;
    let fact = facts
        .and_then(|f| f.reduce_combine)
        .ok_or("no analyzer range for the combine operand")?;
    if !fact.nan_free {
        return Err("combine operand not provably NaN-free (min/max order would be observable)".into());
    }
    if !(fact.lo > 0.0 || fact.hi < 0.0) {
        return Err(format!(
            "combine operand range [{}, {}] not provably sign-definite (±0.0 ties are order-sensitive)",
            fact.lo, fact.hi
        ));
    }
    let map = synthesize_map(k, &site);
    let lane = lanes::plan_with(&map, facts).map_err(|e| format!("map phase not lane-vectorizable: {e}"))?;
    let tier = tier::compile_simd(&lane, &map, facts, level).ok();
    let input_param = map
        .params
        .iter()
        .position(|p| matches!(p.kind, ParamKind::Stream))
        .expect("validated by reduce_combine_site");
    let detail = format!(
        "vectorized: {} map + reassociation-safe {:?} fold (operand in [{}, {}], NaN-free; simd {level})",
        if tier.is_some() { "tier" } else { "lane" },
        k.reduce_op.expect("validated"),
        fact.lo,
        fact.hi,
    );
    Ok(ReduceKernel {
        op: k.reduce_op.expect("validated"),
        level,
        detail,
        map,
        lane,
        tier,
        input_param,
    })
}

/// Runs an admitted reduce kernel over `data`: identity-seeded map
/// phase, then the deterministic reassociation-safe fold. Any
/// map-phase fault re-runs the whole reduction through the scalar
/// interpreter, which owns the canonical error surface (message,
/// element attribution, source span).
///
/// # Errors
/// Exactly [`crate::interp::run_reduce`]'s faults.
pub fn run_reduce(rk: &ReduceKernel, original: &IrKernel, data: &[f32]) -> Result<f32, ExecError> {
    let n = data.len();
    let mut xs = vec![rk.op.identity(); n];
    match rk.run_map(data, &mut xs, n, 0..n) {
        Ok(()) => Ok(fold(rk.op, rk.level, &xs)),
        Err(_) => interp::run_reduce(original, data),
    }
}

/// Folds map-phase partials with the combine operator. `Min`/`Max` use
/// the SIMD fold (sound under the admission proof: every order and
/// association yields the same bits); other operators fold serially in
/// index order.
#[must_use]
pub fn fold(op: ReduceOp, level: SimdLevel, xs: &[f32]) -> f32 {
    match op {
        ReduceOp::Min | ReduceOp::Max => {
            #[cfg(target_arch = "x86_64")]
            {
                match level {
                    // SAFETY: `level` is capped at `detect()`.
                    SimdLevel::Avx2 => return unsafe { avx2::fold_minmax(op, xs) },
                    SimdLevel::Sse2 => return unsafe { sse2::fold_minmax(op, xs) },
                    SimdLevel::Scalar => {}
                }
            }
            let _ = level;
            scalar::fold_minmax(op, xs)
        }
        _ => xs.iter().fold(op.identity(), |acc, &x| op.apply(acc, x)),
    }
}
