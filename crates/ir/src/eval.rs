//! The scalar semantics of Brook Auto, shared by the flat IR
//! interpreter and the legacy AST tree walker in `brook-auto`.
//!
//! These helpers used to live inside the CPU backend; they moved here
//! so the IR interpreter and the tree-walking oracle execute *the same
//! functions* — bit-exact agreement between the two is then a property
//! of construction, not of testing luck. Both fuzz campaigns still
//! assert it.

use brook_lang::ast::{AssignOp, BinOp, ScalarKind, Type};
use glsl_es::Value;

/// Builds a float value from lanes (1..=4 of them).
pub fn value_from_slice(lanes: &[f32]) -> Value {
    Value::from_lanes(lanes)
}

/// Lane index of a (normalized) swizzle component letter.
pub fn lane_index(c: u8) -> usize {
    match c {
        b'x' => 0,
        b'y' => 1,
        b'z' => 2,
        _ => 3,
    }
}

/// Component selection `v.components` with the tree walker's dynamic
/// error surface.
///
/// # Errors
/// Swizzling a non-float value or out-of-range components.
pub fn swizzle(v: &Value, components: &str) -> Result<Value, String> {
    let lanes = v.lanes();
    if lanes.is_empty() {
        return Err("cannot swizzle a non-float value".into());
    }
    let mut out = Vec::with_capacity(components.len());
    for c in components.bytes() {
        let i = lane_index(c);
        if i >= lanes.len() {
            return Err(format!("swizzle `.{components}` out of range"));
        }
        out.push(lanes[i]);
    }
    Ok(value_from_slice(&out))
}

/// Brook type -> simulator value type (used for zero initialization).
pub fn brook_to_glsl_type(t: Type) -> glsl_es::GlslType {
    match (t.scalar, t.width) {
        (ScalarKind::Float, 1) => glsl_es::GlslType::Float,
        (ScalarKind::Float, 2) => glsl_es::GlslType::Vec2,
        (ScalarKind::Float, 3) => glsl_es::GlslType::Vec3,
        (ScalarKind::Float, _) => glsl_es::GlslType::Vec4,
        (ScalarKind::Int, _) => glsl_es::GlslType::Int,
        (ScalarKind::Bool, _) => glsl_es::GlslType::Bool,
    }
}

/// Brook-style implicit promotion for assignment (declaration sites).
pub fn coerce_to(v: Value, ty: Type) -> Value {
    match (v, ty.scalar) {
        (Value::Int(i), ScalarKind::Float) => {
            if ty.width == 1 {
                Value::Float(i as f32)
            } else {
                value_from_slice(&vec![i as f32; ty.width as usize])
            }
        }
        (Value::Float(f), ScalarKind::Float) if ty.width > 1 => value_from_slice(&vec![f; ty.width as usize]),
        _ => v,
    }
}

/// Assignment semantics: plain assignment still broadcasts scalars into
/// vectors; compound operators combine through [`brook_bin_op`].
///
/// # Errors
/// Operand type/shape mismatches (same messages as the tree walker).
pub fn apply_assign(current: Value, op: AssignOp, rhs: Value) -> Result<Value, String> {
    let bop = match op {
        AssignOp::Assign => {
            // Plain assignment still broadcasts scalars into vectors.
            if current.width() > 1 && rhs.width() == 1 {
                if let Some(f) = rhs.as_float() {
                    return Ok(value_from_slice(&vec![f; current.width()]));
                }
                if let Value::Int(i) = rhs {
                    return Ok(value_from_slice(&vec![i as f32; current.width()]));
                }
            }
            if current.glsl_type() == glsl_es::GlslType::Float {
                if let Value::Int(i) = rhs {
                    return Ok(Value::Float(i as f32));
                }
            }
            return Ok(rhs);
        }
        AssignOp::AddAssign => BinOp::Add,
        AssignOp::SubAssign => BinOp::Sub,
        AssignOp::MulAssign => BinOp::Mul,
        AssignOp::DivAssign => BinOp::Div,
    };
    brook_bin_op(bop, current, rhs)
}

/// Binary operation with Brook's implicit int -> float promotion.
///
/// # Errors
/// Logical operators on non-bools, arithmetic on bools, vector
/// comparisons and operand shape mismatches.
pub fn brook_bin_op(op: BinOp, l: Value, r: Value) -> Result<Value, String> {
    // Pure integer arithmetic stays integral.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(b)),
            // wrapping_*: INT_MIN / -1 must wrap like the other int ops,
            // not abort the process with a divide-overflow panic.
            BinOp::Div => Value::Int(if b == 0 { 0 } else { a.wrapping_div(b) }),
            BinOp::Rem => Value::Int(if b == 0 { 0 } else { a.wrapping_rem(b) }),
            BinOp::Lt => Value::Bool(a < b),
            BinOp::Le => Value::Bool(a <= b),
            BinOp::Gt => Value::Bool(a > b),
            BinOp::Ge => Value::Bool(a >= b),
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            BinOp::And | BinOp::Or => return Err("logical op on ints".into()),
        });
    }
    if let (Value::Bool(a), Value::Bool(b)) = (l, r) {
        return Ok(match op {
            BinOp::And => Value::Bool(a && b),
            BinOp::Or => Value::Bool(a || b),
            BinOp::Eq => Value::Bool(a == b),
            BinOp::Ne => Value::Bool(a != b),
            _ => return Err("arithmetic on bools".into()),
        });
    }
    // Promote ints to floats (Brook implicit conversion).
    let promote = |v: Value| match v {
        Value::Int(i) => Value::Float(i as f32),
        other => other,
    };
    let (l, r) = (promote(l), promote(r));
    if op.is_comparison() {
        let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
            return Err("comparisons need scalar operands".into());
        };
        return Ok(Value::Bool(match op {
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            BinOp::Eq => a == b,
            _ => a != b,
        }));
    }
    if op.is_logical() {
        return Err("logical op on non-bools".into());
    }
    let f = match op {
        BinOp::Add => |a: f32, b: f32| a + b,
        BinOp::Sub => |a: f32, b: f32| a - b,
        BinOp::Mul => |a: f32, b: f32| a * b,
        BinOp::Div => |a: f32, b: f32| a / b,
        BinOp::Rem => |a: f32, b: f32| a - b * (a / b).floor(),
        _ => unreachable!("handled above"),
    };
    l.zip(&r, f).ok_or_else(|| "operand shape mismatch".into())
}

/// Random-access gather with per-dimension clamping — the CPU analogue
/// of CLAMP_TO_EDGE (paper §4).
pub fn gather_clamped(data: &[f32], shape: &[usize], width: u8, idx: &[i64]) -> Value {
    // Clamp per dimension, then linearize row-major.
    let mut linear: usize = 0;
    if idx.len() == shape.len() {
        for (&ix, &dim) in idx.iter().zip(shape) {
            let clamped = ix.clamp(0, dim as i64 - 1) as usize;
            linear = linear * dim + clamped;
        }
    } else {
        // Rank mismatch: treat as linear index into the whole stream.
        let len: usize = shape.iter().product();
        linear = idx.first().copied().unwrap_or(0).clamp(0, len as i64 - 1) as usize;
    }
    let base = linear * width as usize;
    value_from_slice(&data[base..base + width as usize])
}

/// Maximum value of each `indexof` component (`[x_max, y_max]`) for a
/// launch domain — the runtime half of [`crate::ProvenIdx::IndexofRel`].
/// Linear domains collapse to `[total - 1, 0]` because
/// [`crate::interp::indexof_pos`] packs the linear position into `x`.
pub fn indexof_comp_max(domain: (usize, usize), linear: bool) -> [i64; 2] {
    if linear {
        [(domain.0 * domain.1) as i64 - 1, 0]
    } else {
        [domain.0 as i64 - 1, domain.1 as i64 - 1]
    }
}

/// Whether an analyzer-proven per-dimension index range fits the
/// runtime shape a gather is actually bound to — the launch-time side
/// of clamp elision. Shapes and domains are runtime-only, so
/// `brook_cert::absint` proves ranges and executors check them against
/// the bound stream here (`comp_max` from [`indexof_comp_max`]); only
/// when this returns true may [`gather_unclamped`] replace
/// [`gather_clamped`].
pub fn proven_fits_dyn(proven: &[crate::ProvenIdx], shape: &[usize], comp_max: [i64; 2]) -> bool {
    proven.len() == shape.len()
        && proven.iter().zip(shape).all(|(p, &dim)| match *p {
            crate::ProvenIdx::Const { lo, hi } => lo >= 0 && hi < dim as i64,
            crate::ProvenIdx::IndexofRel { comp, lo, hi } => {
                // The f32 guard: every runtime path converts the float
                // index with `(f + 0.5).floor()` in f32, and for odd
                // integer v >= 2^23 the sum v + 0.5 is a round-to-even
                // tie that rounds *up* (8388609.5 -> 8388610), pushing
                // the converted index one past the proven bound. The
                // `+ 0.5` centering is exact only below 2^23, so that —
                // not the 2^24 integer-representability limit — is the
                // admission ceiling.
                comp < 2
                    && lo >= 0
                    && comp_max[comp as usize].saturating_add(hi) < dim as i64
                    && comp_max[comp as usize].saturating_add(hi.max(0)) < 1 << 23
            }
        })
}

/// [`gather_clamped`] with the per-dimension clamp elided — valid only
/// when the analyzer proved the indices in bounds *and*
/// [`proven_fits_dyn`] accepted the runtime shape. Debug builds cross-check
/// against the clamped path so an unsound elision aborts loudly.
pub fn gather_unclamped(data: &[f32], shape: &[usize], width: u8, idx: &[i64]) -> Value {
    debug_assert_eq!(idx.len(), shape.len(), "clamp elision requires matching rank");
    let mut linear: usize = 0;
    for (&ix, &dim) in idx.iter().zip(shape) {
        debug_assert!(
            ix >= 0 && (ix as usize) < dim,
            "unsound clamp elision: index {ix} outside [0, {dim}) — analyzer bug"
        );
        linear = linear * dim + ix as usize;
    }
    let base = linear * width as usize;
    let v = value_from_slice(&data[base..base + width as usize]);
    debug_assert_eq!(
        v,
        gather_clamped(data, shape, width, idx),
        "unsound clamp elision: unclamped gather diverged from clamped gather"
    );
    v
}

/// Gather index conversion: ints pass through, floats get the GPU
/// path's `(i + 0.5)` texel centering (round half-up).
///
/// # Errors
/// Non-scalar index values.
pub fn gather_index(v: Value) -> Result<i64, String> {
    match v {
        Value::Int(i) => Ok(i as i64),
        Value::Float(f) => Ok((f + 0.5).floor() as i64),
        _ => Err("gather index must be scalar".into()),
    }
}

/// Evaluates a Brook builtin on already-promoted float arguments.
///
/// # Errors
/// Operand shape mismatches.
pub fn eval_brook_builtin(name: &str, args: &[Value]) -> Result<Value, String> {
    let err = || format!("invalid arguments for `{name}`");
    let unary = |f: fn(f32) -> f32| args[0].map(f).ok_or_else(err);
    let binary = |f: fn(f32, f32) -> f32| args[0].zip(&args[1], f).ok_or_else(err);
    match name {
        "sin" => unary(f32::sin),
        "cos" => unary(f32::cos),
        "tan" => unary(f32::tan),
        "exp" => unary(f32::exp),
        "exp2" => unary(f32::exp2),
        "log" => unary(f32::ln),
        "log2" => unary(f32::log2),
        "sqrt" => unary(f32::sqrt),
        "rsqrt" => unary(|x| 1.0 / x.sqrt()),
        "abs" => unary(f32::abs),
        "floor" => unary(f32::floor),
        "ceil" => unary(f32::ceil),
        "fract" => unary(f32::fract),
        "round" => unary(|x| (x + 0.5).floor()),
        "sign" => unary(f32::signum),
        "saturate" => unary(|x| x.clamp(0.0, 1.0)),
        "normalize" => {
            let len = args[0].lanes().iter().map(|x| x * x).sum::<f32>().sqrt();
            args[0].map(|x| x / len).ok_or_else(err)
        }
        "min" => binary(f32::min),
        "max" => binary(f32::max),
        "pow" => binary(f32::powf),
        "fmod" => binary(|a, b| a - b * (a / b).floor()),
        "step" => binary(|edge, x| if x < edge { 0.0 } else { 1.0 }),
        "atan2" => binary(f32::atan2),
        "clamp" => {
            let lo = args[0].zip(&args[1], f32::max).ok_or_else(err)?;
            lo.zip(&args[2], f32::min).ok_or_else(err)
        }
        "lerp" => {
            let bt = args[1].zip(&args[2], |x, t| x * t).ok_or_else(err)?;
            let at = args[0].zip(&args[2], |x, t| x * (1.0 - t)).ok_or_else(err)?;
            at.zip(&bt, |x, y| x + y).ok_or_else(err)
        }
        "smoothstep" => {
            let num = args[2].zip(&args[0], |a, b| a - b).ok_or_else(err)?;
            let den = args[1].zip(&args[0], |a, b| a - b).ok_or_else(err)?;
            let t = num.zip(&den, |a, b| (a / b).clamp(0.0, 1.0)).ok_or_else(err)?;
            t.map(|v| v * v * (3.0 - 2.0 * v)).ok_or_else(err)
        }
        "dot" => {
            let (a, b) = (args[0].lanes(), args[1].lanes());
            if a.is_empty() || a.len() != b.len() {
                return Err(err());
            }
            Ok(Value::Float(a.iter().zip(b).map(|(x, y)| x * y).sum()))
        }
        "length" => Ok(Value::Float(
            args[0].lanes().iter().map(|x| x * x).sum::<f32>().sqrt(),
        )),
        "distance" => {
            let d = args[0].zip(&args[1], |x, y| x - y).ok_or_else(err)?;
            Ok(Value::Float(d.lanes().iter().map(|x| x * x).sum::<f32>().sqrt()))
        }
        _ => Err(format!("builtin `{name}` not implemented on the CPU backend")),
    }
}

/// Vector-constructor semantics shared by the IR `Construct` instruction
/// and the tree walker: lanes concatenate, ints convert, a single
/// scalar splats.
///
/// # Errors
/// Too few components.
pub fn construct(callee_width: usize, args: &[Value]) -> Result<Value, String> {
    let mut lanes = Vec::new();
    for v in args {
        match v {
            Value::Int(i) => lanes.push(*i as f32),
            other => lanes.extend_from_slice(other.lanes()),
        }
    }
    if lanes.len() == 1 && callee_width > 1 {
        return Ok(value_from_slice(&vec![lanes[0]; callee_width]));
    }
    if lanes.len() < callee_width {
        return Err(format!(
            "`float{callee_width}` constructor needs {callee_width} components"
        ));
    }
    lanes.truncate(callee_width);
    Ok(value_from_slice(&lanes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_op_int_division_by_zero_is_zero() {
        assert_eq!(
            brook_bin_op(BinOp::Div, Value::Int(7), Value::Int(0)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn assign_broadcasts_scalar_into_vector() {
        let cur = Value::Vec3([1.0, 2.0, 3.0]);
        let got = apply_assign(cur, AssignOp::Assign, Value::Float(5.0)).unwrap();
        assert_eq!(got, Value::Vec3([5.0, 5.0, 5.0]));
    }

    #[test]
    fn gather_clamps_per_dimension() {
        let data = [0.0, 1.0, 2.0, 3.0];
        let v = gather_clamped(&data, &[2, 2], 1, &[5, -1]);
        assert_eq!(v, Value::Float(2.0)); // row clamped to 1, col to 0
    }

    #[test]
    fn construct_splats_single_scalar() {
        let v = construct(4, &[Value::Float(2.0)]).unwrap();
        assert_eq!(v, Value::Vec4([2.0; 4]));
    }

    #[test]
    fn gather_index_rounds_floats_half_up() {
        assert_eq!(gather_index(Value::Float(1.6)).unwrap(), 2);
        assert_eq!(gather_index(Value::Int(-3)).unwrap(), -3);
        assert!(gather_index(Value::Bool(true)).is_err());
    }

    #[test]
    fn proven_fits_dyn_rejects_indices_reaching_f32_tie_range() {
        // For odd integers v >= 2^23, v + 0.5 is a round-to-even tie in
        // f32 that rounds *up*, so the runtime conversion lands one past
        // the proven bound...
        assert_eq!(gather_index(Value::Float(8_388_609.0)).unwrap(), 8_388_610);
        // ...hence a proof whose max reachable index hits 2^23 must be
        // rejected even though the stream is big enough.
        let proven = [crate::ProvenIdx::IndexofRel {
            comp: 0,
            lo: 0,
            hi: 0,
        }];
        let big = (1usize << 23) + 2;
        assert!(!proven_fits_dyn(
            &proven,
            &[big],
            indexof_comp_max((big, 1), true)
        ));
        // Just below the ceiling (max index 2^23 - 1) it still admits.
        let ok = 1usize << 23;
        assert!(proven_fits_dyn(&proven, &[ok], indexof_comp_max((ok, 1), true)));
    }
}
