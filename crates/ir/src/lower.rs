//! Lowering: checked Brook AST → BrookIR.
//!
//! The lowering is *semantics-preserving by construction* against the
//! AST tree walker (the differential oracle):
//!
//! * expression evaluation order is preserved instruction-for-node;
//! * Brook's dynamic implicit conversions (int→float promotion,
//!   scalar→vector broadcast at assignment sites) are kept dynamic —
//!   [`Inst::DeclInit`], [`Inst::AssignLocal`] and [`Inst::WriteOut`]
//!   call the exact helpers the walker calls;
//! * helper functions are inlined. Early `return`s are predicated: a
//!   per-call-site `done` flag guards the remaining statements, loop
//!   conditions gain `&& !done`, and a fall-through of a value-returning
//!   helper raises the walker's "did not return a value" fault;
//! * dynamic faults the walker raises (reading a gather without an
//!   index, assigning through a non-lvalue) lower to [`Inst::Fail`]
//!   with the same message, so the error surface is preserved too;
//! * every loop region records the same [`LoopBound`] the certification
//!   engine deduces, so the IR-level re-check in `brook-cert` stays a
//!   syntactic analysis.
//!
//! Lowering can fail only for programs that bypassed certification
//! (`enforce_certification = false`): recursive helpers cannot be
//! inlined. Such kernels are simply absent from the produced
//! [`IrProgram`]; the CPU backends fall back to the tree walker and the
//! GL backend to the legacy AST shader generator for them.

use crate::{Inst, IrKernel, IrParam, IrProgram, LoopKind, LoopNode, Node, Reg};
use brook_lang::ast::*;
use brook_lang::builtins::BUILTINS;
use brook_lang::loopbound::{for_loop_bound, LoopBound};
use brook_lang::span::Span;
use brook_lang::CheckedProgram;
use glsl_es::Value;
use std::collections::HashMap;

/// Maximum helper-inlining depth; far above any certifiable call chain,
/// low enough to reject recursion quickly in unchecked mode.
const MAX_INLINE_DEPTH: usize = 32;

/// Why one kernel could not be lowered.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Kernel name.
    pub kernel: String,
    /// Reason.
    pub msg: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot lower kernel `{}`: {}", self.kernel, self.msg)
    }
}

/// Lowers every kernel of a checked program. Kernels that cannot lower
/// (possible only past a disabled certification gate) are reported and
/// omitted.
pub fn lower_program(checked: &CheckedProgram) -> (IrProgram, Vec<LowerError>) {
    let mut kernels = Vec::new();
    let mut errors = Vec::new();
    for k in checked.program.kernels() {
        match lower_kernel(checked, k) {
            Ok(ir) => kernels.push(ir),
            Err(msg) => errors.push(LowerError {
                kernel: k.name.clone(),
                msg,
            }),
        }
    }
    (IrProgram { kernels }, errors)
}

/// Lowers one kernel.
///
/// # Errors
/// Returns a human-readable reason (recursion, malformed tree) — see
/// [`lower_program`].
pub fn lower_kernel(checked: &CheckedProgram, kdef: &KernelDef) -> Result<IrKernel, String> {
    let mut lw = Lowerer {
        checked,
        params: Vec::new(),
        param_index: HashMap::new(),
        out_slots: HashMap::new(),
        acc_name: None,
        acc_reg: None,
        regs: Vec::new(),
        insts: Vec::new(),
        spans: Vec::new(),
        scopes: vec![HashMap::new()],
        ctx: vec![Ctx {
            nodes: Vec::new(),
            seq_start: 0,
        }],
        inline: Vec::new(),
    };
    let mut outputs = Vec::new();
    for p in &kdef.params {
        let idx = lw.params.len() as u16;
        lw.params.push(IrParam {
            name: p.name.clone(),
            ty: p.ty,
            kind: p.kind,
        });
        lw.param_index.insert(p.name.clone(), idx);
        match p.kind {
            ParamKind::OutStream => {
                lw.out_slots.insert(p.name.clone(), outputs.len() as u16);
                outputs.push(idx);
            }
            ParamKind::ReduceOut => {
                let r = lw.new_reg(p.ty);
                lw.acc_reg = Some(r);
                lw.acc_name = Some(p.name.clone());
            }
            _ => {}
        }
    }
    lw.lower_stmts(&kdef.body.stmts)?;
    lw.flush_seq();
    let summary = checked.summary(&kdef.name);
    let body = lw.ctx.pop().expect("root ctx").nodes;
    Ok(IrKernel {
        name: kdef.name.clone(),
        is_reduce: kdef.is_reduce,
        reduce_op: summary.and_then(|s| s.reduce_op),
        params: lw.params,
        outputs,
        acc_reg: lw.acc_reg,
        regs: lw.regs,
        insts: lw.insts,
        spans: lw.spans,
        body,
        span: kdef.span,
        uses_indexof: summary.map(|s| s.uses_indexof).unwrap_or(false),
    })
}

/// One node-accumulation context (function body, branch, loop section).
struct Ctx {
    nodes: Vec<Node>,
    seq_start: u32,
}

/// One inlined helper call frame.
struct Frame {
    ret: Reg,
    done: Reg,
}

struct Lowerer<'a> {
    checked: &'a CheckedProgram,
    params: Vec<IrParam>,
    param_index: HashMap<String, u16>,
    out_slots: HashMap<String, u16>,
    acc_name: Option<String>,
    acc_reg: Option<Reg>,
    regs: Vec<Type>,
    insts: Vec<Inst>,
    spans: Vec<Span>,
    scopes: Vec<HashMap<String, Reg>>,
    ctx: Vec<Ctx>,
    inline: Vec<Frame>,
}

impl<'a> Lowerer<'a> {
    fn new_reg(&mut self, ty: Type) -> Reg {
        self.regs.push(ty);
        (self.regs.len() - 1) as Reg
    }

    fn emit(&mut self, inst: Inst, span: Span) -> u32 {
        self.insts.push(inst);
        self.spans.push(span);
        (self.insts.len() - 1) as u32
    }

    /// Emits a control-flow instruction outside any `Seq` node.
    fn emit_ctl(&mut self, inst: Inst, span: Span) -> u32 {
        self.flush_seq();
        let at = self.emit(inst, span);
        self.ctx.last_mut().expect("ctx").seq_start = self.insts.len() as u32;
        at
    }

    fn flush_seq(&mut self) {
        let end = self.insts.len() as u32;
        let ctx = self.ctx.last_mut().expect("ctx");
        if ctx.seq_start < end {
            ctx.nodes.push(Node::Seq {
                start: ctx.seq_start,
                end,
            });
        }
        ctx.seq_start = end;
    }

    fn begin_ctx(&mut self) {
        self.ctx.push(Ctx {
            nodes: Vec::new(),
            seq_start: self.insts.len() as u32,
        });
    }

    fn end_ctx(&mut self) -> Vec<Node> {
        self.flush_seq();
        let nodes = self.ctx.pop().expect("ctx").nodes;
        // The child consumed instructions the parent must not re-cover.
        if let Some(p) = self.ctx.last_mut() {
            p.seq_start = self.insts.len() as u32;
        }
        nodes
    }

    fn push_node(&mut self, n: Node) {
        self.flush_seq();
        let ctx = self.ctx.last_mut().expect("ctx");
        ctx.nodes.push(n);
        ctx.seq_start = self.insts.len() as u32;
    }

    fn lookup_local(&self, name: &str) -> Option<Reg> {
        for s in self.scopes.iter().rev() {
            if let Some(r) = s.get(name) {
                return Some(*r);
            }
        }
        None
    }

    fn ty_of(&self, e: &Expr) -> Type {
        self.checked.type_of(e)
    }

    fn zero_of(ty: Type) -> Value {
        Value::zero(crate::eval::brook_to_glsl_type(ty))
    }

    // -- statements ----------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), String> {
        for (i, s) in stmts.iter().enumerate() {
            self.lower_stmt(s)?;
            // Predicate the rest of the block on "the inlined helper has
            // not returned yet" — exactly the tree walker's early-exit.
            if !self.inline.is_empty() && stmt_has_return(s) && i + 1 < stmts.len() {
                let done = self.inline.last().expect("frame").done;
                let nd = self.new_reg(Type::BOOL);
                self.emit(
                    Inst::Un {
                        dst: nd,
                        op: UnOp::Not,
                        src: done,
                    },
                    s.span(),
                );
                let rest = &stmts[i + 1..];
                self.emit_if(
                    nd,
                    s.span(),
                    |lw| lw.lower_stmts(rest),
                    None::<fn(&mut Self) -> Result<(), String>>,
                )?;
                return Ok(());
            }
        }
        Ok(())
    }

    fn lower_block(&mut self, b: &Block) -> Result<(), String> {
        self.scopes.push(HashMap::new());
        let r = self.lower_stmts(&b.stmts);
        self.scopes.pop();
        r
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), String> {
        let span = s.span();
        match s {
            Stmt::Decl { name, ty, init, .. } => {
                let r = match init {
                    Some(e) => {
                        let v = self.lower_expr(e)?;
                        let r = self.new_reg(*ty);
                        self.emit(
                            Inst::DeclInit {
                                dst: r,
                                src: v,
                                ty: *ty,
                            },
                            span,
                        );
                        r
                    }
                    None => {
                        let r = self.new_reg(*ty);
                        self.emit(
                            Inst::Const {
                                dst: r,
                                v: Self::zero_of(*ty),
                            },
                            span,
                        );
                        r
                    }
                };
                self.scopes.last_mut().expect("scope").insert(name.clone(), r);
                Ok(())
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                let src = self.lower_expr(value)?;
                self.lower_assign_target(target, *op, src, span)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let c = self.lower_expr(cond)?;
                self.emit_if(
                    c,
                    span,
                    |lw| lw.lower_block(then_block),
                    else_block.as_ref().map(|e| {
                        let e = e.clone();
                        move |lw: &mut Self| lw.lower_block(&e)
                    }),
                )
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                let bound = for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), body);
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let cond = cond.clone();
                let step = step.clone();
                let body = body.clone();
                let needs_done_exit = self.loop_needs_done_exit(&body, step.as_deref());
                let r = self.emit_loop(
                    LoopKind::For,
                    bound,
                    *span,
                    |lw| match &cond {
                        Some(c) => {
                            let r = lw.lower_expr(c)?;
                            lw.combine_with_not_done(r, needs_done_exit, *span)
                        }
                        None => {
                            let r = lw.new_reg(Type::BOOL);
                            lw.emit(
                                Inst::Const {
                                    dst: r,
                                    v: Value::Bool(true),
                                },
                                *span,
                            );
                            lw.combine_with_not_done(r, needs_done_exit, *span)
                        }
                    },
                    |lw| {
                        lw.lower_block(&body)?;
                        if let Some(st) = &step {
                            lw.lower_stmt(st)?;
                        }
                        Ok(())
                    },
                );
                self.scopes.pop();
                r
            }
            Stmt::While { cond, body, span } => {
                let cond = cond.clone();
                let body = body.clone();
                let needs_done_exit = self.loop_needs_done_exit(&body, None);
                self.emit_loop(
                    LoopKind::While,
                    LoopBound::Unbounded {
                        reason: "while loop".into(),
                    },
                    *span,
                    |lw| {
                        let r = lw.lower_expr(&cond)?;
                        lw.combine_with_not_done(r, needs_done_exit, *span)
                    },
                    |lw| lw.lower_block(&body),
                )
            }
            Stmt::DoWhile { body, cond, span } => {
                let cond = cond.clone();
                let body = body.clone();
                let needs_done_exit = self.loop_needs_done_exit(&body, None);
                self.emit_do_while(
                    LoopBound::Unbounded {
                        reason: "do/while loop".into(),
                    },
                    *span,
                    |lw| lw.lower_block(&body),
                    |lw| {
                        let r = lw.lower_expr(&cond)?;
                        lw.combine_with_not_done(r, needs_done_exit, *span)
                    },
                )
            }
            Stmt::Return { value, .. } => {
                if let Some(frame_idx) = self.inline.len().checked_sub(1) {
                    if let Some(v) = value {
                        let vr = self.lower_expr(v)?;
                        let ret = self.inline[frame_idx].ret;
                        self.emit(Inst::Mov { dst: ret, src: vr }, span);
                    }
                    let done = self.inline[frame_idx].done;
                    self.emit(
                        Inst::Const {
                            dst: done,
                            v: Value::Bool(true),
                        },
                        span,
                    );
                    Ok(())
                } else {
                    // Kernel-level bare `return;` finishes the element.
                    if value.is_some() {
                        return Err("kernel-level return with a value".into());
                    }
                    self.emit(Inst::Ret, span);
                    Ok(())
                }
            }
            Stmt::Expr { expr, .. } => {
                self.lower_expr(expr)?;
                Ok(())
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    /// Whether a loop lowered inside an inline frame must also exit when
    /// the helper has returned.
    fn loop_needs_done_exit(&self, body: &Block, step: Option<&Stmt>) -> bool {
        !self.inline.is_empty() && (block_has_return(body) || step.map(stmt_has_return).unwrap_or(false))
    }

    /// Combines a loop condition with `!done` so predicated returns exit
    /// the loop promptly.
    fn combine_with_not_done(&mut self, cond: Reg, needed: bool, span: Span) -> Result<Reg, String> {
        if !needed {
            return Ok(cond);
        }
        let done = self.inline.last().expect("frame").done;
        let nd = self.new_reg(Type::BOOL);
        self.emit(
            Inst::Un {
                dst: nd,
                op: UnOp::Not,
                src: done,
            },
            span,
        );
        let c2 = self.new_reg(Type::BOOL);
        self.emit(
            Inst::Bin {
                dst: c2,
                op: BinOp::And,
                lhs: cond,
                rhs: nd,
            },
            span,
        );
        Ok(c2)
    }

    fn lower_assign_target(
        &mut self,
        target: &Expr,
        op: AssignOp,
        src: Reg,
        span: Span,
    ) -> Result<(), String> {
        match &target.kind {
            ExprKind::Var(name) => {
                if let Some(slot) = self.out_slots.get(name.as_str()).copied() {
                    self.emit(Inst::WriteOut { out: slot, op, src }, span);
                    return Ok(());
                }
                if let Some(r) = self.lookup_local(name) {
                    self.emit(Inst::AssignLocal { dst: r, op, src }, span);
                    return Ok(());
                }
                if self.acc_name.as_deref() == Some(name.as_str()) {
                    let r = self.acc_reg.expect("acc register");
                    self.emit(Inst::AssignLocal { dst: r, op, src }, span);
                    return Ok(());
                }
                // The tree walker reports this as an unknown variable at
                // run time (e.g. writing an input parameter slipped past
                // a disabled front-end).
                self.emit(
                    Inst::Fail {
                        msg: format!("unknown variable `{name}`"),
                        codegen_fatal: true,
                    },
                    span,
                );
                Ok(())
            }
            ExprKind::Swizzle { base, components } => {
                let ExprKind::Var(name) = &base.kind else {
                    self.emit(
                        Inst::Fail {
                            msg: "swizzled assignment target must be a variable".into(),
                            codegen_fatal: true,
                        },
                        span,
                    );
                    return Ok(());
                };
                let dst = self
                    .lookup_local(name)
                    .or(if self.acc_name.as_deref() == Some(name.as_str()) {
                        self.acc_reg
                    } else {
                        None
                    });
                match dst {
                    Some(r) => {
                        self.emit(
                            Inst::SwizzleStore {
                                dst: r,
                                op,
                                src,
                                sel: components.clone(),
                            },
                            span,
                        );
                        Ok(())
                    }
                    None => {
                        self.emit(
                            Inst::Fail {
                                msg: format!("unknown variable `{name}`"),
                                codegen_fatal: true,
                            },
                            span,
                        );
                        Ok(())
                    }
                }
            }
            _ => {
                self.emit(
                    Inst::Fail {
                        msg: "assignment target is not an lvalue".into(),
                        codegen_fatal: true,
                    },
                    span,
                );
                Ok(())
            }
        }
    }

    // -- control-flow scaffolding -------------------------------------------

    fn emit_if<FT, FE>(&mut self, cond: Reg, span: Span, f_then: FT, f_else: Option<FE>) -> Result<(), String>
    where
        FT: FnOnce(&mut Self) -> Result<(), String>,
        FE: FnOnce(&mut Self) -> Result<(), String>,
    {
        let branch_at = self.emit_ctl(
            Inst::BranchIfFalse {
                cond,
                target: u32::MAX,
            },
            span,
        );
        self.begin_ctx();
        f_then(self)?;
        let then = self.end_ctx();
        let (jump_at, els) = match f_else {
            Some(f) => {
                let jump_at = self.emit_ctl(Inst::Jump { target: u32::MAX }, span);
                self.patch(branch_at, self.insts.len() as u32);
                self.begin_ctx();
                f(self)?;
                let els = self.end_ctx();
                self.patch(jump_at, self.insts.len() as u32);
                (Some(jump_at), els)
            }
            None => {
                self.patch(branch_at, self.insts.len() as u32);
                (None, Vec::new())
            }
        };
        self.push_node(Node::If {
            cond,
            branch_at,
            then,
            jump_at,
            els,
        });
        Ok(())
    }

    fn emit_loop<FH, FB>(
        &mut self,
        kind: LoopKind,
        bound: LoopBound,
        span: Span,
        f_header: FH,
        f_body: FB,
    ) -> Result<(), String>
    where
        FH: FnOnce(&mut Self) -> Result<Reg, String>,
        FB: FnOnce(&mut Self) -> Result<(), String>,
    {
        self.flush_seq();
        let header_start = self.insts.len() as u32;
        self.begin_ctx();
        let cond = f_header(self)?;
        let header = self.end_ctx();
        let exit_at = self.emit_ctl(
            Inst::BranchIfFalse {
                cond,
                target: u32::MAX,
            },
            span,
        );
        self.begin_ctx();
        f_body(self)?;
        let body = self.end_ctx();
        let back_at = self.emit_ctl(Inst::Jump { target: header_start }, span);
        self.patch(exit_at, self.insts.len() as u32);
        self.push_node(Node::Loop(Box::new(LoopNode {
            kind,
            bound,
            span,
            header,
            cond,
            exit_at,
            body,
            back_at,
        })));
        Ok(())
    }

    fn emit_do_while<FB, FH>(
        &mut self,
        bound: LoopBound,
        span: Span,
        f_body: FB,
        f_header: FH,
    ) -> Result<(), String>
    where
        FB: FnOnce(&mut Self) -> Result<(), String>,
        FH: FnOnce(&mut Self) -> Result<Reg, String>,
    {
        self.flush_seq();
        let body_start = self.insts.len() as u32;
        self.begin_ctx();
        f_body(self)?;
        let body = self.end_ctx();
        self.begin_ctx();
        let cond = f_header(self)?;
        let header = self.end_ctx();
        let exit_at = self.emit_ctl(
            Inst::BranchIfFalse {
                cond,
                target: u32::MAX,
            },
            span,
        );
        let back_at = self.emit_ctl(Inst::Jump { target: body_start }, span);
        self.patch(exit_at, self.insts.len() as u32);
        self.push_node(Node::Loop(Box::new(LoopNode {
            kind: LoopKind::DoWhile,
            bound,
            span,
            header,
            cond,
            exit_at,
            body,
            back_at,
        })));
        Ok(())
    }

    fn patch(&mut self, at: u32, target: u32) {
        match &mut self.insts[at as usize] {
            Inst::Jump { target: t } | Inst::BranchIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patching a non-branch instruction {other:?}"),
        }
    }

    // -- expressions ---------------------------------------------------------

    fn lower_expr(&mut self, e: &Expr) -> Result<Reg, String> {
        let span = e.span;
        match &e.kind {
            ExprKind::FloatLit(v) => {
                let r = self.new_reg(Type::FLOAT);
                self.emit(
                    Inst::Const {
                        dst: r,
                        v: Value::Float(*v),
                    },
                    span,
                );
                Ok(r)
            }
            ExprKind::IntLit(v) => {
                let r = self.new_reg(Type::INT);
                self.emit(
                    Inst::Const {
                        dst: r,
                        v: Value::Int(*v as i32),
                    },
                    span,
                );
                Ok(r)
            }
            ExprKind::BoolLit(v) => {
                let r = self.new_reg(Type::BOOL);
                self.emit(
                    Inst::Const {
                        dst: r,
                        v: Value::Bool(*v),
                    },
                    span,
                );
                Ok(r)
            }
            ExprKind::Var(name) => {
                if let Some(r) = self.lookup_local(name) {
                    return Ok(r);
                }
                if self.acc_name.as_deref() == Some(name.as_str()) {
                    return Ok(self.acc_reg.expect("acc register"));
                }
                let Some(&pi) = self.param_index.get(name.as_str()) else {
                    return Err(format!("unknown identifier `{name}`"));
                };
                let p = &self.params[pi as usize];
                let ty = p.ty;
                match p.kind {
                    ParamKind::Stream => {
                        let r = self.new_reg(ty);
                        self.emit(Inst::ReadElem { dst: r, param: pi }, span);
                        Ok(r)
                    }
                    ParamKind::Scalar => {
                        let r = self.new_reg(ty);
                        self.emit(Inst::ReadScalar { dst: r, param: pi }, span);
                        Ok(r)
                    }
                    ParamKind::OutStream => {
                        let slot = self.out_slots[name.as_str()];
                        let r = self.new_reg(ty);
                        self.emit(Inst::ReadOut { dst: r, out: slot }, span);
                        Ok(r)
                    }
                    ParamKind::ReduceOut => Ok(self.acc_reg.expect("acc register")),
                    ParamKind::Gather { .. } => {
                        // Same dynamic fault as the tree walker.
                        self.emit(
                            Inst::Fail {
                                msg: format!("gather `{name}` used without an index"),
                                codegen_fatal: true,
                            },
                            span,
                        );
                        Ok(self.new_reg(ty))
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let dst = self.new_reg(self.ty_of(e));
                self.emit(
                    Inst::Bin {
                        dst,
                        op: *op,
                        lhs: l,
                        rhs: r,
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Unary { op, operand } => {
                let s = self.lower_expr(operand)?;
                let dst = self.new_reg(self.ty_of(e));
                self.emit(Inst::Un { dst, op: *op, src: s }, span);
                Ok(dst)
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.lower_expr(cond)?;
                if expr_calls_helper(then_expr, &self.checked.program)
                    || expr_calls_helper(else_expr, &self.checked.program)
                    || self.expr_would_fault(then_expr)
                    || self.expr_would_fault(else_expr)
                {
                    // Helper calls inline to control flow, and an arm
                    // that lowers to a `Fail` (e.g. a bare gather read)
                    // must only fault when *taken* — in both cases the
                    // arms must stay conditional: lower to if/else with
                    // a result register (the walker evaluates one arm).
                    let dst = self.new_reg(self.ty_of(e));
                    let te = (**then_expr).clone();
                    let ee = (**else_expr).clone();
                    self.emit_if(
                        c,
                        span,
                        |lw| {
                            let a = lw.lower_expr(&te)?;
                            lw.emit(Inst::Mov { dst, src: a }, te.span);
                            Ok(())
                        },
                        Some(move |lw: &mut Self| {
                            let b = lw.lower_expr(&ee)?;
                            lw.emit(Inst::Mov { dst, src: b }, ee.span);
                            Ok(())
                        }),
                    )?;
                    Ok(dst)
                } else {
                    // Pure arms: evaluating both and selecting is
                    // value-identical to evaluating one (no traps in the
                    // value domain), and keeps the stream flat.
                    let a = self.lower_expr(then_expr)?;
                    let b = self.lower_expr(else_expr)?;
                    let dst = self.new_reg(self.ty_of(e));
                    self.emit(Inst::Select { dst, cond: c, a, b }, span);
                    Ok(dst)
                }
            }
            ExprKind::Call { callee, args } => self.lower_call(e, callee, args),
            ExprKind::Index { base, indices } => {
                let ExprKind::Var(name) = &base.kind else {
                    return Err("indexed expression is not a gather".into());
                };
                let Some(&pi) = self.param_index.get(name.as_str()) else {
                    return Err(format!("`{name}` is not a gather parameter"));
                };
                let mut idx = Vec::with_capacity(indices.len());
                for ix in indices {
                    idx.push(self.lower_expr(ix)?);
                }
                let dst = self.new_reg(self.ty_of(e));
                self.emit(
                    Inst::Gather {
                        dst,
                        param: pi,
                        idx,
                        proven: None,
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Swizzle { base, components } => {
                let b = self.lower_expr(base)?;
                let dst = self.new_reg(self.ty_of(e));
                self.emit(
                    Inst::Swizzle {
                        dst,
                        src: b,
                        sel: components.clone(),
                    },
                    span,
                );
                Ok(dst)
            }
            ExprKind::Indexof { stream } => {
                let Some(&pi) = self.param_index.get(stream.as_str()) else {
                    return Err(format!("indexof on unknown stream `{stream}`"));
                };
                let dst = self.new_reg(Type::FLOAT2);
                self.emit(Inst::Indexof { dst, param: pi }, span);
                Ok(dst)
            }
        }
    }

    /// True when lowering the expression would emit a `Fail`
    /// instruction (a dynamic fault the tree walker raises only when
    /// the expression is actually evaluated): a bare gather parameter
    /// read outside an index position.
    fn expr_would_fault(&self, e: &Expr) -> bool {
        let is_bare_gather = |e: &Expr| {
            if let ExprKind::Var(name) = &e.kind {
                if let Some(&pi) = self.param_index.get(name.as_str()) {
                    if self.lookup_local(name).is_none() {
                        return matches!(self.params[pi as usize].kind, ParamKind::Gather { .. });
                    }
                }
            }
            false
        };
        match &e.kind {
            ExprKind::Var(_) => is_bare_gather(e),
            ExprKind::Binary { lhs, rhs, .. } => self.expr_would_fault(lhs) || self.expr_would_fault(rhs),
            ExprKind::Unary { operand, .. } => self.expr_would_fault(operand),
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr_would_fault(cond)
                    || self.expr_would_fault(then_expr)
                    || self.expr_would_fault(else_expr)
            }
            ExprKind::Call { args, .. } => args.iter().any(|a| self.expr_would_fault(a)),
            // An indexed gather is the *legitimate* use; only the
            // indices can fault.
            ExprKind::Index { indices, .. } => indices.iter().any(|i| self.expr_would_fault(i)),
            ExprKind::Swizzle { base, .. } => self.expr_would_fault(base),
            _ => false,
        }
    }

    fn lower_call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> Result<Reg, String> {
        let span = e.span;
        // Vector constructors / casts.
        if let Some(width) = match callee {
            "float" => Some(1u8),
            "float2" => Some(2),
            "float3" => Some(3),
            "float4" => Some(4),
            _ => None,
        } {
            let mut regs = Vec::with_capacity(args.len());
            for a in args {
                regs.push(self.lower_expr(a)?);
            }
            let dst = self.new_reg(Type::float(width));
            self.emit(
                Inst::Construct {
                    dst,
                    width,
                    args: regs,
                },
                span,
            );
            return Ok(dst);
        }
        if callee == "int" {
            let s = self.lower_expr(&args[0])?;
            let dst = self.new_reg(Type::INT);
            self.emit(Inst::CastInt { dst, src: s }, span);
            return Ok(dst);
        }
        if let Some(which) = BUILTINS.iter().position(|b| b.name == callee) {
            let mut regs = Vec::with_capacity(args.len());
            for a in args {
                regs.push(self.lower_expr(a)?);
            }
            let dst = self.new_reg(self.ty_of(e));
            self.emit(
                Inst::Builtin {
                    dst,
                    which: which as u16,
                    args: regs,
                },
                span,
            );
            return Ok(dst);
        }
        // Helper function: inline with return predication.
        let Some(f) = self.checked.program.function(callee) else {
            return Err(format!("unknown function `{callee}`"));
        };
        if self.inline.len() >= MAX_INLINE_DEPTH {
            return Err(format!(
                "helper `{callee}` exceeds the inlining depth ({MAX_INLINE_DEPTH}) — recursive helpers \
                 cannot be lowered"
            ));
        }
        let f = f.clone();
        // Evaluate arguments in the caller's scope, coerced to the
        // parameter types exactly as the walker does.
        let mut frame_scope = HashMap::new();
        for (a, (pname, pty)) in args.iter().zip(&f.params) {
            let ar = self.lower_expr(a)?;
            let pr = self.new_reg(*pty);
            self.emit(
                Inst::DeclInit {
                    dst: pr,
                    src: ar,
                    ty: *pty,
                },
                a.span,
            );
            frame_scope.insert(pname.clone(), pr);
        }
        let ret_ty = f.return_ty.unwrap_or(Type::FLOAT);
        let ret = self.new_reg(ret_ty);
        self.emit(
            Inst::Const {
                dst: ret,
                v: Self::zero_of(ret_ty),
            },
            span,
        );
        let done = self.new_reg(Type::BOOL);
        self.emit(
            Inst::Const {
                dst: done,
                v: Value::Bool(false),
            },
            span,
        );
        let saved_scopes = std::mem::replace(&mut self.scopes, vec![frame_scope]);
        self.inline.push(Frame { ret, done });
        let body_result = self.lower_stmts(&f.body.stmts);
        self.inline.pop();
        self.scopes = saved_scopes;
        body_result?;
        if f.return_ty.is_some() && !always_returns(&f.body) {
            // The walker faults when a value-returning helper falls off
            // its end; replicate, guarded on the done flag.
            let name = f.name.clone();
            self.emit_if(
                done,
                span,
                |_| Ok(()),
                Some(move |lw: &mut Self| {
                    lw.emit(
                        Inst::Fail {
                            msg: format!("function `{name}` did not return a value"),
                            codegen_fatal: false,
                        },
                        span,
                    );
                    Ok(())
                }),
            )?;
        }
        Ok(ret)
    }
}

/// True when the statement syntactically contains a `return` (not
/// looking into called functions — their returns are their own frame's).
fn stmt_has_return(s: &Stmt) -> bool {
    match s {
        Stmt::Return { .. } => true,
        Stmt::If {
            then_block,
            else_block,
            ..
        } => block_has_return(then_block) || else_block.as_ref().map(block_has_return).unwrap_or(false),
        Stmt::For { init, step, body, .. } => {
            init.as_deref().map(stmt_has_return).unwrap_or(false)
                || step.as_deref().map(stmt_has_return).unwrap_or(false)
                || block_has_return(body)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => block_has_return(body),
        Stmt::Block(b) => block_has_return(b),
        Stmt::Decl { .. } | Stmt::Assign { .. } | Stmt::Expr { .. } => false,
    }
}

fn block_has_return(b: &Block) -> bool {
    b.stmts.iter().any(stmt_has_return)
}

/// True when every path through the block executes a `return`
/// (conservative: last-statement analysis, as in classic C checkers).
fn always_returns(b: &Block) -> bool {
    match b.stmts.last() {
        Some(Stmt::Return { .. }) => true,
        Some(Stmt::If {
            then_block,
            else_block: Some(e),
            ..
        }) => always_returns(then_block) && always_returns(e),
        Some(Stmt::Block(inner)) => always_returns(inner),
        _ => false,
    }
}

/// True when the expression calls a helper function defined in the
/// program (builtins and constructors excluded).
fn expr_calls_helper(e: &Expr, program: &Program) -> bool {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            program.function(callee).is_some() || args.iter().any(|a| expr_calls_helper(a, program))
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_calls_helper(lhs, program) || expr_calls_helper(rhs, program)
        }
        ExprKind::Unary { operand, .. } => expr_calls_helper(operand, program),
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            expr_calls_helper(cond, program)
                || expr_calls_helper(then_expr, program)
                || expr_calls_helper(else_expr, program)
        }
        ExprKind::Index { base, indices } => {
            expr_calls_helper(base, program) || indices.iter().any(|i| expr_calls_helper(i, program))
        }
        ExprKind::Swizzle { base, .. } => expr_calls_helper(base, program),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    #[test]
    fn straight_line_kernel_lowers_flat() {
        let k = lower_src("kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }");
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.outputs, vec![2]);
        assert!(matches!(k.body.as_slice(), [Node::Seq { .. }]));
        assert!(k
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. })));
        assert!(k.insts.iter().any(|i| matches!(i, Inst::WriteOut { .. })));
    }

    #[test]
    fn for_loop_records_static_bound() {
        let k = lower_src(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) { s += a; }
                o = s;
            }",
        );
        let Some(Node::Loop(l)) = k.body.iter().find(|n| matches!(n, Node::Loop(_))) else {
            panic!("no loop node: {:?}", k.body);
        };
        assert_eq!(l.bound.trips(), Some(16));
        assert_eq!(l.kind, LoopKind::For);
        assert!(matches!(k.insts[l.back_at as usize], Inst::Jump { .. }));
    }

    #[test]
    fn while_loop_is_unbounded() {
        let k = lower_src(
            "kernel void f(float a<>, out float o<>) { float s = a; while (s < 1.0) { s += 1.0; } o = s; }",
        );
        let Some(Node::Loop(l)) = k.body.iter().find(|n| matches!(n, Node::Loop(_))) else {
            panic!("no loop node");
        };
        assert_eq!(l.bound.trips(), None);
        assert_eq!(l.kind, LoopKind::While);
    }

    #[test]
    fn helper_is_inlined() {
        let k = lower_src(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a) + 1.0; }",
        );
        // No call instruction exists in the IR at all; the multiply from
        // the helper body appears inline.
        assert!(k
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. })));
    }

    #[test]
    fn recursive_helper_fails_to_lower() {
        let checked = parse_and_check(
            "float f(float x) { return f(x); }
             kernel void k(float a<>, out float o<>) { o = f(a); }",
        )
        .expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        let err = lower_kernel(&checked, kdef).expect_err("must not lower");
        assert!(err.contains("inlining depth"), "{err}");
    }

    #[test]
    fn spans_point_at_source() {
        let src = "kernel void f(float a<>, out float o<>) {\n    o = a * 2.0;\n}";
        let k = lower_src(src);
        let write = k
            .insts
            .iter()
            .position(|i| matches!(i, Inst::WriteOut { .. }))
            .expect("write");
        assert_eq!(k.spans[write].line, 2, "WriteOut must carry the source line");
    }

    #[test]
    fn untaken_faulting_ternary_arm_stays_conditional() {
        // `g` without an index is a dynamic fault in the tree walker —
        // but only when that arm is *taken*. The lowering must keep the
        // arms conditional (if/else), not hoist the Fail into
        // straight-line code ahead of a Select.
        let checked =
            parse_and_check("kernel void f(float g[], float a<>, out float o<>) { o = a > 0.0 ? a : g; }")
                .expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        let k = lower_kernel(&checked, kdef).expect("lower");
        assert!(
            !matches!(k.body.as_slice(), [Node::Seq { .. }]),
            "faulting arm must lower to control flow, not a flat Select: {:?}",
            k.body
        );
        // Executing with every condition true never reaches the fault.
        let shape = [2usize];
        let gather = [5.0f32];
        let input = [1.0f32, 2.0];
        let gshape = [1usize];
        let bindings = vec![
            crate::interp::Binding::Gather {
                data: &gather,
                shape: &gshape,
                width: 1,
            },
            crate::interp::Binding::Elem {
                data: &input,
                shape: &shape,
                width: 1,
            },
            crate::interp::Binding::Out(0),
        ];
        let mut buf = vec![0.0f32; 2];
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut buf];
            crate::interp::run_kernel_range(&k, &bindings, &mut outs, &shape, 0..2)
                .expect("untaken arm must not fault");
        }
        assert_eq!(buf, vec![1.0, 2.0]);
    }

    #[test]
    fn early_return_helper_is_predicated() {
        let k = lower_src(
            "float pick(float x) { if (x > 0.0) { return 1.0; } return 0.0; }
             kernel void f(float a<>, out float o<>) { o = pick(a); }",
        );
        // The predication introduces an If node guarding the trailing
        // `return 0.0` on the not-done flag.
        fn count_ifs(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::If { then, els, .. } => 1 + count_ifs(then) + count_ifs(els),
                    Node::Loop(l) => count_ifs(&l.header) + count_ifs(&l.body),
                    Node::Seq { .. } => 0,
                })
                .sum()
        }
        assert!(count_ifs(&k.body) >= 2, "{:?}", k.body);
    }
}
