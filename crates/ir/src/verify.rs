//! The BrookIR verifier: structural and type well-formedness.
//!
//! Every backend path runs a kernel's IR through [`verify`] before
//! executing it (the context verifies at launch, the fusion planner at
//! fuse time, the pass pipeline after every pass), so malformed IR —
//! whether hand-built, produced by a buggy pass, or corrupted — is
//! rejected uniformly instead of miscomputing on one substrate.
//!
//! Checked properties:
//!
//! * **bounds**: every register, parameter index, output slot, builtin
//!   index and jump target is in range;
//! * **kinds**: `ReadElem` only reads elementwise *input* streams (a
//!   `ReadElem` of an `out` parameter is the read-own-output shape the
//!   launch layer forbids), `ReadScalar` only scalars, `Gather` only
//!   gather parameters with matching rank;
//! * **types**: logical operators and branch/select conditions take
//!   `bool` registers, arithmetic never takes `bool`, comparisons are
//!   scalar — the static mirror of the interpreter's dynamic faults;
//! * **structure**: the region tree tiles the instruction stream
//!   exactly; every `Jump`/`BranchIfFalse` appears where the tree says,
//!   loop exits target the instruction after the back-edge and
//!   back-edges target their loop head. A loop region whose exit
//!   branch is missing or escapes the region (an *unbounded region*)
//!   is structurally rejected.

use crate::{Inst, IrKernel, LoopKind, Node, Reg};
use brook_lang::ast::{BinOp, ParamKind, ScalarKind, Type, UnOp};
use brook_lang::builtins::BUILTINS;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// What is malformed.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR verification failed: {}", self.msg)
    }
}

fn err(msg: impl Into<String>) -> VerifyError {
    VerifyError { msg: msg.into() }
}

/// Verifies one kernel. See the module docs for the property list.
///
/// # Errors
/// The first malformation found.
pub fn verify(k: &IrKernel) -> Result<(), VerifyError> {
    if k.spans.len() != k.insts.len() {
        return Err(err("span table length does not match the instruction stream"));
    }
    for (slot, &p) in k.outputs.iter().enumerate() {
        let param = k.params.get(p as usize).ok_or_else(|| {
            err(format!(
                "output slot {slot} references parameter {p} out of range"
            ))
        })?;
        if param.kind != ParamKind::OutStream {
            return Err(err(format!(
                "output slot {slot} references non-output parameter `{}`",
                param.name
            )));
        }
    }
    for (i, inst) in k.insts.iter().enumerate() {
        verify_inst(k, i, inst)?;
    }
    verify_structure(k)?;
    Ok(())
}

fn reg_ty(k: &IrKernel, i: usize, r: Reg) -> Result<Type, VerifyError> {
    k.regs
        .get(r as usize)
        .copied()
        .ok_or_else(|| err(format!("instruction {i} references register r{r} out of range")))
}

fn expect_bool(k: &IrKernel, i: usize, r: Reg, what: &str) -> Result<(), VerifyError> {
    let t = reg_ty(k, i, r)?;
    if t != Type::BOOL {
        return Err(err(format!(
            "type mismatch at instruction {i}: {what} must be bool, register r{r} is `{t}`"
        )));
    }
    Ok(())
}

fn param_of(k: &IrKernel, i: usize, p: u16) -> Result<&crate::IrParam, VerifyError> {
    k.params
        .get(p as usize)
        .ok_or_else(|| err(format!("instruction {i} references parameter {p} out of range")))
}

fn verify_inst(k: &IrKernel, i: usize, inst: &Inst) -> Result<(), VerifyError> {
    // Bounds on every register mention.
    if let Some(d) = inst.dst() {
        reg_ty(k, i, d)?;
    }
    let mut reads = Vec::new();
    inst.reads(&mut reads);
    for r in &reads {
        reg_ty(k, i, *r)?;
    }
    match inst {
        Inst::Bin { dst, op, lhs, rhs } => {
            let lt = reg_ty(k, i, *lhs)?;
            let rt = reg_ty(k, i, *rhs)?;
            if op.is_logical() {
                if lt != Type::BOOL || rt != Type::BOOL {
                    return Err(err(format!(
                        "type mismatch at instruction {i}: `{}` requires bool operands, found `{lt}` \
                         and `{rt}`",
                        op.as_str()
                    )));
                }
                expect_bool(k, i, *dst, "logical result")?;
            } else if op.is_comparison() {
                let bools = (lt == Type::BOOL, rt == Type::BOOL);
                match bools {
                    // bool == bool / bool != bool is legal Brook.
                    (true, true) if matches!(op, BinOp::Eq | BinOp::Ne) => {}
                    (true, _) | (_, true) => {
                        return Err(err(format!(
                            "type mismatch at instruction {i}: comparison `{}` on bool operands",
                            op.as_str()
                        )));
                    }
                    _ => {
                        if lt.width > 1 || rt.width > 1 {
                            return Err(err(format!(
                                "type mismatch at instruction {i}: comparison `{}` on vector operands",
                                op.as_str()
                            )));
                        }
                    }
                }
                expect_bool(k, i, *dst, "comparison result")?;
            } else if lt == Type::BOOL || rt == Type::BOOL {
                return Err(err(format!(
                    "type mismatch at instruction {i}: arithmetic `{}` on bool operands",
                    op.as_str()
                )));
            }
        }
        Inst::Un { dst, op, src } => match op {
            UnOp::Not => {
                expect_bool(k, i, *src, "`!` operand")?;
                expect_bool(k, i, *dst, "`!` result")?;
            }
            UnOp::Neg => {
                if reg_ty(k, i, *src)? == Type::BOOL {
                    return Err(err(format!("type mismatch at instruction {i}: negating a bool")));
                }
            }
        },
        Inst::Construct { width, .. } if !(1..=4).contains(width) => {
            return Err(err(format!(
                "instruction {i}: constructor width {width} out of range"
            )));
        }
        Inst::Builtin { which, args, .. } => {
            let Some(b) = BUILTINS.get(*which as usize) else {
                return Err(err(format!(
                    "instruction {i}: builtin index {which} out of range"
                )));
            };
            let want = brook_lang::builtins::builtin_arity(b);
            if args.len() != want {
                return Err(err(format!(
                    "instruction {i}: builtin `{}` takes {want} argument(s), found {}",
                    b.name,
                    args.len()
                )));
            }
        }
        Inst::Select { cond, .. } => expect_bool(k, i, *cond, "select condition")?,
        Inst::ReadElem { param, .. } => {
            let p = param_of(k, i, *param)?;
            if p.kind != ParamKind::Stream {
                return Err(err(format!(
                    "instruction {i}: ReadElem of `{}` which is not an elementwise input stream \
                     (reading an output stream elementwise is the read-own-output shape the \
                     launch layer forbids)",
                    p.name
                )));
            }
        }
        Inst::ReadScalar { param, .. } => {
            let p = param_of(k, i, *param)?;
            if p.kind != ParamKind::Scalar {
                return Err(err(format!(
                    "instruction {i}: ReadScalar of non-scalar parameter `{}`",
                    p.name
                )));
            }
        }
        Inst::ReadOut { out, .. } | Inst::WriteOut { out, .. } if *out as usize >= k.outputs.len() => {
            return Err(err(format!("instruction {i}: output slot {out} out of range")));
        }
        Inst::Gather { param, idx, .. } => {
            let p = param_of(k, i, *param)?;
            let ParamKind::Gather { rank } = p.kind else {
                return Err(err(format!(
                    "instruction {i}: Gather of non-gather parameter `{}`",
                    p.name
                )));
            };
            if idx.len() != rank as usize {
                return Err(err(format!(
                    "instruction {i}: gather `{}` has rank {rank} but {} indices",
                    p.name,
                    idx.len()
                )));
            }
            for r in idx {
                let t = reg_ty(k, i, *r)?;
                if !(t == Type::INT || t.scalar == ScalarKind::Float && t.width == 1) {
                    return Err(err(format!(
                        "type mismatch at instruction {i}: gather index register r{r} is `{t}`, \
                         expected a scalar int or float"
                    )));
                }
            }
        }
        Inst::Indexof { param, .. } => {
            let p = param_of(k, i, *param)?;
            if !matches!(
                p.kind,
                ParamKind::Stream | ParamKind::OutStream | ParamKind::ReduceOut
            ) {
                return Err(err(format!(
                    "instruction {i}: indexof of non-stream parameter `{}`",
                    p.name
                )));
            }
        }
        Inst::Jump { target } | Inst::BranchIfFalse { target, .. } => {
            if *target as usize > k.insts.len() {
                return Err(err(format!(
                    "instruction {i}: jump target {target} past the end of the stream"
                )));
            }
            if let Inst::BranchIfFalse { cond, .. } = inst {
                expect_bool(k, i, *cond, "branch condition")?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// Walks the region tree with a cursor, checking that it tiles the
/// instruction stream and that every control instruction matches.
fn verify_structure(k: &IrKernel) -> Result<(), VerifyError> {
    let end = check_nodes(k, &k.body, 0)?;
    if end != k.insts.len() as u32 {
        return Err(err(format!(
            "region tree covers instructions 0..{end} but the stream has {}",
            k.insts.len()
        )));
    }
    Ok(())
}

fn is_control(inst: &Inst) -> bool {
    matches!(inst, Inst::Jump { .. } | Inst::BranchIfFalse { .. })
}

fn check_nodes(k: &IrKernel, nodes: &[Node], mut cursor: u32) -> Result<u32, VerifyError> {
    for n in nodes {
        cursor = check_node(k, n, cursor)?;
    }
    Ok(cursor)
}

fn branch_target(k: &IrKernel, at: u32) -> Result<(Reg, u32), VerifyError> {
    match k.insts.get(at as usize) {
        Some(Inst::BranchIfFalse { cond, target }) => Ok((*cond, *target)),
        other => Err(err(format!(
            "expected BranchIfFalse at instruction {at}, found {other:?}"
        ))),
    }
}

fn jump_target(k: &IrKernel, at: u32) -> Result<u32, VerifyError> {
    match k.insts.get(at as usize) {
        Some(Inst::Jump { target }) => Ok(*target),
        other => Err(err(format!("expected Jump at instruction {at}, found {other:?}"))),
    }
}

fn check_node(k: &IrKernel, n: &Node, cursor: u32) -> Result<u32, VerifyError> {
    match n {
        Node::Seq { start, end } => {
            if *start != cursor || end < start || *end as usize > k.insts.len() {
                return Err(err(format!(
                    "sequence [{start}, {end}) does not continue the region tree at {cursor}"
                )));
            }
            for i in *start..*end {
                if is_control(&k.insts[i as usize]) {
                    return Err(err(format!(
                        "control-flow instruction {i} inside a straight-line sequence"
                    )));
                }
            }
            Ok(*end)
        }
        Node::If {
            cond,
            branch_at,
            then,
            jump_at,
            els,
        } => {
            if *branch_at != cursor {
                return Err(err(format!(
                    "if-branch at {branch_at} does not continue the region tree at {cursor}"
                )));
            }
            let (bcond, btarget) = branch_target(k, *branch_at)?;
            if bcond != *cond {
                return Err(err(format!(
                    "if-node condition r{cond} disagrees with branch condition r{bcond}"
                )));
            }
            let after_then = check_nodes(k, then, branch_at + 1)?;
            match jump_at {
                Some(j) => {
                    if *j != after_then {
                        return Err(err(format!(
                            "else-skip at {j} does not follow the then-branch ending at {after_then}"
                        )));
                    }
                    let jtarget = jump_target(k, *j)?;
                    if btarget != j + 1 {
                        return Err(err(format!(
                            "if-branch target {btarget} is not the else-branch start {}",
                            j + 1
                        )));
                    }
                    let after_else = check_nodes(k, els, j + 1)?;
                    if jtarget != after_else {
                        return Err(err(format!(
                            "else-skip target {jtarget} is not the if-region end {after_else}"
                        )));
                    }
                    Ok(after_else)
                }
                None => {
                    if !els.is_empty() {
                        return Err(err("else branch without an else-skip jump"));
                    }
                    if btarget != after_then {
                        return Err(err(format!(
                            "if-branch target {btarget} is not the if-region end {after_then}"
                        )));
                    }
                    Ok(after_then)
                }
            }
        }
        Node::Loop(l) => {
            let region_start = cursor;
            let (after_first, after_second) = match l.kind {
                LoopKind::For | LoopKind::While => {
                    let h_end = check_nodes(k, &l.header, cursor)?;
                    if l.exit_at != h_end {
                        return Err(err(format!(
                            "loop exit at {} does not follow its header ending at {h_end} — the \
                             region has no exit test (unbounded loop region)",
                            l.exit_at
                        )));
                    }
                    let b_end = check_nodes(k, &l.body, l.exit_at + 1)?;
                    (h_end, b_end)
                }
                LoopKind::DoWhile => {
                    let b_end = check_nodes(k, &l.body, cursor)?;
                    let h_end = check_nodes(k, &l.header, b_end)?;
                    if l.exit_at != h_end {
                        return Err(err(format!(
                            "do/while exit at {} does not follow its condition ending at {h_end} \
                             (unbounded loop region)",
                            l.exit_at
                        )));
                    }
                    (b_end, h_end)
                }
            };
            let _ = after_first;
            if l.back_at != after_second {
                return Err(err(format!(
                    "loop back-edge at {} does not close the region ending at {after_second}",
                    l.back_at
                )));
            }
            let (bcond, btarget) = branch_target(k, l.exit_at)?;
            if bcond != l.cond {
                return Err(err(format!(
                    "loop condition r{} disagrees with exit-branch condition r{bcond}",
                    l.cond
                )));
            }
            if btarget != l.back_at + 1 {
                return Err(err(format!(
                    "loop exit target {btarget} does not leave the region (expected {}) — the \
                     region cannot terminate (unbounded loop region)",
                    l.back_at + 1
                )));
            }
            let back = jump_target(k, l.back_at)?;
            if back != region_start {
                return Err(err(format!(
                    "loop back-edge target {back} is not the region head {region_start}"
                )));
            }
            Ok(l.back_at + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    #[test]
    fn lowered_kernels_verify() {
        for src in [
            "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }",
            "kernel void lp(float a<>, out float o<>) { float s = 0.0; int i; for (i = 0; i < 8; i++) { s += a; } o = s; }",
            "kernel void br(float a<>, out float o<>) { if (a > 0.0) { o = a; } else { o = -a; } }",
            "float sq(float x) { return x * x; } kernel void h(float a<>, out float o<>) { o = sq(a); }",
        ] {
            let k = lower_src(src);
            verify(&k).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn read_own_output_rejected() {
        let mut k = lower_src("kernel void f(float a<>, out float o<>) { o = a; }");
        // Retarget the elementwise read at the output parameter.
        for inst in &mut k.insts {
            if let Inst::ReadElem { param, .. } = inst {
                *param = 1; // `o`
            }
        }
        let e = verify(&k).expect_err("must reject");
        assert!(e.msg.contains("read-own-output"), "{e}");
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut k = lower_src("kernel void f(float a<>, out float o<>) { o = a + 1.0; }");
        for inst in &mut k.insts {
            if let Inst::Bin { op, .. } = inst {
                *op = BinOp::And; // logical op on float registers
            }
        }
        let e = verify(&k).expect_err("must reject");
        assert!(e.msg.contains("type mismatch"), "{e}");
    }

    #[test]
    fn builtin_arity_mismatch_rejected() {
        let mut k = lower_src("kernel void f(float a<>, out float o<>) { o = sin(a); }");
        for inst in &mut k.insts {
            if let Inst::Builtin { args, .. } = inst {
                args.clear(); // sin() with zero arguments
            }
        }
        let e = verify(&k).expect_err("must reject");
        assert!(e.msg.contains("takes 1 argument"), "{e}");
    }

    #[test]
    fn loop_without_exit_rejected() {
        let mut k = lower_src(
            "kernel void f(float a<>, out float o<>) { float s = 0.0; int i; for (i = 0; i < 4; i++) { s += a; } o = s; }",
        );
        // Break the exit branch: point it back inside the region so the
        // loop can never terminate.
        fn find_loop(nodes: &mut [Node]) -> Option<&mut crate::LoopNode> {
            for n in nodes {
                if let Node::Loop(l) = n {
                    return Some(l);
                }
            }
            None
        }
        let exit_at = find_loop(&mut k.body).expect("loop").exit_at;
        if let Inst::BranchIfFalse { target, .. } = &mut k.insts[exit_at as usize] {
            *target = exit_at; // exit "escapes" into itself
        }
        let e = verify(&k).expect_err("must reject");
        assert!(e.msg.contains("unbounded loop region"), "{e}");
    }
}
