//! Tier-2 closure-threaded BrookIR execution: lane-planned kernels
//! pre-compiled into chains of **monomorphized boxed closures** over
//! the lane engine's SoA slabs.
//!
//! The lane engine ([`crate::lanes`]) already amortizes instruction
//! dispatch over [`LANES`]-element blocks, but it still pays a full
//! decoded-`Op` `match` (operand kind, broadcast flags, width, builtin
//! selection) per op per block. Tier-2 resolves all of that **once at
//! `compile()` time**: every admitted op becomes a boxed `fn(&mut
//! Frame)` whose register offsets, widths, constants and operation are
//! baked into a monomorphized closure body — per-block execution is a
//! straight walk of indirect calls with zero decode and zero type
//! dispatch. On top of the threading, two compile-time specializations
//! remove work entirely:
//!
//! * a **peephole superword pass** fuses recurring adjacent dependent
//!   pairs — `mul`+`add` style arith chains, arith+compare,
//!   compare+select, elementwise-fetch+arith and gather+arith — into
//!   single fused closures that keep the intermediate in a machine
//!   register instead of round-tripping it through the slab;
//! * **uniform subchains are hoisted**: any op whose sources are
//!   dispatch-invariant (constants, scalar parameters, and values
//!   computed from them) and whose destination is written exactly once
//!   is moved into a *prologue* evaluated once per dispatch instead of
//!   once per block.
//!
//! # The fallback guarantee
//!
//! Certification-wise Tier-2 sits strictly *on top of* the lane
//! engine's guarantee and adds no new trusted surface:
//!
//! 1. Admission ([`compile`]) starts from a lane-planner-admitted
//!    kernel (so slab layout, def-before-use and static semantics are
//!    already established) and additionally rejects any op the closure
//!    model does not cover — cross-component reductions and statically
//!    planned fault sites. Rejections are recorded per kernel in the
//!    module's `ComplianceReport` (`tier_plans`) and the backends run
//!    the lane engine instead.
//! 2. At run time any unmodeled binding shape falls back to the lane
//!    engine for the whole range, and any faulting block (iteration
//!    budget) discards its staged slabs and re-runs **exactly that
//!    block** through the lane engine — which itself re-runs it through
//!    the scalar interpreter. Results, partial writes, fault messages,
//!    element attribution and source spans are therefore bit-exact with
//!    the scalar path by construction, through the tier → lanes →
//!    scalar chain.

use crate::interp::{
    domain_extents, indexof_elem, indexof_pos, input_index, Binding, ExecError, MAX_ITERATIONS,
};
use crate::lanes::{
    self, BOp, Bi2, COp, FOp, IOp, LaneKernel, LaneProgram, LaneSlabs, LaneTy, Mask, Op, Un1, FULL, LANES,
};
use crate::simd::{self, SimdLevel};
use crate::{IrKernel, IrProgram, LoopKind, Node};
use glsl_es::Value;
use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// The execution frame and the step type.
// ---------------------------------------------------------------------------

/// The per-dispatch execution state a compiled step runs against: the
/// slab arenas plus the per-block access tables the driver refreshes
/// between blocks. Mirrors the lane engine's `Engine` exactly — the
/// slabs are caller-owned [`LaneSlabs`] so workers reuse them.
pub(crate) struct Frame<'a> {
    bindings: &'a [Binding<'a>],
    f: &'a mut [f32],
    i: &'a mut [i32],
    b: &'a mut [Mask],
    /// The active mask for the straight-line segment being executed.
    m: Mask,
    /// Lanes retired by a kernel-level `return` in this block.
    dead: Mask,
    /// Per-lane loop back-edge counts (the scalar budget, per lane).
    iters: [u32; LANES],
    elem_data: Vec<&'a [f32]>,
    elem_off: Vec<[usize; LANES]>,
    scalar_f: Vec<[f32; 4]>,
    scalar_i: Vec<i32>,
    idx_vals: Vec<[[f32; 2]; LANES]>,
    /// Maximum `indexof` component values of this launch's domain
    /// ([`crate::eval::indexof_comp_max`]) — the runtime half of
    /// [`crate::ProvenIdx::IndexofRel`] clamp elision.
    comp_max: [i64; 2],
}

/// One compiled execution step: a monomorphized closure with all
/// operand offsets, widths and the operation baked in.
type Step = Box<dyn for<'f> Fn(&mut Frame<'f>) + Send + Sync>;

macro_rules! tier_loop {
    ($m:expr, $l:ident, $body:block) => {
        if $m == FULL {
            for $l in 0..LANES {
                $body
            }
        } else {
            let mut mm = $m;
            while mm != 0 {
                let $l = mm.trailing_zeros() as usize;
                $body
                mm &= mm - 1;
            }
        }
    };
}

// ---------------------------------------------------------------------------
// The compiled form.
// ---------------------------------------------------------------------------

/// The closure-threaded control tree, mirroring the kernel's structured
/// [`Node`] regions with conditions pre-resolved to bool-slab offsets.
enum TNode {
    /// A run of straight-line steps sharing one execution mask.
    Straight(Vec<Step>),
    /// Kernel-level `return`: retire the active lanes.
    Ret,
    If {
        cond: usize,
        then: Vec<TNode>,
        els: Vec<TNode>,
    },
    Loop {
        dowhile: bool,
        cond: usize,
        header: Vec<TNode>,
        body: Vec<TNode>,
    },
}

/// A Tier-2-compiled kernel: the once-per-dispatch uniform prologue
/// plus the per-block closure chain. Produced by [`compile`]; executed
/// by [`run_kernel_range`].
pub struct TierKernel {
    /// Hoisted uniform steps, run once per dispatch at full mask.
    prologue: Vec<Step>,
    /// The per-block closure-threaded control tree.
    chain: Vec<TNode>,
    /// Decoded lane ops the kernel compiled from.
    ops_in: usize,
    /// Per-block steps after fusion and hoisting.
    steps: usize,
    /// Adjacent pairs fused into single closures.
    fused: usize,
    /// Uniform ops hoisted into the prologue.
    hoisted: usize,
    /// The explicit-SIMD level the per-block closures dispatch to
    /// (`Scalar` means every step kept its verbatim scalar loop body).
    level: SimdLevel,
}

impl TierKernel {
    /// A one-line human-readable compilation summary for the
    /// compliance report.
    #[must_use]
    pub fn detail(&self) -> String {
        format!(
            "closure-threaded: {} lane ops -> {} block steps ({} fused pairs, {} hoisted uniform, simd {})",
            self.ops_in, self.steps, self.fused, self.hoisted, self.level
        )
    }

    /// Adjacent op pairs the superword pass fused.
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.fused
    }

    /// Uniform ops hoisted out of the per-block path.
    #[must_use]
    pub fn hoisted_uniform(&self) -> usize {
        self.hoisted
    }

    /// The explicit-SIMD level the per-block closures were compiled
    /// for (already capped at what the host supports).
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }
}

impl fmt::Debug for TierKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TierKernel")
            .field("ops_in", &self.ops_in)
            .field("steps", &self.steps)
            .field("fused", &self.fused)
            .field("hoisted", &self.hoisted)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

/// Tier-2 plans for a whole module, parallel to `IrProgram::kernels`.
/// Kernels the compiler rejected carry the reason; backends fall back
/// to the lane engine (or scalar interpreter) for them.
#[derive(Debug, Default)]
pub struct TierProgram {
    /// `(kernel name, compiled chain or rejection reason)`.
    pub kernels: Vec<(String, Result<TierKernel, String>)>,
}

impl TierProgram {
    /// Tier-compiles every lane-admitted kernel of a lowered program.
    /// Lane-rejected kernels are recorded as tier-rejected too (Tier-2
    /// builds on the lane plan's slab layout and admission analysis).
    #[must_use]
    pub fn compile_program(ir: &IrProgram, lanes: &LaneProgram) -> TierProgram {
        Self::compile_program_with(ir, lanes, &[])
    }

    /// [`compile_program`](Self::compile_program) with analyzer facts
    /// (`brook_cert::absint`), parallel to `ir.kernels` (an empty or
    /// short slice means "no facts"). Facts only expand admission —
    /// e.g. a statically planned fault site the analyzer proved
    /// unreachable no longer blocks tier compilation.
    #[must_use]
    pub fn compile_program_with(
        ir: &IrProgram,
        lanes: &LaneProgram,
        facts: &[crate::KernelFacts],
    ) -> TierProgram {
        Self::compile_program_simd(ir, lanes, facts, simd::auto())
    }

    /// [`compile_program_with`](Self::compile_program_with) at an
    /// explicit SIMD level instead of the environment-resolved
    /// default. The level is capped at what the host supports, so a
    /// requested `Avx2` silently degrades on an SSE2-only machine.
    #[must_use]
    pub fn compile_program_simd(
        ir: &IrProgram,
        lanes: &LaneProgram,
        facts: &[crate::KernelFacts],
        level: SimdLevel,
    ) -> TierProgram {
        TierProgram {
            kernels: ir
                .kernels
                .iter()
                .enumerate()
                .map(|(i, k)| {
                    let plan = match lanes.kernel(&k.name) {
                        Some(lk) => compile_simd(lk, k, facts.get(i), level),
                        None => Err(match lanes.decision(&k.name) {
                            Some(Err(e)) => format!("lane planner rejected the kernel: {e}"),
                            _ => "lane planner rejected the kernel".into(),
                        }),
                    };
                    (k.name.clone(), plan)
                })
                .collect(),
        }
    }

    /// The compiled chain for `name`, when admission succeeded.
    #[must_use]
    pub fn kernel(&self, name: &str) -> Option<&TierKernel> {
        self.kernels
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, p)| p.as_ref().ok())
    }

    /// The compilation decision for `name`: `Ok(())` for Tier-2
    /// execution, `Err(reason)` for lane-engine fallback.
    #[must_use]
    pub fn decision(&self, name: &str) -> Option<Result<(), &str>> {
        self.kernels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_ref().map(|_| ()).map_err(|e| e.as_str()))
    }
}

// ---------------------------------------------------------------------------
// Uniform hoisting analysis.
// ---------------------------------------------------------------------------

/// One component-granular slab: an `f32` component slab, an `i32` slab
/// or a bool mask word. All lane-op `f`/`i` offsets are
/// [`LANES`]-aligned by construction, so component indices are exact.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    F(usize),
    I(usize),
    B(usize),
}

/// Enumerates the component slabs `op` reads and writes.
#[allow(clippy::too_many_lines)]
fn op_slots(op: &Op, reads: &mut Vec<Slot>, writes: &mut Vec<Slot>) {
    reads.clear();
    writes.clear();
    let fc = |o: u32| o as usize / LANES;
    let ic = |o: u32| o as usize / LANES;
    match op {
        Op::ConstF { dst, w, .. } => {
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::ConstI { dst, .. } => writes.push(Slot::I(ic(*dst))),
        Op::ConstB { dst, .. } => writes.push(Slot::B(*dst as usize)),
        Op::CopyF { dst, src, n } => {
            for c in 0..*n as usize {
                reads.push(Slot::F(fc(*src) + c));
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::CopyI { dst, src } => {
            reads.push(Slot::I(ic(*src)));
            writes.push(Slot::I(ic(*dst)));
        }
        Op::CopyB { dst, src } => {
            reads.push(Slot::B(*src as usize));
            writes.push(Slot::B(*dst as usize));
        }
        Op::SplatF { dst, w, src } => {
            reads.push(Slot::F(fc(*src)));
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::SplatI { dst, w, src } => {
            reads.push(Slot::I(ic(*src)));
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::ItoF { dst, src } => {
            reads.push(Slot::I(ic(*src)));
            writes.push(Slot::F(fc(*dst)));
        }
        Op::FtoI { dst, src } => {
            reads.push(Slot::F(fc(*src)));
            writes.push(Slot::I(ic(*dst)));
        }
        Op::ArithF {
            dst, w, a, ab, b, bb, ..
        }
        | Op::Map2 {
            dst, w, a, ab, b, bb, ..
        } => {
            for c in 0..if *ab { 1 } else { *w as usize } {
                reads.push(Slot::F(fc(*a) + c));
            }
            for c in 0..if *bb { 1 } else { *w as usize } {
                reads.push(Slot::F(fc(*b) + c));
            }
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::ArithI { dst, a, b, .. } => {
            reads.push(Slot::I(ic(*a)));
            reads.push(Slot::I(ic(*b)));
            writes.push(Slot::I(ic(*dst)));
        }
        Op::CmpF { dst, a, b, .. } => {
            reads.push(Slot::F(fc(*a)));
            reads.push(Slot::F(fc(*b)));
            writes.push(Slot::B(*dst as usize));
        }
        Op::CmpI { dst, a, b, .. } => {
            reads.push(Slot::I(ic(*a)));
            reads.push(Slot::I(ic(*b)));
            writes.push(Slot::B(*dst as usize));
        }
        Op::LogicB { dst, a, b, .. } => {
            reads.push(Slot::B(*a as usize));
            reads.push(Slot::B(*b as usize));
            writes.push(Slot::B(*dst as usize));
        }
        Op::NotB { dst, src } => {
            reads.push(Slot::B(*src as usize));
            writes.push(Slot::B(*dst as usize));
        }
        Op::NegF { dst, src, w } | Op::Map1 { dst, src, w, .. } => {
            for c in 0..*w as usize {
                reads.push(Slot::F(fc(*src) + c));
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::NegI { dst, src } => {
            reads.push(Slot::I(ic(*src)));
            writes.push(Slot::I(ic(*dst)));
        }
        Op::Dot { dst, a, b, w } => {
            for c in 0..*w as usize {
                reads.push(Slot::F(fc(*a) + c));
                reads.push(Slot::F(fc(*b) + c));
            }
            writes.push(Slot::F(fc(*dst)));
        }
        Op::Length { dst, src, w } => {
            for c in 0..*w as usize {
                reads.push(Slot::F(fc(*src) + c));
            }
            writes.push(Slot::F(fc(*dst)));
        }
        Op::Normalize { dst, src, w } => {
            for c in 0..*w as usize {
                reads.push(Slot::F(fc(*src) + c));
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::SelF { dst, cond, a, b, w } => {
            reads.push(Slot::B(*cond as usize));
            for c in 0..*w as usize {
                reads.push(Slot::F(fc(*a) + c));
                reads.push(Slot::F(fc(*b) + c));
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::SelI { dst, cond, a, b } => {
            reads.push(Slot::B(*cond as usize));
            reads.push(Slot::I(ic(*a)));
            reads.push(Slot::I(ic(*b)));
            writes.push(Slot::I(ic(*dst)));
        }
        Op::SelB { dst, cond, a, b } => {
            reads.push(Slot::B(*cond as usize));
            reads.push(Slot::B(*a as usize));
            reads.push(Slot::B(*b as usize));
            writes.push(Slot::B(*dst as usize));
        }
        Op::ReadElem { dst, w, .. } => {
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::ReadScalarF { dst, w, .. } => {
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::ReadScalarI { dst, .. } => writes.push(Slot::I(ic(*dst))),
        Op::Gather { dst, w, idx, .. } => {
            for (off, is_int) in idx {
                reads.push(if *is_int {
                    Slot::I(ic(*off))
                } else {
                    Slot::F(fc(*off))
                });
            }
            for c in 0..*w as usize {
                writes.push(Slot::F(fc(*dst) + c));
            }
        }
        Op::Indexof { dst, .. } => {
            writes.push(Slot::F(fc(*dst)));
            writes.push(Slot::F(fc(*dst) + 1));
        }
        Op::Ret | Op::Bail => {}
    }
}

/// Whether `op`'s value is dispatch-invariant when all its slab sources
/// are: pure slab-to-slab computation or scalar-parameter reads.
/// Element-dependent reads (`ReadElem`, `Gather`, `Indexof`) and
/// control ops are excluded.
fn hoistable_kind(op: &Op) -> bool {
    matches!(
        op,
        Op::ConstF { .. }
            | Op::ConstI { .. }
            | Op::ConstB { .. }
            | Op::CopyF { .. }
            | Op::CopyI { .. }
            | Op::CopyB { .. }
            | Op::SplatF { .. }
            | Op::SplatI { .. }
            | Op::ItoF { .. }
            | Op::FtoI { .. }
            | Op::ArithF { .. }
            | Op::ArithI { .. }
            | Op::CmpF { .. }
            | Op::CmpI { .. }
            | Op::LogicB { .. }
            | Op::NotB { .. }
            | Op::NegF { .. }
            | Op::NegI { .. }
            | Op::Map1 { .. }
            | Op::Map2 { .. }
            | Op::SelF { .. }
            | Op::SelI { .. }
            | Op::SelB { .. }
            | Op::ReadScalarF { .. }
            | Op::ReadScalarI { .. }
    )
}

/// Finds the ops whose results are uniform across the whole dispatch:
/// hoistable-kind ops all of whose sources are themselves uniform and
/// whose destination slabs are written **exactly once** in the entire
/// program (so the prologue's one evaluation is the only definition)
/// and are not output staging (which the per-block preload rewrites).
///
/// Returns the per-op hoist flags plus the prologue emission order —
/// a topological order by construction, because an op is only marked
/// after every producer of its sources has been appended.
fn hoist_plan(lane: &LaneKernel) -> (Vec<bool>, Vec<usize>) {
    let nf = lane.f_len / LANES;
    let ni = lane.i_len / LANES;
    let nb = lane.b_len;
    let mut staged = vec![false; nf];
    for (slot, off) in lane.out_off.iter().enumerate() {
        for c in 0..lane.out_w[slot] as usize {
            staged[*off as usize / LANES + c] = true;
        }
    }
    let mut wc_f = vec![0u32; nf];
    let mut wc_i = vec![0u32; ni];
    let mut wc_b = vec![0u32; nb];
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for op in &lane.ops {
        op_slots(op, &mut reads, &mut writes);
        for s in &writes {
            match s {
                Slot::F(c) => wc_f[*c] += 1,
                Slot::I(c) => wc_i[*c] += 1,
                Slot::B(c) => wc_b[*c] += 1,
            }
        }
    }
    let mut uf = vec![false; nf];
    let mut ui = vec![false; ni];
    let mut ub = vec![false; nb];
    let mut hoisted = vec![false; lane.ops.len()];
    let mut order = Vec::new();
    loop {
        let mut changed = false;
        for (i, op) in lane.ops.iter().enumerate() {
            if hoisted[i] || !hoistable_kind(op) {
                continue;
            }
            op_slots(op, &mut reads, &mut writes);
            let srcs_uniform = reads.iter().all(|s| match s {
                Slot::F(c) => uf[*c],
                Slot::I(c) => ui[*c],
                Slot::B(c) => ub[*c],
            });
            let dsts_ok = writes.iter().all(|s| match s {
                Slot::F(c) => wc_f[*c] == 1 && !staged[*c],
                Slot::I(c) => wc_i[*c] == 1,
                Slot::B(c) => wc_b[*c] == 1,
            });
            if !(srcs_uniform && dsts_ok) {
                continue;
            }
            hoisted[i] = true;
            for s in &writes {
                match s {
                    Slot::F(c) => uf[*c] = true,
                    Slot::I(c) => ui[*c] = true,
                    Slot::B(c) => ub[*c] = true,
                }
            }
            order.push(i);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    (hoisted, order)
}

// ---------------------------------------------------------------------------
// Monomorphization: operation-selection macros and generic builders.
// ---------------------------------------------------------------------------

macro_rules! with_fop {
    ($op:expr, $g:ident, $e:expr) => {
        match $op {
            FOp::Add => {
                let $g = |a: f32, b: f32| a + b;
                $e
            }
            FOp::Sub => {
                let $g = |a: f32, b: f32| a - b;
                $e
            }
            FOp::Mul => {
                let $g = |a: f32, b: f32| a * b;
                $e
            }
            FOp::Div => {
                let $g = |a: f32, b: f32| a / b;
                $e
            }
            FOp::Rem => {
                let $g = |a: f32, b: f32| a - b * (a / b).floor();
                $e
            }
        }
    };
}

macro_rules! with_iop {
    ($op:expr, $g:ident, $e:expr) => {
        match $op {
            IOp::Add => {
                let $g = |a: i32, b: i32| a.wrapping_add(b);
                $e
            }
            IOp::Sub => {
                let $g = |a: i32, b: i32| a.wrapping_sub(b);
                $e
            }
            IOp::Mul => {
                let $g = |a: i32, b: i32| a.wrapping_mul(b);
                $e
            }
            IOp::Div => {
                let $g = |a: i32, b: i32| if b == 0 { 0 } else { a.wrapping_div(b) };
                $e
            }
            IOp::Rem => {
                let $g = |a: i32, b: i32| if b == 0 { 0 } else { a.wrapping_rem(b) };
                $e
            }
        }
    };
}

/// Untyped comparator closures: the generic call site fixes the operand
/// type (`f32` or `i32`).
macro_rules! with_cop {
    ($op:expr, $g:ident, $e:expr) => {
        match $op {
            COp::Lt => {
                let $g = |a, b| a < b;
                $e
            }
            COp::Le => {
                let $g = |a, b| a <= b;
                $e
            }
            COp::Gt => {
                let $g = |a, b| a > b;
                $e
            }
            COp::Ge => {
                let $g = |a, b| a >= b;
                $e
            }
            COp::Eq => {
                let $g = |a, b| a == b;
                $e
            }
            COp::Ne => {
                let $g = |a, b| a != b;
                $e
            }
        }
    };
}

macro_rules! with_un1 {
    ($op:expr, $g:ident, $e:expr) => {
        match $op {
            Un1::Sin => {
                let $g = f32::sin;
                $e
            }
            Un1::Cos => {
                let $g = f32::cos;
                $e
            }
            Un1::Tan => {
                let $g = f32::tan;
                $e
            }
            Un1::Exp => {
                let $g = f32::exp;
                $e
            }
            Un1::Exp2 => {
                let $g = f32::exp2;
                $e
            }
            Un1::Log => {
                let $g = f32::ln;
                $e
            }
            Un1::Log2 => {
                let $g = f32::log2;
                $e
            }
            Un1::Sqrt => {
                let $g = f32::sqrt;
                $e
            }
            Un1::Rsqrt => {
                let $g = |x: f32| 1.0 / x.sqrt();
                $e
            }
            Un1::Abs => {
                let $g = f32::abs;
                $e
            }
            Un1::Floor => {
                let $g = f32::floor;
                $e
            }
            Un1::Ceil => {
                let $g = f32::ceil;
                $e
            }
            Un1::Fract => {
                let $g = f32::fract;
                $e
            }
            Un1::Round => {
                let $g = |x: f32| (x + 0.5).floor();
                $e
            }
            Un1::Sign => {
                let $g = f32::signum;
                $e
            }
            Un1::Saturate => {
                let $g = |x: f32| x.clamp(0.0, 1.0);
                $e
            }
            Un1::Hermite => {
                let $g = |v: f32| v * v * (3.0 - 2.0 * v);
                $e
            }
        }
    };
}

macro_rules! with_bi2 {
    ($op:expr, $g:ident, $e:expr) => {
        match $op {
            Bi2::Min => {
                let $g = f32::min;
                $e
            }
            Bi2::Max => {
                let $g = f32::max;
                $e
            }
            Bi2::Pow => {
                let $g = f32::powf;
                $e
            }
            Bi2::Fmod => {
                let $g = |x: f32, y: f32| x - y * (x / y).floor();
                $e
            }
            Bi2::Step => {
                let $g = |e: f32, x: f32| if x < e { 0.0 } else { 1.0 };
                $e
            }
            Bi2::Atan2 => {
                let $g = f32::atan2;
                $e
            }
            Bi2::MulOneMinusB => {
                let $g = |x: f32, t: f32| x * (1.0 - t);
                $e
            }
            Bi2::DivClamp01 => {
                let $g = |x: f32, y: f32| (x / y).clamp(0.0, 1.0);
                $e
            }
            Bi2::Add2 => {
                let $g = |x: f32, y: f32| x + y;
                $e
            }
            Bi2::Sub2 => {
                let $g = |x: f32, y: f32| x - y;
                $e
            }
            Bi2::Mul => {
                let $g = |x: f32, y: f32| x * y;
                $e
            }
        }
    };
}

/// Componentwise float zip (`ArithF` / `Map2`) with pre-resolved
/// broadcast handling.
fn zip2_step<G>(g: G, dst: usize, w: usize, a: usize, ab: bool, b: usize, bb: bool) -> Step
where
    G: Fn(f32, f32) -> f32 + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..w {
            let d = dst + c * LANES;
            let x = a + if ab { 0 } else { c * LANES };
            let y = b + if bb { 0 } else { c * LANES };
            tier_loop!(m, l, {
                fr.f[d + l] = g(fr.f[x + l], fr.f[y + l]);
            });
        }
    })
}

fn map1_step<G>(g: G, dst: usize, src: usize, w: usize) -> Step
where
    G: Fn(f32) -> f32 + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..w {
            let d = dst + c * LANES;
            let s = src + c * LANES;
            tier_loop!(m, l, {
                fr.f[d + l] = g(fr.f[s + l]);
            });
        }
    })
}

fn arithi_step<G>(g: G, dst: usize, a: usize, b: usize) -> Step
where
    G: Fn(i32, i32) -> i32 + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        tier_loop!(m, l, {
            fr.i[dst + l] = g(fr.i[a + l], fr.i[b + l]);
        });
    })
}

fn cmpf_step<G>(g: G, dst: usize, a: usize, b: usize) -> Step
where
    G: Fn(f32, f32) -> bool + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        let mut bits: Mask = 0;
        tier_loop!(m, l, {
            if g(fr.f[a + l], fr.f[b + l]) {
                bits |= 1 << l;
            }
        });
        fr.b[dst] = (fr.b[dst] & !m) | bits;
    })
}

fn cmpi_step<G>(g: G, dst: usize, a: usize, b: usize) -> Step
where
    G: Fn(i32, i32) -> bool + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        let mut bits: Mask = 0;
        tier_loop!(m, l, {
            if g(fr.i[a + l], fr.i[b + l]) {
                bits |= 1 << l;
            }
        });
        fr.b[dst] = (fr.b[dst] & !m) | bits;
    })
}

fn logicb_step<G>(g: G, dst: usize, a: usize, b: usize) -> Step
where
    G: Fn(Mask, Mask) -> Mask + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let bits = g(fr.b[a], fr.b[b]);
        fr.b[dst] = (fr.b[dst] & !fr.m) | (bits & fr.m);
    })
}

// ---------------------------------------------------------------------------
// Fused superword closures.
// ---------------------------------------------------------------------------

/// Operand layout of a fused zip→zip pair: op2 consumes op1's result
/// in-register (`ta`/`tb`) instead of reloading the slab.
#[derive(Clone, Copy)]
struct ZipZip {
    w: usize,
    a1: usize,
    ab1: bool,
    b1: usize,
    bb1: bool,
    d1: usize,
    a2: usize,
    ab2: bool,
    b2: usize,
    bb2: bool,
    d2: usize,
    ta: bool,
    tb: bool,
}

fn fuse_ff<G1, G2>(g1: G1, g2: G2, p: ZipZip) -> Step
where
    G1: Fn(f32, f32) -> f32 + Send + Sync + 'static,
    G2: Fn(f32, f32) -> f32 + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..p.w {
            let cl = c * LANES;
            let x1 = p.a1 + if p.ab1 { 0 } else { cl };
            let y1 = p.b1 + if p.bb1 { 0 } else { cl };
            let d1 = p.d1 + cl;
            let x2 = p.a2 + if p.ab2 { 0 } else { cl };
            let y2 = p.b2 + if p.bb2 { 0 } else { cl };
            let d2 = p.d2 + cl;
            tier_loop!(m, l, {
                let t = g1(fr.f[x1 + l], fr.f[y1 + l]);
                fr.f[d1 + l] = t;
                let xa = if p.ta { t } else { fr.f[x2 + l] };
                let xb = if p.tb { t } else { fr.f[y2 + l] };
                fr.f[d2 + l] = g2(xa, xb);
            });
        }
    })
}

/// Fused scalar arith→compare: the arith result feeds the comparison
/// in-register and the bool slab is merged once.
#[derive(Clone, Copy)]
struct FCmp {
    a1: usize,
    b1: usize,
    d1: usize,
    a2: usize,
    b2: usize,
    d2: usize,
    ta: bool,
    tb: bool,
}

fn fuse_fc<G1, G2>(g1: G1, g2: G2, p: FCmp) -> Step
where
    G1: Fn(f32, f32) -> f32 + Send + Sync + 'static,
    G2: Fn(f32, f32) -> bool + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        let mut bits: Mask = 0;
        tier_loop!(m, l, {
            let t = g1(fr.f[p.a1 + l], fr.f[p.b1 + l]);
            fr.f[p.d1 + l] = t;
            let xa = if p.ta { t } else { fr.f[p.a2 + l] };
            let xb = if p.tb { t } else { fr.f[p.b2 + l] };
            if g2(xa, xb) {
                bits |= 1 << l;
            }
        });
        fr.b[p.d2] = (fr.b[p.d2] & !m) | bits;
    })
}

/// Fused compare→select: the per-lane condition drives the select
/// directly, skipping the bool-slab round trip.
#[derive(Clone, Copy)]
struct CSel {
    a1: usize,
    b1: usize,
    d1: usize,
    a2: usize,
    b2: usize,
    d2: usize,
    w: usize,
}

fn fuse_cs<G1>(g1: G1, p: CSel) -> Step
where
    G1: Fn(f32, f32) -> bool + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        let mut bits: Mask = 0;
        tier_loop!(m, l, {
            let take = g1(fr.f[p.a1 + l], fr.f[p.b1 + l]);
            let src = if take {
                bits |= 1 << l;
                p.a2
            } else {
                p.b2
            };
            for c in 0..p.w {
                fr.f[p.d2 + c * LANES + l] = fr.f[src + c * LANES + l];
            }
        });
        fr.b[p.d1] = (fr.b[p.d1] & !m) | bits;
    })
}

/// Fused elementwise-fetch→arith: the loaded element feeds the arith
/// in-register.
#[derive(Clone, Copy)]
struct EZip {
    slot: usize,
    d1: usize,
    w: usize,
    a2: usize,
    ab2: bool,
    b2: usize,
    bb2: bool,
    d2: usize,
    ta: bool,
    tb: bool,
}

fn fuse_ra<G2>(g2: G2, p: EZip) -> Step
where
    G2: Fn(f32, f32) -> f32 + Send + Sync + 'static,
{
    Box::new(move |fr| {
        let m = fr.m;
        let data = fr.elem_data[p.slot];
        let off = fr.elem_off[p.slot];
        for c in 0..p.w {
            let cl = c * LANES;
            let d1 = p.d1 + cl;
            let x2 = p.a2 + if p.ab2 { 0 } else { cl };
            let y2 = p.b2 + if p.bb2 { 0 } else { cl };
            let d2 = p.d2 + cl;
            tier_loop!(m, l, {
                let t = data[off[l] + c];
                fr.f[d1 + l] = t;
                let xa = if p.ta { t } else { fr.f[x2 + l] };
                let xb = if p.tb { t } else { fr.f[y2 + l] };
                fr.f[d2 + l] = g2(xa, xb);
            });
        }
    })
}

/// Fused gather→arith (both scalar-width): the gathered value feeds
/// the arith in-register.
#[derive(Clone, Copy)]
struct GZip {
    param: usize,
    d1: usize,
    a2: usize,
    b2: usize,
    d2: usize,
    ta: bool,
    tb: bool,
}

fn fuse_ga<G2>(g2: G2, p: GZip, idx: Vec<(u32, bool)>, proven: Option<Vec<crate::ProvenIdx>>) -> Step
where
    G2: Fn(f32, f32) -> f32 + Send + Sync + 'static,
{
    if let Some((o0, o1)) = gather_ff(&idx) {
        // The hot specialization: two float indices into a 2-D table
        // (sgemm's a[y][k]/b[k][x], conv3x3's img[y±1][x±1]) — clamp
        // both coordinates inline, no dynamic index walk per lane.
        return Box::new(move |fr| {
            let m = fr.m;
            let bindings = fr.bindings;
            let Binding::Gather { data, shape, width } = &bindings[p.param] else {
                unreachable!("gather binding validated at dispatch");
            };
            if let [d0, d1] = shape[..] {
                let wd = *width as usize;
                if proven
                    .as_ref()
                    .is_some_and(|pr| crate::eval::proven_fits_dyn(pr, shape, fr.comp_max))
                {
                    // Analyzer-proven in-bounds: the fused inner loop
                    // (sgemm's hot path) runs clamp-free.
                    tier_loop!(m, l, {
                        let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                        let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                        debug_assert!(
                            iy >= 0 && (iy as usize) < d0 && ix >= 0 && (ix as usize) < d1,
                            "unsound clamp elision: ({iy},{ix}) outside {d0}x{d1} — analyzer bug"
                        );
                        let t = data[(iy as usize * d1 + ix as usize) * wd];
                        fr.f[p.d1 + l] = t;
                        let xa = if p.ta { t } else { fr.f[p.a2 + l] };
                        let xb = if p.tb { t } else { fr.f[p.b2 + l] };
                        fr.f[p.d2 + l] = g2(xa, xb);
                    });
                } else {
                    tier_loop!(m, l, {
                        let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                        let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                        let linear =
                            iy.clamp(0, d0 as i64 - 1) as usize * d1 + ix.clamp(0, d1 as i64 - 1) as usize;
                        let t = data[linear * wd];
                        fr.f[p.d1 + l] = t;
                        let xa = if p.ta { t } else { fr.f[p.a2 + l] };
                        let xb = if p.tb { t } else { fr.f[p.b2 + l] };
                        fr.f[p.d2 + l] = g2(xa, xb);
                    });
                }
            } else {
                let idx = [(o0 as u32, false), (o1 as u32, false)];
                tier_loop!(m, l, {
                    let t = data[gather_linear(fr, &idx, shape, l) * *width as usize];
                    fr.f[p.d1 + l] = t;
                    let xa = if p.ta { t } else { fr.f[p.a2 + l] };
                    let xb = if p.tb { t } else { fr.f[p.b2 + l] };
                    fr.f[p.d2 + l] = g2(xa, xb);
                });
            }
        });
    }
    Box::new(move |fr| {
        let m = fr.m;
        let bindings = fr.bindings;
        let Binding::Gather { data, shape, width } = &bindings[p.param] else {
            unreachable!("gather binding validated at dispatch");
        };
        tier_loop!(m, l, {
            let t = data[gather_linear(fr, &idx, shape, l) * *width as usize];
            fr.f[p.d1 + l] = t;
            let xa = if p.ta { t } else { fr.f[p.a2 + l] };
            let xb = if p.tb { t } else { fr.f[p.b2 + l] };
            fr.f[p.d2 + l] = g2(xa, xb);
        });
    })
}

/// The statically-known two-float-index gather pattern (`t[y][x]` with
/// float coordinates — every gather in the app suite). Specialized
/// closures avoid the per-lane dynamic index walk entirely.
fn gather_ff(idx: &[(u32, bool)]) -> Option<(usize, usize)> {
    match idx {
        [(o0, false), (o1, false)] => Some((*o0 as usize, *o1 as usize)),
        _ => None,
    }
}

/// The scalar gather index computation: per-dimension clamp when the
/// index arity matches the shape, linear clamp otherwise. Float
/// indices round like the scalar path (`(v + 0.5).floor()`).
#[inline(always)]
fn gather_linear(fr: &Frame<'_>, idx: &[(u32, bool)], shape: &[usize], l: usize) -> usize {
    if idx.len() == shape.len() {
        let mut linear = 0usize;
        for (k, (off, is_int)) in idx.iter().enumerate() {
            let iv: i64 = if *is_int {
                i64::from(fr.i[*off as usize + l])
            } else {
                (fr.f[*off as usize + l] + 0.5).floor() as i64
            };
            let dim = shape[k];
            linear = linear * dim + iv.clamp(0, dim as i64 - 1) as usize;
        }
        linear
    } else {
        let len: usize = shape.iter().product();
        let first: i64 = match idx.first() {
            Some((off, true)) => i64::from(fr.i[*off as usize + l]),
            Some((off, false)) => (fr.f[*off as usize + l] + 0.5).floor() as i64,
            None => 0,
        };
        first.clamp(0, len as i64 - 1) as usize
    }
}

/// [`gather_linear`] with the per-dimension clamp elided — only called
/// after [`crate::eval::proven_fits_dyn`] accepted the frame's shape.
#[inline(always)]
fn gather_linear_unclamped(fr: &Frame<'_>, idx: &[(u32, bool)], shape: &[usize], l: usize) -> usize {
    let mut linear = 0usize;
    for (k, (off, is_int)) in idx.iter().enumerate() {
        let iv: i64 = if *is_int {
            i64::from(fr.i[*off as usize + l])
        } else {
            (fr.f[*off as usize + l] + 0.5).floor() as i64
        };
        let dim = shape[k];
        debug_assert!(
            iv >= 0 && (iv as usize) < dim,
            "unsound clamp elision: index {iv} outside [0, {dim}) — analyzer bug"
        );
        linear = linear * dim + iv as usize;
    }
    linear
}

// ---------------------------------------------------------------------------
// Single-op step builders.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Explicit-SIMD step builders.
// ---------------------------------------------------------------------------

/// Maps an arith op onto its explicit vector kernel. `Rem` has no
/// bit-exactness-preserving vector form and keeps the scalar body.
fn vf_of(op: FOp) -> Option<simd::VfOp> {
    Some(match op {
        FOp::Add => simd::VfOp::Add,
        FOp::Sub => simd::VfOp::Sub,
        FOp::Mul => simd::VfOp::Mul,
        FOp::Div => simd::VfOp::Div,
        FOp::Rem => return None,
    })
}

/// Builtin pairs with explicit vector kernels. `min`/`max` use the
/// bit-exact NaN/tie-preserving sequences; the synthetic fusion
/// builtins map to plain arith. Everything else (pow, step, atan2,
/// fmod) keeps its scalar body — libm calls have no vector form here.
fn vf_of_bi2(f: Bi2) -> Option<simd::VfOp> {
    Some(match f {
        Bi2::Min => simd::VfOp::Min,
        Bi2::Max => simd::VfOp::Max,
        Bi2::Add2 => simd::VfOp::Add,
        Bi2::Sub2 => simd::VfOp::Sub,
        Bi2::Mul => simd::VfOp::Mul,
        _ => return None,
    })
}

/// Unary builtins with explicit vector kernels: `sqrtps` is IEEE
/// correctly-rounded (identical to scalar `sqrt`), abs/neg are pure
/// sign-bit ops. The transcendental family stays scalar.
fn vu_of(f: Un1) -> Option<simd::VuOp> {
    Some(match f {
        Un1::Sqrt => simd::VuOp::Sqrt,
        Un1::Abs => simd::VuOp::Abs,
        _ => return None,
    })
}

/// Wrapping-int ops with explicit vector kernels. Div/Rem trap on
/// zero in scalar code (a semantic the kernel model preserves via the
/// scalar body's fault path).
fn vi_of(op: IOp) -> Option<simd::ViOp> {
    Some(match op {
        IOp::Add => simd::ViOp::Add,
        IOp::Sub => simd::ViOp::Sub,
        IOp::Mul => simd::ViOp::Mul,
        IOp::Div | IOp::Rem => return None,
    })
}

/// A component-looped binary float step dispatching to the vector
/// kernels: computes all [`LANES`] lanes (slabs are always
/// initialized, so dead-lane arithmetic is unobservable) and
/// blend-stores exactly the scalar write set.
#[allow(clippy::too_many_arguments)]
fn simd_zip2(
    level: SimdLevel,
    op: simd::VfOp,
    dst: usize,
    w: usize,
    a: usize,
    ab: bool,
    b: usize,
    bb: bool,
) -> Step {
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..w {
            let d = dst + c * LANES;
            let x = a + if ab { 0 } else { c * LANES };
            let y = b + if bb { 0 } else { c * LANES };
            simd::vf_bin(level, op, fr.f, d, x, y, m);
        }
    })
}

/// A component-looped unary float step over the vector kernels.
fn simd_map1(level: SimdLevel, op: simd::VuOp, dst: usize, src: usize, w: usize) -> Step {
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..w {
            simd::vf_un(level, op, fr.f, dst + c * LANES, src + c * LANES, m);
        }
    })
}

/// The vector kernel for a step, when one exists at this level. `None`
/// keeps the scalar closure from [`step_for`]'s main match verbatim —
/// that body *is* the semantic reference, so anything without a
/// bit-exact vector form (transcendentals, int div, memory walks)
/// falls through to it.
fn simd_step_for(op: &Op, level: SimdLevel) -> Option<Step> {
    match op {
        Op::ArithF {
            op,
            dst,
            w,
            a,
            ab,
            b,
            bb,
        } => {
            let vop = vf_of(*op)?;
            Some(simd_zip2(
                level,
                vop,
                *dst as usize,
                *w as usize,
                *a as usize,
                *ab,
                *b as usize,
                *bb,
            ))
        }
        Op::Map2 {
            f,
            dst,
            w,
            a,
            ab,
            b,
            bb,
        } => {
            let vop = vf_of_bi2(*f)?;
            Some(simd_zip2(
                level,
                vop,
                *dst as usize,
                *w as usize,
                *a as usize,
                *ab,
                *b as usize,
                *bb,
            ))
        }
        Op::Map1 { f, dst, src, w } => {
            let vop = vu_of(*f)?;
            Some(simd_map1(level, vop, *dst as usize, *src as usize, *w as usize))
        }
        Op::NegF { dst, src, w } => Some(simd_map1(
            level,
            simd::VuOp::Neg,
            *dst as usize,
            *src as usize,
            *w as usize,
        )),
        Op::ArithI { op, dst, a, b } => {
            let vop = vi_of(*op)?;
            let (d, a, b) = (*dst as usize, *a as usize, *b as usize);
            Some(Box::new(move |fr| {
                simd::vi_bin(level, vop, fr.i, d, a, b, fr.m);
            }))
        }
        Op::CmpF { op, dst, a, b } => {
            let (cop, d, a, b) = (*op, *dst as usize, *a as usize, *b as usize);
            Some(Box::new(move |fr| {
                let m = fr.m;
                let bits = simd::vf_cmp(level, cop, fr.f, a, b);
                fr.b[d] = (fr.b[d] & !m) | (bits & m);
            }))
        }
        Op::SelF { dst, cond, a, b, w } => {
            let (d, cnd, a, b, w) = (
                *dst as usize,
                *cond as usize,
                *a as usize,
                *b as usize,
                *w as usize,
            );
            Some(Box::new(move |fr| {
                let m = fr.m;
                let cond = fr.b[cnd];
                for c in 0..w {
                    let cl = c * LANES;
                    simd::vf_sel(level, fr.f, d + cl, a + cl, b + cl, cond, m);
                }
            }))
        }
        _ => None,
    }
}

/// The SIMD form of [`fuse_ff`]: per component, op1 computes and
/// masked-stores `d1` *before* op2's operands load (lanes are
/// independent and `operand_ok` guarantees op2's operands are exactly
/// `d1` or disjoint, so this reproduces the scalar per-lane order).
fn simd_fuse_ff(level: SimdLevel, v1: simd::VfOp, v2: simd::VfOp, p: ZipZip) -> Step {
    Box::new(move |fr| {
        let m = fr.m;
        for c in 0..p.w {
            let cl = c * LANES;
            let q = simd::FusedFF {
                x1: p.a1 + if p.ab1 { 0 } else { cl },
                y1: p.b1 + if p.bb1 { 0 } else { cl },
                d1: p.d1 + cl,
                x2: p.a2 + if p.ab2 { 0 } else { cl },
                y2: p.b2 + if p.bb2 { 0 } else { cl },
                d2: p.d2 + cl,
                ta: p.ta,
                tb: p.tb,
            };
            simd::vf_fused_ff(level, v1, v2, fr.f, q, m);
        }
    })
}

/// The SIMD form of [`fuse_ra`]: the per-lane element walk stays
/// scalar (it is a memory gather), landing the fetched values in a
/// zero-padded stack buffer that feeds the vector arith tail.
fn simd_fuse_ra(level: SimdLevel, v2: simd::VfOp, p: EZip) -> Step {
    Box::new(move |fr| {
        let m = fr.m;
        let data = fr.elem_data[p.slot];
        let off = fr.elem_off[p.slot];
        for c in 0..p.w {
            let cl = c * LANES;
            let d1 = p.d1 + cl;
            let mut t = [0.0f32; LANES];
            tier_loop!(m, l, {
                let v = data[off[l] + c];
                t[l] = v;
                fr.f[d1 + l] = v;
            });
            let q = simd::TBuf {
                d2: p.d2 + cl,
                a2: p.a2 + if p.ab2 { 0 } else { cl },
                b2: p.b2 + if p.bb2 { 0 } else { cl },
                ta: p.ta,
                tb: p.tb,
            };
            simd::vf_arith_tbuf(level, v2, fr.f, &t, q, m);
        }
    })
}

/// The SIMD form of [`fuse_ga`]: the gather's index walk (clamping,
/// proven-elision debug asserts, dynamic index decode) is kept
/// verbatim from the scalar closure — only live lanes may touch
/// memory — and the fetched values feed the vector arith tail.
fn simd_fuse_ga(
    level: SimdLevel,
    v2: simd::VfOp,
    p: GZip,
    idx: Vec<(u32, bool)>,
    proven: Option<Vec<crate::ProvenIdx>>,
) -> Step {
    let q = simd::TBuf {
        d2: p.d2,
        a2: p.a2,
        b2: p.b2,
        ta: p.ta,
        tb: p.tb,
    };
    if let Some((o0, o1)) = gather_ff(&idx) {
        return Box::new(move |fr| {
            let m = fr.m;
            let bindings = fr.bindings;
            let Binding::Gather { data, shape, width } = &bindings[p.param] else {
                unreachable!("gather binding validated at dispatch");
            };
            let mut t = [0.0f32; LANES];
            if let [d0, d1] = shape[..] {
                let wd = *width as usize;
                let unclamped = proven
                    .as_ref()
                    .is_some_and(|pr| crate::eval::proven_fits_dyn(pr, shape, fr.comp_max));
                let mut lin = [0i32; LANES];
                if simd::vf_gather2_idx(level, fr.f, o0, o1, d0, d1, !unclamped, &mut lin) {
                    tier_loop!(m, l, {
                        debug_assert!(
                            lin[l] >= 0 && (lin[l] as usize) < d0 * d1,
                            "unsound gather index: {} outside {d0}x{d1} — analyzer bug",
                            lin[l]
                        );
                        let v = data[lin[l] as usize * wd];
                        t[l] = v;
                        fr.f[p.d1 + l] = v;
                    });
                } else if unclamped {
                    tier_loop!(m, l, {
                        let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                        let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                        debug_assert!(
                            iy >= 0 && (iy as usize) < d0 && ix >= 0 && (ix as usize) < d1,
                            "unsound clamp elision: ({iy},{ix}) outside {d0}x{d1} — analyzer bug"
                        );
                        let v = data[(iy as usize * d1 + ix as usize) * wd];
                        t[l] = v;
                        fr.f[p.d1 + l] = v;
                    });
                } else {
                    tier_loop!(m, l, {
                        let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                        let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                        let linear =
                            iy.clamp(0, d0 as i64 - 1) as usize * d1 + ix.clamp(0, d1 as i64 - 1) as usize;
                        let v = data[linear * wd];
                        t[l] = v;
                        fr.f[p.d1 + l] = v;
                    });
                }
            } else {
                let gidx = [(o0 as u32, false), (o1 as u32, false)];
                tier_loop!(m, l, {
                    let v = data[gather_linear(fr, &gidx, shape, l) * *width as usize];
                    t[l] = v;
                    fr.f[p.d1 + l] = v;
                });
            }
            simd::vf_arith_tbuf(level, v2, fr.f, &t, q, m);
        });
    }
    Box::new(move |fr| {
        let m = fr.m;
        let bindings = fr.bindings;
        let Binding::Gather { data, shape, width } = &bindings[p.param] else {
            unreachable!("gather binding validated at dispatch");
        };
        let mut t = [0.0f32; LANES];
        tier_loop!(m, l, {
            let v = data[gather_linear(fr, &idx, shape, l) * *width as usize];
            t[l] = v;
            fr.f[p.d1 + l] = v;
        });
        simd::vf_arith_tbuf(level, v2, fr.f, &t, q, m);
    })
}

/// Builds the monomorphized closure for one lane op. `Ret` is handled
/// structurally and rejected kinds never reach this point.
#[allow(clippy::too_many_lines)]
fn step_for(op: &Op, level: SimdLevel) -> Step {
    if level != SimdLevel::Scalar {
        if let Some(st) = simd_step_for(op, level) {
            return st;
        }
    }
    match op {
        Op::ConstF { dst, w, v } => {
            let (dst, w, v) = (*dst as usize, *w as usize, *v);
            Box::new(move |fr| {
                let m = fr.m;
                for (c, val) in v.iter().copied().take(w).enumerate() {
                    let d = dst + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = val;
                    });
                }
            })
        }
        Op::ConstI { dst, v } => {
            let (dst, v) = (*dst as usize, *v);
            Box::new(move |fr| {
                let m = fr.m;
                tier_loop!(m, l, {
                    fr.i[dst + l] = v;
                });
            })
        }
        Op::ConstB { dst, v } => {
            let (dst, v) = (*dst as usize, *v);
            Box::new(move |fr| {
                let m = fr.m;
                let bits = if v { m } else { 0 };
                fr.b[dst] = (fr.b[dst] & !m) | bits;
            })
        }
        Op::CopyF { dst, src, n } => {
            let (dst, src, n) = (*dst as usize, *src as usize, *n as usize);
            Box::new(move |fr| {
                let m = fr.m;
                for c in 0..n {
                    let d = dst + c * LANES;
                    let s = src + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = fr.f[s + l];
                    });
                }
            })
        }
        Op::CopyI { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                tier_loop!(m, l, {
                    fr.i[d + l] = fr.i[s + l];
                });
            })
        }
        Op::CopyB { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let bits = fr.b[s];
                fr.b[d] = (fr.b[d] & !fr.m) | (bits & fr.m);
            })
        }
        Op::SplatF { dst, w, src } => {
            let (dst, w, s) = (*dst as usize, *w as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                for c in 0..w {
                    let d = dst + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = fr.f[s + l];
                    });
                }
            })
        }
        Op::SplatI { dst, w, src } => {
            let (dst, w, s) = (*dst as usize, *w as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                for c in 0..w {
                    let d = dst + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = fr.i[s + l] as f32;
                    });
                }
            })
        }
        Op::ItoF { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                tier_loop!(m, l, {
                    fr.f[d + l] = fr.i[s + l] as f32;
                });
            })
        }
        Op::FtoI { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                tier_loop!(m, l, {
                    fr.i[d + l] = fr.f[s + l] as i32;
                });
            })
        }
        Op::ArithF {
            op,
            dst,
            w,
            a,
            ab,
            b,
            bb,
        } => with_fop!(
            *op,
            g,
            zip2_step(g, *dst as usize, *w as usize, *a as usize, *ab, *b as usize, *bb)
        ),
        Op::Map2 {
            f,
            dst,
            w,
            a,
            ab,
            b,
            bb,
        } => with_bi2!(
            *f,
            g,
            zip2_step(g, *dst as usize, *w as usize, *a as usize, *ab, *b as usize, *bb)
        ),
        Op::ArithI { op, dst, a, b } => {
            with_iop!(*op, g, arithi_step(g, *dst as usize, *a as usize, *b as usize))
        }
        Op::CmpF { op, dst, a, b } => {
            with_cop!(*op, g, cmpf_step(g, *dst as usize, *a as usize, *b as usize))
        }
        Op::CmpI { op, dst, a, b } => {
            with_cop!(*op, g, cmpi_step(g, *dst as usize, *a as usize, *b as usize))
        }
        Op::LogicB { op, dst, a, b } => {
            let (d, a, b) = (*dst as usize, *a as usize, *b as usize);
            match op {
                BOp::And => logicb_step(|x, y| x & y, d, a, b),
                BOp::Or => logicb_step(|x, y| x | y, d, a, b),
                BOp::Eq => logicb_step(|x, y| !(x ^ y), d, a, b),
                BOp::Ne => logicb_step(|x, y| x ^ y, d, a, b),
            }
        }
        Op::NotB { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let bits = !fr.b[s];
                fr.b[d] = (fr.b[d] & !fr.m) | (bits & fr.m);
            })
        }
        Op::NegF { dst, src, w } => {
            let (dst, src, w) = (*dst as usize, *src as usize, *w as usize);
            Box::new(move |fr| {
                let m = fr.m;
                for c in 0..w {
                    let d = dst + c * LANES;
                    let s = src + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = -fr.f[s + l];
                    });
                }
            })
        }
        Op::NegI { dst, src } => {
            let (d, s) = (*dst as usize, *src as usize);
            Box::new(move |fr| {
                let m = fr.m;
                tier_loop!(m, l, {
                    fr.i[d + l] = fr.i[s + l].wrapping_neg();
                });
            })
        }
        Op::Map1 { f, dst, src, w } => {
            with_un1!(*f, g, map1_step(g, *dst as usize, *src as usize, *w as usize))
        }
        Op::SelF { dst, cond, a, b, w } => {
            let (d, cnd, a, b, w) = (
                *dst as usize,
                *cond as usize,
                *a as usize,
                *b as usize,
                *w as usize,
            );
            Box::new(move |fr| {
                let m = fr.m;
                let cb = fr.b[cnd];
                tier_loop!(m, l, {
                    let src = if cb & (1 << l) != 0 { a } else { b };
                    for c in 0..w {
                        fr.f[d + c * LANES + l] = fr.f[src + c * LANES + l];
                    }
                });
            })
        }
        Op::SelI { dst, cond, a, b } => {
            let (d, cnd, a, b) = (*dst as usize, *cond as usize, *a as usize, *b as usize);
            Box::new(move |fr| {
                let m = fr.m;
                let cb = fr.b[cnd];
                tier_loop!(m, l, {
                    fr.i[d + l] = if cb & (1 << l) != 0 {
                        fr.i[a + l]
                    } else {
                        fr.i[b + l]
                    };
                });
            })
        }
        Op::SelB { dst, cond, a, b } => {
            let (d, cnd, a, b) = (*dst as usize, *cond as usize, *a as usize, *b as usize);
            Box::new(move |fr| {
                let cb = fr.b[cnd];
                let bits = (fr.b[a] & cb) | (fr.b[b] & !cb);
                fr.b[d] = (fr.b[d] & !fr.m) | (bits & fr.m);
            })
        }
        Op::ReadElem { dst, w, slot } => {
            let (dst, w, slot) = (*dst as usize, *w as usize, *slot as usize);
            Box::new(move |fr| {
                let m = fr.m;
                let data = fr.elem_data[slot];
                let off = fr.elem_off[slot];
                for c in 0..w {
                    let d = dst + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = data[off[l] + c];
                    });
                }
            })
        }
        Op::ReadScalarF { dst, w, slot } => {
            let (dst, w, slot) = (*dst as usize, *w as usize, *slot as usize);
            Box::new(move |fr| {
                let m = fr.m;
                let v = fr.scalar_f[slot];
                for (c, val) in v.iter().copied().take(w).enumerate() {
                    let d = dst + c * LANES;
                    tier_loop!(m, l, {
                        fr.f[d + l] = val;
                    });
                }
            })
        }
        Op::ReadScalarI { dst, slot } => {
            let (d, slot) = (*dst as usize, *slot as usize);
            Box::new(move |fr| {
                let m = fr.m;
                let v = fr.scalar_i[slot];
                tier_loop!(m, l, {
                    fr.i[d + l] = v;
                });
            })
        }
        Op::Gather {
            dst,
            w,
            param,
            idx,
            proven,
        } => {
            let (dst, w, param) = (*dst as usize, *w as usize, *param as usize);
            let proven = proven.clone();
            if let Some((o0, o1)) = gather_ff(idx) {
                return Box::new(move |fr| {
                    let m = fr.m;
                    let bindings = fr.bindings;
                    let Binding::Gather { data, shape, width } = &bindings[param] else {
                        unreachable!("gather binding validated at dispatch");
                    };
                    if let [d0, d1] = shape[..] {
                        let wd = *width as usize;
                        let unclamped = proven
                            .as_ref()
                            .is_some_and(|p| crate::eval::proven_fits_dyn(p, shape, fr.comp_max));
                        let mut lin = [0i32; LANES];
                        if simd::vf_gather2_idx(level, fr.f, o0, o1, d0, d1, !unclamped, &mut lin) {
                            // Index math vectorized (bit-exact, see
                            // `vf_gather2_idx`); loads stay per live
                            // lane so dead-lane indices are never read.
                            tier_loop!(m, l, {
                                debug_assert!(
                                    lin[l] >= 0 && (lin[l] as usize) < d0 * d1,
                                    "unsound gather index: {} outside {d0}x{d1} — analyzer bug",
                                    lin[l]
                                );
                                let src = lin[l] as usize * wd;
                                for c in 0..w {
                                    fr.f[dst + c * LANES + l] = data[src + c];
                                }
                            });
                        } else if unclamped {
                            // Analyzer-proven in-bounds: no clamps in
                            // the hot two-float-index loop.
                            tier_loop!(m, l, {
                                let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                                let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                                debug_assert!(
                                    iy >= 0 && (iy as usize) < d0 && ix >= 0 && (ix as usize) < d1,
                                    "unsound clamp elision: ({iy},{ix}) outside {d0}x{d1} — analyzer bug"
                                );
                                let src = (iy as usize * d1 + ix as usize) * wd;
                                for c in 0..w {
                                    fr.f[dst + c * LANES + l] = data[src + c];
                                }
                            });
                        } else {
                            tier_loop!(m, l, {
                                let iy = (fr.f[o0 + l] + 0.5).floor() as i64;
                                let ix = (fr.f[o1 + l] + 0.5).floor() as i64;
                                let linear = iy.clamp(0, d0 as i64 - 1) as usize * d1
                                    + ix.clamp(0, d1 as i64 - 1) as usize;
                                let src = linear * wd;
                                for c in 0..w {
                                    fr.f[dst + c * LANES + l] = data[src + c];
                                }
                            });
                        }
                    } else {
                        let idx = [(o0 as u32, false), (o1 as u32, false)];
                        tier_loop!(m, l, {
                            let src = gather_linear(fr, &idx, shape, l) * *width as usize;
                            for c in 0..w {
                                fr.f[dst + c * LANES + l] = data[src + c];
                            }
                        });
                    }
                });
            }
            let idx = idx.clone();
            Box::new(move |fr| {
                let m = fr.m;
                let bindings = fr.bindings;
                let Binding::Gather { data, shape, width } = &bindings[param] else {
                    unreachable!("gather binding validated at dispatch");
                };
                if proven
                    .as_ref()
                    .is_some_and(|p| crate::eval::proven_fits_dyn(p, shape, fr.comp_max))
                {
                    tier_loop!(m, l, {
                        let src = gather_linear_unclamped(fr, &idx, shape, l) * *width as usize;
                        for c in 0..w {
                            fr.f[dst + c * LANES + l] = data[src + c];
                        }
                    });
                } else {
                    tier_loop!(m, l, {
                        let src = gather_linear(fr, &idx, shape, l) * *width as usize;
                        for c in 0..w {
                            fr.f[dst + c * LANES + l] = data[src + c];
                        }
                    });
                }
            })
        }
        Op::Indexof { dst, slot } => {
            let (d, slot) = (*dst as usize, *slot as usize);
            Box::new(move |fr| {
                let m = fr.m;
                let v = fr.idx_vals[slot];
                tier_loop!(m, l, {
                    fr.f[d + l] = v[l][0];
                    fr.f[d + LANES + l] = v[l][1];
                });
            })
        }
        Op::Dot { .. } | Op::Length { .. } | Op::Normalize { .. } | Op::Ret | Op::Bail => {
            unreachable!("rejected at tier admission / handled structurally")
        }
    }
}

// ---------------------------------------------------------------------------
// The superword peephole.
// ---------------------------------------------------------------------------

/// Component-range overlap between two slab operands (`a` spanning
/// `aw` components, `b` spanning `bw`). Offsets are in `f32` units.
fn overlaps(a: u32, aw: usize, b: u32, bw: usize) -> bool {
    (a as usize) < b as usize + bw * LANES && (b as usize) < a as usize + aw * LANES
}

/// An op2 float operand is safe under fusion when it either names
/// op1's destination base exactly (served from the in-register `t`, or
/// a broadcast of the already-stored component 0) or does not overlap
/// op1's destination range at all.
fn operand_ok(off: u32, bcast: bool, d1: u32, w: usize) -> bool {
    off == d1 || !overlaps(off, if bcast { 1 } else { w }, d1, w)
}

/// Tries to fuse two adjacent (post-hoist) ops into one closure.
/// Every pattern preserves the lane engine's exact evaluation order
/// per `(component, lane)` — operand positions are kept, so even NaN
/// payload propagation is bit-identical.
#[allow(clippy::too_many_lines)]
fn try_fuse(o1: &Op, o2: &Op, level: SimdLevel) -> Option<Step> {
    match (o1, o2) {
        // arith -> arith (the mul+add family).
        (
            Op::ArithF {
                op: op1,
                dst: d1,
                w: w1,
                a: a1,
                ab: ab1,
                b: b1,
                bb: bb1,
            },
            Op::ArithF {
                op: op2,
                dst: d2,
                w: w2,
                a: a2,
                ab: ab2,
                b: b2,
                bb: bb2,
            },
        ) if w1 == w2 && (*a2 == *d1 || *b2 == *d1) => {
            let w = *w1 as usize;
            let aw1 = if *ab1 { 1 } else { w };
            let bw1 = if *bb1 { 1 } else { w };
            let safe = operand_ok(*a2, *ab2, *d1, w)
                && operand_ok(*b2, *bb2, *d1, w)
                && (w == 1
                    || (!overlaps(*d2, w, *d1, w)
                        && !overlaps(*d2, w, *a1, aw1)
                        && !overlaps(*d2, w, *b1, bw1)));
            if !safe {
                return None;
            }
            let p = ZipZip {
                w,
                a1: *a1 as usize,
                ab1: *ab1,
                b1: *b1 as usize,
                bb1: *bb1,
                d1: *d1 as usize,
                a2: *a2 as usize,
                ab2: *ab2,
                b2: *b2 as usize,
                bb2: *bb2,
                d2: *d2 as usize,
                ta: *a2 == *d1 && !*ab2,
                tb: *b2 == *d1 && !*bb2,
            };
            if level != SimdLevel::Scalar {
                if let (Some(v1), Some(v2)) = (vf_of(*op1), vf_of(*op2)) {
                    return Some(simd_fuse_ff(level, v1, v2, p));
                }
            }
            Some(with_fop!(*op1, g1, with_fop!(*op2, g2, fuse_ff(g1, g2, p))))
        }
        // scalar arith -> compare.
        (
            Op::ArithF {
                op: op1,
                dst: d1,
                w: 1,
                a: a1,
                b: b1,
                ..
            },
            Op::CmpF {
                op: op2,
                dst: d2,
                a: a2,
                b: b2,
            },
        ) if *a2 == *d1 || *b2 == *d1 => {
            let p = FCmp {
                a1: *a1 as usize,
                b1: *b1 as usize,
                d1: *d1 as usize,
                a2: *a2 as usize,
                b2: *b2 as usize,
                d2: *d2 as usize,
                ta: *a2 == *d1,
                tb: *b2 == *d1,
            };
            if level != SimdLevel::Scalar {
                if let Some(v1) = vf_of(*op1) {
                    let cop = *op2;
                    let q = simd::FusedFC {
                        x1: p.a1,
                        y1: p.b1,
                        d1: p.d1,
                        x2: p.a2,
                        y2: p.b2,
                        ta: p.ta,
                        tb: p.tb,
                    };
                    return Some(Box::new(move |fr| {
                        let m = fr.m;
                        let bits = simd::vf_fused_fc(level, v1, cop, fr.f, q, m);
                        fr.b[p.d2] = (fr.b[p.d2] & !m) | (bits & m);
                    }));
                }
            }
            Some(with_fop!(*op1, g1, with_cop!(*op2, g2, fuse_fc(g1, g2, p))))
        }
        // compare -> select (the ternary).
        (
            Op::CmpF {
                op: op1,
                dst: d1,
                a: a1,
                b: b1,
            },
            Op::SelF {
                dst: d2,
                cond,
                a: a2,
                b: b2,
                w,
            },
        ) if *cond == *d1 => {
            let p = CSel {
                a1: *a1 as usize,
                b1: *b1 as usize,
                d1: *d1 as usize,
                a2: *a2 as usize,
                b2: *b2 as usize,
                d2: *d2 as usize,
                w: *w as usize,
            };
            if level != SimdLevel::Scalar {
                let cop = *op1;
                return Some(Box::new(move |fr| {
                    let m = fr.m;
                    let bits = simd::vf_cmp(level, cop, fr.f, p.a1, p.b1);
                    fr.b[p.d1] = (fr.b[p.d1] & !m) | (bits & m);
                    for c in 0..p.w {
                        let cl = c * LANES;
                        simd::vf_sel(level, fr.f, p.d2 + cl, p.a2 + cl, p.b2 + cl, bits, m);
                    }
                }));
            }
            Some(with_cop!(*op1, g1, fuse_cs(g1, p)))
        }
        // elementwise fetch -> arith.
        (
            Op::ReadElem { dst: d1, w: w1, slot },
            Op::ArithF {
                op: op2,
                dst: d2,
                w: w2,
                a: a2,
                ab: ab2,
                b: b2,
                bb: bb2,
            },
        ) if w1 == w2 && (*a2 == *d1 || *b2 == *d1) => {
            let w = *w1 as usize;
            let safe = operand_ok(*a2, *ab2, *d1, w)
                && operand_ok(*b2, *bb2, *d1, w)
                && (w == 1 || !overlaps(*d2, w, *d1, w));
            if !safe {
                return None;
            }
            let p = EZip {
                slot: *slot as usize,
                d1: *d1 as usize,
                w,
                a2: *a2 as usize,
                ab2: *ab2,
                b2: *b2 as usize,
                bb2: *bb2,
                d2: *d2 as usize,
                ta: *a2 == *d1 && !*ab2,
                tb: *b2 == *d1 && !*bb2,
            };
            if level != SimdLevel::Scalar {
                if let Some(v2) = vf_of(*op2) {
                    return Some(simd_fuse_ra(level, v2, p));
                }
            }
            Some(with_fop!(*op2, g2, fuse_ra(g2, p)))
        }
        // gather -> arith (both scalar-width).
        (
            Op::Gather {
                dst: d1,
                w: 1,
                param,
                idx,
                proven,
            },
            Op::ArithF {
                op: op2,
                dst: d2,
                w: 1,
                a: a2,
                b: b2,
                ..
            },
        ) if *a2 == *d1 || *b2 == *d1 => {
            let p = GZip {
                param: *param as usize,
                d1: *d1 as usize,
                a2: *a2 as usize,
                b2: *b2 as usize,
                d2: *d2 as usize,
                ta: *a2 == *d1,
                tb: *b2 == *d1,
            };
            if level != SimdLevel::Scalar {
                if let Some(v2) = vf_of(*op2) {
                    return Some(simd_fuse_ga(level, v2, p, idx.clone(), proven.clone()));
                }
            }
            Some(with_fop!(*op2, g2, fuse_ga(g2, p, idx.clone(), proven.clone())))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Compilation: admission, hoisting, chain construction.
// ---------------------------------------------------------------------------

/// Tier-compiles a lane-admitted kernel into its closure chain, or
/// explains why it must stay on the lane engine. Admission is
/// conservative in the same spirit as the lane planner: anything the
/// closure model does not cover is rejected, not approximated.
///
/// # Errors
/// A human-readable rejection reason (recorded in the compliance
/// report's tier-plan table).
pub fn compile(lane: &LaneKernel, kernel: &IrKernel) -> Result<TierKernel, String> {
    compile_simd(lane, kernel, None, simd::auto())
}

/// [`compile`] with optional analyzer facts: a statically planned
/// fault site (`Op::Bail`) whose originating instruction the abstract
/// interpreter proved unreachable no longer rejects the kernel — it
/// compiles to a `debug_assert!(false)` no-op step that aborts loudly
/// in tests if the proof was wrong.
///
/// # Errors
/// A human-readable rejection reason (recorded in the compliance
/// report's tier-plan table).
pub fn compile_with_facts(
    lane: &LaneKernel,
    kernel: &IrKernel,
    facts: Option<&crate::KernelFacts>,
) -> Result<TierKernel, String> {
    compile_simd(lane, kernel, facts, simd::auto())
}

/// [`compile_with_facts`] at an explicit SIMD level: steps whose
/// scalar loop bodies have hand-written vector kernels dispatch into
/// [`crate::simd`] (bit-exact by construction — no FMA contraction,
/// operand order preserved, masked stores reproduce the scalar write
/// set); every other step keeps its verbatim scalar closure. The
/// level is capped at what the host actually supports.
///
/// # Errors
/// A human-readable rejection reason (recorded in the compliance
/// report's tier-plan table).
pub fn compile_simd(
    lane: &LaneKernel,
    kernel: &IrKernel,
    facts: Option<&crate::KernelFacts>,
    level: SimdLevel,
) -> Result<TierKernel, String> {
    let level = level.min(simd::detect());
    for (i, op) in lane.ops.iter().enumerate() {
        match op {
            Op::Bail => {
                // `op_start` maps pcs to op ranges; recover the pc that
                // produced op `i` to consult the reachability fact.
                let pc = lane
                    .op_start
                    .partition_point(|&s| s as usize <= i)
                    .saturating_sub(1);
                let unreachable = facts.is_some_and(|f| f.is_unreachable(pc));
                if !unreachable {
                    return Err(
                        "contains a statically planned fault site (scalar semantics required)".into(),
                    );
                }
            }
            Op::Dot { .. } | Op::Length { .. } | Op::Normalize { .. } => {
                return Err("cross-component reduction (dot/length/normalize) is not closure-threaded".into())
            }
            _ => {}
        }
    }
    let (hoisted, order) = hoist_plan(lane);
    let prologue: Vec<Step> = order.iter().map(|i| step_for(&lane.ops[*i], level)).collect();
    let mut fused = 0usize;
    let mut steps = 0usize;
    let chain = build_nodes(&kernel.body, lane, &hoisted, &mut fused, &mut steps, level);
    Ok(TierKernel {
        prologue,
        chain,
        ops_in: lane.ops.len(),
        steps,
        fused,
        hoisted: order.len(),
        level,
    })
}

fn build_nodes(
    nodes: &[Node],
    lane: &LaneKernel,
    hoisted: &[bool],
    fused: &mut usize,
    steps: &mut usize,
    level: SimdLevel,
) -> Vec<TNode> {
    let mut out = Vec::new();
    for n in nodes {
        match n {
            Node::Seq { start, end } => {
                build_seq(*start, *end, lane, hoisted, fused, steps, level, &mut out);
            }
            Node::If { cond, then, els, .. } => out.push(TNode::If {
                cond: lane.cond_off[*cond as usize] as usize,
                then: build_nodes(then, lane, hoisted, fused, steps, level),
                els: build_nodes(els, lane, hoisted, fused, steps, level),
            }),
            Node::Loop(l) => out.push(TNode::Loop {
                dowhile: l.kind == LoopKind::DoWhile,
                cond: lane.cond_off[l.cond as usize] as usize,
                header: build_nodes(&l.header, lane, hoisted, fused, steps, level),
                body: build_nodes(&l.body, lane, hoisted, fused, steps, level),
            }),
        }
    }
    out
}

/// Compiles one straight-line instruction region: hoisted ops are
/// skipped (they run in the prologue), adjacent dependent pairs fuse,
/// a kernel-level `return` truncates the region (the lane engine
/// skips the remainder too).
#[allow(clippy::too_many_arguments)]
fn build_seq(
    start: u32,
    end: u32,
    lane: &LaneKernel,
    hoisted: &[bool],
    fused: &mut usize,
    steps: &mut usize,
    level: SimdLevel,
    out: &mut Vec<TNode>,
) {
    let lo = lane.op_start[start as usize] as usize;
    let hi = lane.op_start[end as usize] as usize;
    let idxs: Vec<usize> = (lo..hi).filter(|i| !hoisted[*i]).collect();
    let mut cur: Vec<Step> = Vec::new();
    let mut k = 0usize;
    while k < idxs.len() {
        let op = &lane.ops[idxs[k]];
        if matches!(op, Op::Ret) {
            if !cur.is_empty() {
                *steps += cur.len();
                out.push(TNode::Straight(std::mem::take(&mut cur)));
            }
            out.push(TNode::Ret);
            return;
        }
        if matches!(op, Op::Bail) {
            // Admitted only when the analyzer proved the site
            // unreachable (`compile_with_facts`): a no-op that aborts
            // loudly in tests if the proof was wrong.
            cur.push(Box::new(|_fr| {
                debug_assert!(false, "proven-unreachable fault site executed — analyzer bug");
            }));
            k += 1;
            continue;
        }
        if k + 1 < idxs.len() {
            if let Some(st) = try_fuse(op, &lane.ops[idxs[k + 1]], level) {
                cur.push(st);
                *fused += 1;
                k += 2;
                continue;
            }
        }
        cur.push(step_for(op, level));
        k += 1;
    }
    if !cur.is_empty() {
        *steps += cur.len();
        out.push(TNode::Straight(cur));
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Internal signal: abandon the current block and re-run it through
/// the lane engine (which reproduces the scalar fault surface).
struct BailOut;

fn bump_iters(fr: &mut Frame<'_>, m: Mask) -> Result<(), BailOut> {
    let mut mm = m;
    while mm != 0 {
        let l = mm.trailing_zeros() as usize;
        fr.iters[l] += 1;
        if u64::from(fr.iters[l]) > MAX_ITERATIONS {
            return Err(BailOut);
        }
        mm &= mm - 1;
    }
    Ok(())
}

fn exec_chain(fr: &mut Frame<'_>, nodes: &[TNode], mask: Mask) -> Result<(), BailOut> {
    for n in nodes {
        let m = mask & !fr.dead;
        if m == 0 {
            return Ok(());
        }
        match n {
            TNode::Straight(steps) => {
                fr.m = m;
                for s in steps {
                    s(fr);
                }
            }
            TNode::Ret => {
                fr.dead |= m;
            }
            TNode::If { cond, then, els } => {
                let cb = fr.b[*cond];
                let tm = m & cb;
                let em = m & !cb;
                if tm != 0 {
                    exec_chain(fr, then, tm)?;
                }
                if em != 0 {
                    exec_chain(fr, els, em)?;
                }
            }
            TNode::Loop {
                dowhile,
                cond,
                header,
                body,
            } => {
                exec_tier_loop(fr, *dowhile, *cond, header, body, m)?;
            }
        }
    }
    Ok(())
}

fn exec_tier_loop(
    fr: &mut Frame<'_>,
    dowhile: bool,
    cond: usize,
    header: &[TNode],
    body: &[TNode],
    mask: Mask,
) -> Result<(), BailOut> {
    let mut active = mask;
    if dowhile {
        loop {
            active &= !fr.dead;
            if active == 0 {
                return Ok(());
            }
            exec_chain(fr, body, active)?;
            active &= !fr.dead;
            if active == 0 {
                return Ok(());
            }
            exec_chain(fr, header, active)?;
            active &= !fr.dead & fr.b[cond];
            if active == 0 {
                return Ok(());
            }
            bump_iters(fr, active)?;
        }
    }
    loop {
        active &= !fr.dead;
        if active == 0 {
            return Ok(());
        }
        exec_chain(fr, header, active)?;
        active &= !fr.dead & fr.b[cond];
        if active == 0 {
            return Ok(());
        }
        exec_chain(fr, body, active)?;
        active &= !fr.dead;
        if active != 0 {
            bump_iters(fr, active)?;
        }
    }
}

/// Runs a tier-compiled kernel over a contiguous partition of its
/// output domain — the drop-in counterpart of
/// [`crate::lanes::run_kernel_range`], bit-exact with it (and with the
/// scalar interpreter) for both results and faults. Bindings the plan
/// cannot model and faulting blocks transparently execute through the
/// lane engine, which itself falls back to the scalar interpreter.
///
/// # Errors
/// Exactly the scalar interpreter's faults, with element attribution.
pub fn run_kernel_range(
    tier: &TierKernel,
    lane: &LaneKernel,
    kernel: &IrKernel,
    bindings: &[Binding<'_>],
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<(), ExecError> {
    let mut slabs = LaneSlabs::new();
    run_kernel_range_in(
        &mut slabs,
        tier,
        lane,
        kernel,
        bindings,
        outputs,
        domain_shape,
        range,
    )
}

/// [`run_kernel_range`] with caller-owned slab storage, for the
/// parallel backend's per-worker frame reuse.
///
/// # Errors
/// Exactly the scalar interpreter's faults, with element attribution.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_kernel_range_in(
    slabs: &mut LaneSlabs,
    tier: &TierKernel,
    lane: &LaneKernel,
    kernel: &IrKernel,
    bindings: &[Binding<'_>],
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<(), ExecError> {
    let (dx, dy, linear) = domain_extents(domain_shape);
    debug_assert!(range.end <= dx * dy, "domain range exceeds the domain");
    // Binding validation mirrors the lane engine; anything unexpected
    // runs the whole range through the lane engine, which owns the
    // fallback surface from there.
    macro_rules! lane_fallback {
        () => {
            return lanes::run_kernel_range_in(slabs, lane, kernel, bindings, outputs, domain_shape, range)
        };
    }
    let mut out_buf = Vec::with_capacity(kernel.outputs.len());
    for (slot, _) in kernel.output_params() {
        match &bindings[kernel.outputs[slot as usize] as usize] {
            Binding::Out(i) => out_buf.push(*i),
            _ => lane_fallback!(),
        }
    }
    let mut buf_width: Vec<Option<usize>> = vec![None; outputs.len()];
    for (slot, bi) in out_buf.iter().enumerate() {
        buf_width[*bi] = Some(lane.out_w[slot] as usize);
    }
    let mut elem_data = Vec::with_capacity(lane.elem_params.len());
    let mut elem_shapes = Vec::with_capacity(lane.elem_params.len());
    for (pi, w) in &lane.elem_params {
        match &bindings[*pi as usize] {
            Binding::Elem { data, shape, width } if width == w => {
                elem_data.push(*data);
                elem_shapes.push(*shape);
            }
            _ => lane_fallback!(),
        }
    }
    let mut scalar_f = vec![[0.0f32; 4]; lane.scalar_params.len()];
    let mut scalar_i = vec![0i32; lane.scalar_params.len()];
    for (slot, (pi, ty)) in lane.scalar_params.iter().enumerate() {
        match &bindings[*pi as usize] {
            Binding::Scalar(v) if LaneTy::of_value(v) == *ty => match v {
                Value::Int(x) => scalar_i[slot] = *x,
                other => {
                    scalar_f[slot][..other.lanes().len()].copy_from_slice(other.lanes());
                }
            },
            _ => lane_fallback!(),
        }
    }
    for (pi, w) in &lane.gather_params {
        match &bindings[*pi as usize] {
            Binding::Gather { width, .. } if width == w => {}
            _ => lane_fallback!(),
        }
    }
    for pi in &lane.indexof_params {
        if matches!(&bindings[*pi as usize], Binding::Gather { .. }) {
            lane_fallback!();
        }
    }
    slabs.prepare(lane);
    let mut fr = Frame {
        bindings,
        f: slabs.f.as_mut_slice(),
        i: slabs.i.as_mut_slice(),
        b: &mut slabs.b,
        m: FULL,
        dead: 0,
        iters: [0; LANES],
        elem_data,
        elem_off: vec![[0; LANES]; lane.elem_params.len()],
        scalar_f,
        scalar_i,
        idx_vals: vec![[[0.0; 2]; LANES]; lane.indexof_params.len()],
        comp_max: crate::eval::indexof_comp_max((dx, dy), linear),
    };
    // The uniform prologue: hoisted dispatch-invariant steps, once,
    // at full mask (every lane of every block reads the same value).
    for s in &tier.prologue {
        s(&mut fr);
    }
    let mut base = range.start;
    while base < range.end {
        let n = (range.end - base).min(LANES);
        let mask: Mask = if n == LANES { FULL } else { (1u32 << n) - 1 };
        fr.dead = 0;
        fr.iters = [0; LANES];
        for (si, shape) in elem_shapes.iter().enumerate() {
            let cols = if shape.len() == 2 {
                shape[1]
            } else {
                shape.iter().product()
            };
            let width = lane.elem_params[si].1 as usize;
            for l in 0..n {
                let p = base + l;
                let (ix, iy) = input_index((p % dx, p / dx), (dx, dy), shape);
                fr.elem_off[si][l] = (iy * cols + ix) * width;
            }
        }
        for (si, pi) in lane.indexof_params.iter().enumerate() {
            for l in 0..n {
                let p = base + l;
                let pos = (p % dx, p / dx);
                fr.idx_vals[si][l] = match &bindings[*pi as usize] {
                    Binding::Elem { shape, .. } => indexof_elem(pos, (dx, dy), shape),
                    Binding::Out(_) | Binding::Scalar(_) => indexof_pos(pos, (dx, dy), linear),
                    Binding::Gather { .. } => unreachable!("validated above"),
                };
            }
        }
        for (slot, bi) in out_buf.iter().enumerate() {
            if !lane.out_preload[slot] {
                continue;
            }
            let w = lane.out_w[slot] as usize;
            let off = lane.out_off[slot] as usize;
            let buf = &outputs[*bi];
            for l in 0..n {
                let src = (base + l - range.start) * w;
                for c in 0..w {
                    fr.f[off + c * LANES + l] = buf[src + c];
                }
            }
        }
        match exec_chain(&mut fr, &tier.chain, mask) {
            Ok(()) => {
                for (slot, bi) in out_buf.iter().enumerate() {
                    let w = lane.out_w[slot] as usize;
                    let off = lane.out_off[slot] as usize;
                    let buf = &mut outputs[*bi];
                    for l in 0..n {
                        let dst = (base + l - range.start) * w;
                        for c in 0..w {
                            buf[dst + c] = fr.f[off + c * LANES + l];
                        }
                    }
                }
            }
            Err(BailOut) => {
                // Re-run exactly this block through the lane engine:
                // it reproduces the scalar path's partial writes, fault
                // choice, element attribution and span verbatim (its
                // own bail re-runs the block scalar). No staged tier
                // write has touched the real buffers.
                let mut slices: Vec<&mut [f32]> = Vec::with_capacity(outputs.len());
                for (bi, out) in outputs.iter_mut().enumerate() {
                    match buf_width[bi] {
                        Some(w) => {
                            let s = (base - range.start) * w;
                            slices.push(&mut out[s..s + n * w]);
                        }
                        None => slices.push(&mut out[0..0]),
                    }
                }
                lanes::run_kernel_range(lane, kernel, bindings, &mut slices, domain_shape, base..base + n)?;
            }
        }
        base += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::plan;
    use crate::lower::lower_kernel;
    use crate::ParamKind;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    fn tier_of(kernel: &IrKernel) -> (LaneKernel, TierKernel) {
        let lane = plan(kernel).expect("lane plan");
        let tier = compile(&lane, kernel).expect("tier compile");
        (lane, tier)
    }

    /// Runs a 1-input/1-output kernel over a 1-D domain on the scalar
    /// interpreter, the lane engine and Tier-2 and returns all three.
    #[allow(clippy::type_complexity)]
    fn run_three(
        kernel: &IrKernel,
        input: &[f32],
        n: usize,
    ) -> (
        Result<Vec<f32>, ExecError>,
        Result<Vec<f32>, ExecError>,
        Result<Vec<f32>, ExecError>,
    ) {
        let (lane, tier) = tier_of(kernel);
        let shape = [n];
        let run = |engine: u8| -> Result<Vec<f32>, ExecError> {
            let mut bindings = Vec::new();
            let mut n_outs = 0usize;
            for p in &kernel.params {
                match p.kind {
                    ParamKind::Stream => bindings.push(Binding::Elem {
                        data: input,
                        shape: &shape,
                        width: 1,
                    }),
                    ParamKind::OutStream => {
                        bindings.push(Binding::Out(n_outs));
                        n_outs += 1;
                    }
                    _ => panic!("run_three supports stream params only"),
                }
            }
            let mut buf = vec![0.0f32; n];
            {
                let mut outs: Vec<&mut [f32]> = vec![&mut buf];
                match engine {
                    0 => crate::interp::run_kernel_range(kernel, &bindings, &mut outs, &shape, 0..n)?,
                    1 => lanes::run_kernel_range(&lane, kernel, &bindings, &mut outs, &shape, 0..n)?,
                    _ => run_kernel_range(&tier, &lane, kernel, &bindings, &mut outs, &shape, 0..n)?,
                }
            }
            Ok(buf)
        };
        (run(0), run(1), run(2))
    }

    fn assert_bit_exact(src: &str, input_of: impl Fn(usize) -> f32, sizes: &[usize]) {
        let k = lower_src(src);
        for &n in sizes {
            let input: Vec<f32> = (0..n).map(&input_of).collect();
            let (scalar, lanes, tier) = run_three(&k, &input, n);
            let scalar = scalar.expect("scalar");
            let lanes = lanes.expect("lanes");
            let tier = tier.expect("tier");
            for i in 0..n {
                assert_eq!(
                    scalar[i].to_bits(),
                    tier[i].to_bits(),
                    "n={n} element {i}: scalar {} vs tier {}\n{src}",
                    scalar[i],
                    tier[i]
                );
                assert_eq!(
                    lanes[i].to_bits(),
                    tier[i].to_bits(),
                    "n={n} element {i} vs lanes"
                );
            }
        }
    }

    #[test]
    fn straight_line_matches_scalar_at_every_remainder() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a * 2.5 + sin(a) - sqrt(abs(a)); }",
            |i| i as f32 * 0.37 - 3.0,
            &[1, LANES - 1, LANES, LANES + 1, 2 * LANES + 1, 97],
        );
    }

    #[test]
    fn divergent_branch_and_loop_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 12; i++) {
                    if (s < a) { s += 1.5; } else { s -= 0.25; }
                }
                if (a > 4.0) { o = s * 2.0; return; }
                o = s;
            }",
            |i| (i as f32 * 1.7) % 9.0,
            &[LANES, 2 * LANES + 1, 61],
        );
    }

    #[test]
    fn data_dependent_while_loop_matches_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float s = a;
                while (s < 20.0) { s = s * 1.5 + 1.0; }
                o = s;
            }",
            |i| (i % 19) as f32,
            &[LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn ternary_select_matches_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a > 2.0 ? a * 3.0 : a - 1.0; }",
            |i| i as f32 * 0.5,
            &[1, LANES, LANES + 1, 2 * LANES + 1],
        );
    }

    #[test]
    fn int_arithmetic_and_casts_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                int i = int(a);
                int j = i * 3 - 7;
                int k = j / (i + 2) + j % 5;
                o = float(k) + a;
            }",
            |i| i as f32 * 0.9 - 4.0,
            &[LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn compound_output_writes_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a; o += 2.0; o *= a + 1.0; }",
            |i| i as f32 * 0.21,
            &[LANES - 1, LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn vectors_and_swizzles_match_scalar() {
        // No dot/length/normalize — those are tier-rejected; this stays
        // on the vector copy/splat/arith surface the closures cover.
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float4 v = float4(a, a + 1.0, a * 2.0, 4.0);
                v.xy += float2(0.5, 0.25);
                float c = clamp(a, 0.25, 3.5) + lerp(1.0, 2.0, fract(a));
                o = v.x + v.y * 10.0 + v.z * 100.0 + v.w + c;
            }",
            |i| i as f32 * 0.61 - 2.0,
            &[LANES, LANES + 1, 53],
        );
    }

    #[test]
    fn superword_pass_fuses_mul_add_chains() {
        let k = lower_src("kernel void f(float a<>, out float o<>) { o = a * 2.5 + 1.25; }");
        let (_, tier) = tier_of(&k);
        assert!(tier.fused_pairs() >= 1, "expected fusion, got {tier:?}");
        assert!(tier.detail().contains("fused"), "{}", tier.detail());
    }

    #[test]
    fn uniform_scalar_subchain_is_hoisted_and_bit_exact() {
        // `k * 2.0 + 1.0` depends only on the scalar parameter: it must
        // move to the once-per-dispatch prologue and still match the
        // scalar interpreter bitwise.
        let k = lower_src("kernel void f(float a<>, float k, out float o<>) { o = a + (k * 2.0 + 1.0); }");
        let (lane, tier) = tier_of(&k);
        assert!(tier.hoisted_uniform() >= 1, "expected hoisting, got {tier:?}");
        let n = 2 * LANES + 3;
        let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.3).collect();
        let shape = [n];
        let bindings = vec![
            Binding::Elem {
                data: &input,
                shape: &shape,
                width: 1,
            },
            Binding::Scalar(Value::Float(1.75)),
            Binding::Out(0),
        ];
        let mut sbuf = vec![0.0f32; n];
        let mut tbuf = vec![0.0f32; n];
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut sbuf];
            crate::interp::run_kernel_range(&k, &bindings, &mut outs, &shape, 0..n).expect("scalar");
        }
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut tbuf];
            run_kernel_range(&tier, &lane, &k, &bindings, &mut outs, &shape, 0..n).expect("tier");
        }
        for i in 0..n {
            assert_eq!(sbuf[i].to_bits(), tbuf[i].to_bits(), "element {i}");
        }
    }

    #[test]
    fn gather_kernel_matches_scalar_bitwise() {
        let k = lower_src("kernel void f(float a<>, float t[], out float o<>) { o = t[a] * 2.0 + a; }");
        let (lane, tier) = tier_of(&k);
        let n = 2 * LANES + 5;
        let input: Vec<f32> = (0..n).map(|i| (i % 11) as f32).collect();
        let table: Vec<f32> = (0..11).map(|i| i as f32 * 1.5 - 3.0).collect();
        let shape = [n];
        let tshape = [table.len()];
        let bindings = vec![
            Binding::Elem {
                data: &input,
                shape: &shape,
                width: 1,
            },
            Binding::Gather {
                data: &table,
                shape: &tshape,
                width: 1,
            },
            Binding::Out(0),
        ];
        let mut sbuf = vec![0.0f32; n];
        let mut tbuf = vec![0.0f32; n];
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut sbuf];
            crate::interp::run_kernel_range(&k, &bindings, &mut outs, &shape, 0..n).expect("scalar");
        }
        {
            let mut outs: Vec<&mut [f32]> = vec![&mut tbuf];
            run_kernel_range(&tier, &lane, &k, &bindings, &mut outs, &shape, 0..n).expect("tier");
        }
        for i in 0..n {
            assert_eq!(sbuf[i].to_bits(), tbuf[i].to_bits(), "element {i}");
        }
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let k = lower_src("kernel void f(float a<>, out float o<>) { o = a; }");
        let (lane, tier) = tier_of(&k);
        let shape = [4usize];
        let bindings = vec![
            Binding::Elem {
                data: &[1.0, 2.0, 3.0, 4.0],
                shape: &shape,
                width: 1,
            },
            Binding::Out(0),
        ];
        let mut buf = vec![7.0f32; 0];
        let mut outs: Vec<&mut [f32]> = vec![&mut buf];
        run_kernel_range(&tier, &lane, &k, &bindings, &mut outs, &shape, 0..0).expect("empty range");
    }

    /// Shared driver for the fault-provenance matrix: runs the budget
    /// fault with the bad element at `bad` of `n` and asserts the tier
    /// fault is the scalar and lane fault verbatim.
    fn assert_budget_fault_verbatim(n: usize, bad: usize) {
        let src = "kernel void f(float a<>, out float o<>) {\n    float s = a;\n    while (s > 0.5) { s = s + 0.0; }\n    o = s;\n}";
        let k = lower_src(src);
        let input: Vec<f32> = (0..n).map(|i| if i == bad { 1.0 } else { 0.0 }).collect();
        let (scalar, lanes, tier) = run_three(&k, &input, n);
        let se = scalar.expect_err("scalar faults");
        let le = lanes.expect_err("lanes fault");
        let te = tier.expect_err("tier fault");
        assert_eq!(
            se, te,
            "tier fault must be the scalar fault verbatim (n={n} bad={bad})"
        );
        assert_eq!(
            le, te,
            "tier fault must be the lane fault verbatim (n={n} bad={bad})"
        );
        assert_eq!(te.element, Some(bad));
        assert_eq!(te.span.line, 3);
        assert!(te.render().contains(&format!("element {bad}")), "{}", te.render());
    }

    #[test]
    fn budget_fault_in_first_lane_matches_scalar_exactly() {
        assert_budget_fault_verbatim(LANES + 7, 0);
    }

    #[test]
    fn budget_fault_in_last_lane_matches_scalar_exactly() {
        assert_budget_fault_verbatim(LANES + 7, LANES + 6);
    }

    #[test]
    fn budget_fault_in_lone_lane_matches_scalar_exactly() {
        assert_budget_fault_verbatim(1, 0);
    }

    #[test]
    fn budget_fault_mid_block_matches_scalar_exactly() {
        assert_budget_fault_verbatim(LANES + 7, LANES + 3);
    }

    #[test]
    fn fault_in_block_preserves_scalar_partial_writes() {
        let src = "kernel void f(float a<>, out float o<>) {
            o = a * 2.0;
            float s = a;
            while (s > 0.5) { s = s + 0.0; }
        }";
        let k = lower_src(src);
        let (lane, tier) = tier_of(&k);
        let n = LANES;
        let bad = 5;
        let input: Vec<f32> = (0..n)
            .map(|i| if i == bad { 1.0 } else { 0.1 * i as f32 })
            .collect();
        let shape = [n];
        let run = |use_tier: bool| -> (Vec<f32>, ExecError) {
            let bindings = vec![
                Binding::Elem {
                    data: &input,
                    shape: &shape,
                    width: 1,
                },
                Binding::Out(0),
            ];
            let mut buf = vec![0.0f32; n];
            let err = {
                let mut outs: Vec<&mut [f32]> = vec![&mut buf];
                if use_tier {
                    run_kernel_range(&tier, &lane, &k, &bindings, &mut outs, &shape, 0..n).expect_err("fault")
                } else {
                    crate::interp::run_kernel_range(&k, &bindings, &mut outs, &shape, 0..n)
                        .expect_err("fault")
                }
            };
            (buf, err)
        };
        let (sbuf, serr) = run(false);
        let (tbuf, terr) = run(true);
        assert_eq!(serr, terr);
        assert_eq!(sbuf, tbuf, "partial writes must match the scalar path");
        assert_eq!(serr.element, Some(bad));
    }

    #[test]
    fn tier_rejects_reductions_and_lane_rejects_propagate() {
        let checked = parse_and_check(
            "kernel void ok(float a<>, out float o<>) { o = a + 1.0; }
             kernel void dotted(float a<>, out float o<>) {
                 float2 v = float2(a, a * 0.5);
                 o = dot(v, v) + 1.0;
             }
             reduce void sum(float a<>, reduce float r<>) { r += a; }",
        )
        .expect("front-end");
        let (ir, errs) = crate::lower::lower_program(&checked);
        assert!(errs.is_empty());
        let lanes = LaneProgram::plan_program(&ir);
        let tiers = TierProgram::compile_program(&ir, &lanes);
        assert!(tiers.kernel("ok").is_some());
        assert_eq!(tiers.decision("ok"), Some(Ok(())));
        // Lane-admitted but tier-rejected: the lane engine stays in
        // charge and the report says why.
        assert!(lanes.kernel("dotted").is_some());
        assert!(tiers.kernel("dotted").is_none());
        match tiers.decision("dotted") {
            Some(Err(e)) => assert!(e.contains("reduction"), "{e}"),
            other => panic!("expected tier rejection, got {other:?}"),
        }
        // Lane-rejected: tier records the upstream rejection.
        match tiers.decision("sum") {
            Some(Err(e)) => assert!(e.contains("lane planner"), "{e}"),
            other => panic!("expected propagated rejection, got {other:?}"),
        }
    }
}
