//! Deterministic textual rendering of BrookIR — the `emit_ir()` debug
//! surface, the golden-snapshot format, and the pinned "source" of
//! fused kernels in the stream-graph planner.
//!
//! The format is stable by design (goldens diff against it): one
//! instruction per line as `r<N>: <ty> = <op> ...`, structured regions
//! indented, `Nop`s elided.

use crate::{Inst, IrKernel, IrProgram, LoopKind, Node, Reg};
use brook_lang::ast::{AssignOp, ParamKind};
use brook_lang::builtins::BUILTINS;
use glsl_es::Value;
use std::fmt::Write;

/// Renders a whole program.
pub fn print_program(p: &IrProgram) -> String {
    let mut out = String::new();
    for (i, k) in p.kernels.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_kernel(k));
    }
    out
}

/// Renders one kernel.
pub fn print_kernel(k: &IrKernel) -> String {
    let mut out = String::new();
    let params: Vec<String> = k.params.iter().map(print_param).collect();
    let _ = writeln!(
        out,
        "{} {}({}) {{",
        if k.is_reduce { "reduce kernel" } else { "kernel" },
        k.name,
        params.join(", ")
    );
    if let Some(acc) = k.acc_reg {
        let _ = writeln!(out, "    ; accumulator r{acc}");
    }
    print_nodes(&mut out, k, &k.body, 1);
    out.push_str("}\n");
    out
}

fn print_param(p: &crate::IrParam) -> String {
    match p.kind {
        ParamKind::Stream => format!("{} {}<>", p.ty, p.name),
        ParamKind::OutStream => format!("out {} {}<>", p.ty, p.name),
        ParamKind::ReduceOut => format!("reduce {} {}<>", p.ty, p.name),
        ParamKind::Gather { rank } => {
            format!("{} {}{}", p.ty, p.name, "[]".repeat(rank as usize))
        }
        ParamKind::Scalar => format!("{} {}", p.ty, p.name),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_nodes(out: &mut String, k: &IrKernel, nodes: &[Node], level: usize) {
    for n in nodes {
        match n {
            Node::Seq { start, end } => {
                for i in *start..*end {
                    let inst = &k.insts[i as usize];
                    if matches!(inst, Inst::Nop) {
                        continue;
                    }
                    indent(out, level);
                    let _ = writeln!(out, "{}", print_inst(k, inst));
                }
            }
            Node::If { cond, then, els, .. } => {
                indent(out, level);
                let _ = writeln!(out, "if r{cond} {{");
                print_nodes(out, k, then, level + 1);
                if !els.is_empty() {
                    indent(out, level);
                    let _ = writeln!(out, "}} else {{");
                    print_nodes(out, k, els, level + 1);
                }
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
            Node::Loop(l) => {
                indent(out, level);
                let kind = match l.kind {
                    LoopKind::For => "for",
                    LoopKind::While => "while",
                    LoopKind::DoWhile => "do-while",
                };
                let bound = match l.bound.trips() {
                    Some(t) => format!("bound={t}"),
                    None => "unbounded".to_owned(),
                };
                let _ = writeln!(out, "loop {kind} [{bound}] {{");
                if l.kind == LoopKind::DoWhile {
                    indent(out, level + 1);
                    let _ = writeln!(out, "body:");
                    print_nodes(out, k, &l.body, level + 1);
                    indent(out, level + 1);
                    let _ = writeln!(out, "cond:");
                    print_nodes(out, k, &l.header, level + 1);
                } else {
                    indent(out, level + 1);
                    let _ = writeln!(out, "cond:");
                    print_nodes(out, k, &l.header, level + 1);
                    indent(out, level + 1);
                    let _ = writeln!(out, "body:");
                    print_nodes(out, k, &l.body, level + 1);
                }
                indent(out, level + 1);
                let _ = writeln!(out, "exit unless r{}", l.cond);
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
    }
}

fn print_value(v: &Value) -> String {
    let f = |x: f32| {
        if x == x.trunc() && x.is_finite() && x.abs() < 1e16 {
            format!("{x:.1}")
        } else {
            format!("{x:e}")
        }
    };
    match v {
        Value::Float(x) => f(*x),
        Value::Vec2(l) => format!("float2({}, {})", f(l[0]), f(l[1])),
        Value::Vec3(l) => format!("float3({}, {}, {})", f(l[0]), f(l[1]), f(l[2])),
        Value::Vec4(l) => format!("float4({}, {}, {}, {})", f(l[0]), f(l[1]), f(l[2]), f(l[3])),
        Value::Int(i) => format!("{i}"),
        Value::Bool(b) => format!("{b}"),
    }
}

fn dst(k: &IrKernel, r: Reg) -> String {
    format!("r{r}: {}", k.regs[r as usize])
}

fn op_str(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Assign => "=",
        AssignOp::AddAssign => "+=",
        AssignOp::SubAssign => "-=",
        AssignOp::MulAssign => "*=",
        AssignOp::DivAssign => "/=",
    }
}

fn regs_list(rs: &[Reg]) -> String {
    rs.iter().map(|r| format!("r{r}")).collect::<Vec<_>>().join(", ")
}

fn print_inst(k: &IrKernel, inst: &Inst) -> String {
    match inst {
        Inst::Nop => "nop".into(),
        Inst::Const { dst: d, v } => format!("{} = const {}", dst(k, *d), print_value(v)),
        Inst::Mov { dst: d, src } => format!("{} = r{src}", dst(k, *d)),
        Inst::DeclInit { dst: d, src, ty } => format!("{} = init[{ty}] r{src}", dst(k, *d)),
        Inst::AssignLocal { dst: d, op, src } => format!("r{d} {} r{src}", op_str(*op)),
        Inst::Bin { dst: d, op, lhs, rhs } => format!("{} = r{lhs} {} r{rhs}", dst(k, *d), op.as_str()),
        Inst::Un { dst: d, op, src } => {
            let o = match op {
                brook_lang::ast::UnOp::Neg => "-",
                brook_lang::ast::UnOp::Not => "!",
            };
            format!("{} = {o}r{src}", dst(k, *d))
        }
        Inst::CastInt { dst: d, src } => format!("{} = int(r{src})", dst(k, *d)),
        Inst::Construct { dst: d, width, args } => {
            format!("{} = float{width}({})", dst(k, *d), regs_list(args))
        }
        Inst::Swizzle { dst: d, src, sel } => format!("{} = r{src}.{sel}", dst(k, *d)),
        Inst::SwizzleStore { dst: d, op, src, sel } => {
            format!("r{d}.{sel} {} r{src}", op_str(*op))
        }
        Inst::Builtin { dst: d, which, args } => format!(
            "{} = {}({})",
            dst(k, *d),
            BUILTINS[*which as usize].name,
            regs_list(args)
        ),
        Inst::Select { dst: d, cond, a, b } => {
            format!("{} = select r{cond}, r{a}, r{b}", dst(k, *d))
        }
        Inst::ReadElem { dst: d, param } => {
            format!("{} = elem {}", dst(k, *d), k.params[*param as usize].name)
        }
        Inst::ReadScalar { dst: d, param } => {
            format!("{} = scalar {}", dst(k, *d), k.params[*param as usize].name)
        }
        Inst::ReadOut { dst: d, out } => {
            format!("{} = out {}", dst(k, *d), k.out_param(*out).name)
        }
        Inst::WriteOut { out, op, src } => {
            format!("out {} {} r{src}", k.out_param(*out).name, op_str(*op))
        }
        Inst::Gather {
            dst: d,
            param,
            idx,
            proven,
        } => {
            let mut s = format!(
                "{} = gather {}[{}]",
                dst(k, *d),
                k.params[*param as usize].name,
                regs_list(idx)
            );
            if let Some(p) = proven {
                let dims: Vec<String> = p
                    .iter()
                    .map(|pi| match *pi {
                        crate::ProvenIdx::Const { lo, hi } => format!("{lo}..={hi}"),
                        crate::ProvenIdx::IndexofRel { comp, lo, hi } => {
                            let c = if comp == 0 { "x" } else { "y" };
                            format!("idx.{c}{lo:+}..=idx.{c}{hi:+}")
                        }
                    })
                    .collect();
                s.push_str(&format!("  ; proven in [{}]", dims.join(", ")));
            }
            s
        }
        Inst::Indexof { dst: d, param } => {
            format!("{} = indexof {}", dst(k, *d), k.params[*param as usize].name)
        }
        Inst::Jump { target } => format!("jump @{target}"),
        Inst::BranchIfFalse { cond, target } => format!("branch-if-false r{cond} @{target}"),
        Inst::Ret => "ret".into(),
        Inst::Fail { msg, .. } => format!("fail {msg:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use brook_lang::parse_and_check;

    #[test]
    fn print_is_deterministic_and_structured() {
        let src = "kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 4; i++) { if (a > 0.0) { s += a; } }
            o = s;
        }";
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        let k = lower_kernel(&checked, kdef).expect("lower");
        let a = print_kernel(&k);
        let b = print_kernel(&k);
        assert_eq!(a, b);
        assert!(a.contains("loop for [bound=4]"), "{a}");
        assert!(a.contains("if r"), "{a}");
        assert!(a.contains("out o ="), "{a}");
        assert!(a.starts_with("kernel f(float a<>, out float o<>)"), "{a}");
    }
}
