//! Lane-vectorized BrookIR execution: the flat instruction stream run
//! over **blocks of [`LANES`] elements at once**, GPU-predication style.
//!
//! The scalar interpreter in [`crate::interp`] pays full instruction
//! dispatch (one `match`, `Value` copies, register-frame traffic) per
//! element. Brook kernels are elementwise data-parallel by construction,
//! so the same instruction sequence can execute across a block of
//! elements with registers stored as **structure-of-arrays lane slabs**
//! (`[f32; LANES]` per register component) — amortizing dispatch ~L×
//! and handing rustc contiguous `f32` loops it can autovectorize.
//!
//! Divergent control flow is handled by per-lane execution masks over
//! the structured [`Node`] tree: an `if` splits the mask by its
//! condition bits, a loop keeps iterating while *any* lane remains
//! active (lanes whose condition went false simply drop out of the
//! mask), and a kernel-level `return` retires its lanes for the rest of
//! the element. Loops with uniform statically-deduced bounds never
//! diverge, so they run at full mask through the unmasked fast path.
//!
//! # The fallback guarantee
//!
//! Semantics stay **bit-exact with the scalar interpreter by
//! construction**, through two mechanisms:
//!
//! 1. A conservative vectorizability analysis ([`plan`]) admits a
//!    kernel only when every register has one stable runtime type (so
//!    slabs have a fixed layout), every register is written before it
//!    is read within an element (so lane execution cannot observe the
//!    scalar interpreter's cross-element register reuse), and every
//!    instruction's dynamic semantics (Brook's implicit conversions,
//!    broadcasts, builtin shape rules) resolve statically. Anything
//!    else is rejected with a reason, and the backends run the scalar
//!    [`crate::interp`] path — the rejection is recorded in the
//!    module's `ComplianceReport`.
//! 2. At run time the engine **stages all output writes in lane slabs**
//!    and flushes them only when a block completes. Any fault — a
//!    deliberate [`Inst::Fail`], the iteration budget, an unexpected
//!    binding — discards the staged block and **re-runs exactly that
//!    block through the scalar interpreter**, which reproduces the
//!    scalar path's partial writes, fault message, element attribution
//!    and source span verbatim.
//!
//! The scalar IR interpreter and the AST walker therefore remain the
//! differential oracles; the `lanes` fuzz campaign asserts bitwise
//! agreement on every generated kernel.

use crate::interp::{
    domain_extents, indexof_elem, indexof_pos, input_index, Binding, ExecError, MAX_ITERATIONS,
};
use crate::{AssignOp, BinOp, Inst, IrKernel, LoopKind, Node, UnOp};
use brook_lang::ast::{ParamKind, ScalarKind, Type};
use brook_lang::builtins::BUILTINS;
use glsl_es::Value;
use std::ops::Range;

/// Elements per execution block. 16 lanes keep every register slab
/// inside one or two cache lines per component while giving rustc
/// full-width autovectorization windows.
pub const LANES: usize = 16;

/// A per-lane execution mask (bit `l` = lane `l` active).
pub type Mask = u32;

/// Mask with every lane of a full block active.
pub const FULL: Mask = (1 << LANES) - 1;

/// The element span of lane-engine block `block` within a stream of
/// `len` elements. `block` is taken modulo the stream's block count, so
/// any index maps onto a real span (fault-injection campaigns address
/// corruption targets this way); the final block is truncated to the
/// stream length. Empty streams yield an empty span.
pub fn block_span(block: usize, len: usize) -> Range<usize> {
    if len == 0 {
        return 0..0;
    }
    let blocks = len.div_ceil(LANES);
    let start = (block % blocks) * LANES;
    start..(start + LANES).min(len)
}

/// The stable runtime type of a register, as the planner deduced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneTy {
    /// Float vector of width 1..=4 — an `f32` slab per component.
    F(u8),
    /// Scalar int — an `i32` slab.
    I,
    /// Scalar bool — one mask word.
    B,
}

impl LaneTy {
    pub(crate) fn of_type(t: Type) -> LaneTy {
        match t.scalar {
            ScalarKind::Float => LaneTy::F(t.width.clamp(1, 4)),
            ScalarKind::Int => LaneTy::I,
            ScalarKind::Bool => LaneTy::B,
        }
    }

    pub(crate) fn of_value(v: &Value) -> LaneTy {
        match v {
            Value::Float(_) => LaneTy::F(1),
            Value::Vec2(_) => LaneTy::F(2),
            Value::Vec3(_) => LaneTy::F(3),
            Value::Vec4(_) => LaneTy::F(4),
            Value::Int(_) => LaneTy::I,
            Value::Bool(_) => LaneTy::B,
        }
    }
}

// ---------------------------------------------------------------------------
// Lane ops: the pre-decoded, type-specialized execution form.
// ---------------------------------------------------------------------------

/// Componentwise float arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Brook `%` on floats: `a - b * (a / b).floor()`.
    Rem,
}

/// Wrapping int arithmetic (division by zero yields zero, as in the
/// scalar semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// Scalar comparison, writing a bool slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum COp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Bool-slab logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BOp {
    And,
    Or,
    Eq,
    Ne,
}

/// Componentwise unary builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Un1 {
    Sin,
    Cos,
    Tan,
    Exp,
    Exp2,
    Log,
    Log2,
    Sqrt,
    Rsqrt,
    Abs,
    Floor,
    Ceil,
    Fract,
    Round,
    Sign,
    Saturate,
    /// The smoothstep finisher `v * v * (3 - 2v)`.
    Hermite,
}

/// Componentwise binary builtins (zip semantics with scalar broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bi2 {
    Min,
    Max,
    Pow,
    Fmod,
    /// `step(edge, x)`.
    Step,
    Atan2,
    /// `x * (1 - t)` — the lerp decomposition's left term.
    MulOneMinusB,
    /// `(a / b).clamp(0, 1)` — the smoothstep ramp.
    DivClamp01,
    /// Plain zip `a + b` / `a - b` / `a * b` used by the lerp,
    /// smoothstep and distance decompositions.
    Add2,
    Sub2,
    Mul,
}

/// One pre-decoded lane operation. Offsets index the engine's `f32`
/// slab (`dst`/`src` in units of `f32`, one component = [`LANES`]
/// consecutive entries), the `i32` slab, or the bool-mask slab,
/// according to the op's type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    ConstF {
        dst: u32,
        w: u8,
        v: [f32; 4],
    },
    ConstI {
        dst: u32,
        v: i32,
    },
    ConstB {
        dst: u32,
        v: bool,
    },
    CopyF {
        dst: u32,
        src: u32,
        n: u8,
    },
    CopyI {
        dst: u32,
        src: u32,
    },
    CopyB {
        dst: u32,
        src: u32,
    },
    /// `F(1)` source broadcast into all `w` components.
    SplatF {
        dst: u32,
        w: u8,
        src: u32,
    },
    /// Int source broadcast (as f32) into all `w` components.
    SplatI {
        dst: u32,
        w: u8,
        src: u32,
    },
    /// Int slab -> one float component.
    ItoF {
        dst: u32,
        src: u32,
    },
    /// `F(1)` slab -> int slab (truncating cast).
    FtoI {
        dst: u32,
        src: u32,
    },
    ArithF {
        op: FOp,
        dst: u32,
        w: u8,
        a: u32,
        ab: bool,
        b: u32,
        bb: bool,
    },
    ArithI {
        op: IOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpF {
        op: COp,
        dst: u32,
        a: u32,
        b: u32,
    },
    CmpI {
        op: COp,
        dst: u32,
        a: u32,
        b: u32,
    },
    LogicB {
        op: BOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    NotB {
        dst: u32,
        src: u32,
    },
    NegF {
        dst: u32,
        src: u32,
        w: u8,
    },
    NegI {
        dst: u32,
        src: u32,
    },
    Map1 {
        f: Un1,
        dst: u32,
        src: u32,
        w: u8,
    },
    Map2 {
        f: Bi2,
        dst: u32,
        w: u8,
        a: u32,
        ab: bool,
        b: u32,
        bb: bool,
    },
    Dot {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    Length {
        dst: u32,
        src: u32,
        w: u8,
    },
    Normalize {
        dst: u32,
        src: u32,
        w: u8,
    },
    SelF {
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    SelI {
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
    },
    SelB {
        dst: u32,
        cond: u32,
        a: u32,
        b: u32,
    },
    /// Elementwise stream read; `slot` indexes the plan's `elem_params`.
    ReadElem {
        dst: u32,
        w: u8,
        slot: u16,
    },
    /// Scalar (uniform) broadcast; `slot` indexes `scalar_params`.
    ReadScalarF {
        dst: u32,
        w: u8,
        slot: u16,
    },
    ReadScalarI {
        dst: u32,
        slot: u16,
    },
    /// Random-access gather; `param` is the kernel parameter index and
    /// each index operand is `(offset, is_int)`. `proven` carries the
    /// analyzer's per-dimension in-bounds interval (see
    /// [`crate::Inst::Gather`]); the executor elides the per-lane clamp
    /// when the block's bound shape covers it.
    Gather {
        dst: u32,
        w: u8,
        param: u16,
        idx: Vec<(u32, bool)>,
        proven: Option<Vec<crate::ProvenIdx>>,
    },
    /// `indexof`; `slot` indexes `indexof_params`.
    Indexof {
        dst: u32,
        slot: u16,
    },
    /// Kernel-level `return`: retire the active lanes.
    Ret,
    /// Dynamic situation the lane engine does not model (a deliberate
    /// `Inst::Fail` site): abandon the block and re-run it scalar.
    Bail,
}

// ---------------------------------------------------------------------------
// The compiled plan.
// ---------------------------------------------------------------------------

/// A lane-compiled kernel: the decoded op stream plus the slab layout
/// and the per-parameter access manifest the engine precomputes blocks
/// from. Produced by [`plan`]; executed by [`run_kernel_range`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneKernel {
    pub(crate) ops: Vec<Op>,
    /// `insts[pc]`'s ops live at `ops[op_start[pc]..op_start[pc + 1]]`.
    pub(crate) op_start: Vec<u32>,
    pub(crate) f_len: usize,
    pub(crate) i_len: usize,
    pub(crate) b_len: usize,
    /// Bool-slab offset per register (valid only for `B` registers);
    /// the tree executor reads branch conditions through it.
    pub(crate) cond_off: Vec<u32>,
    /// f-slab staging offset and width per output slot.
    pub(crate) out_off: Vec<u32>,
    pub(crate) out_w: Vec<u8>,
    /// Whether a slot's staging slab must be pre-read from the real
    /// buffer each block: true when the kernel observes current output
    /// values (`ReadOut`, compound `WriteOut`) or may leave lanes
    /// unwritten (conditional write, early return). False — the common
    /// unconditional-overwrite case — skips the pre-read entirely.
    pub(crate) out_preload: Vec<bool>,
    /// Parameters read elementwise (with their planned widths).
    pub(crate) elem_params: Vec<(u16, u8)>,
    /// Parameters used by `indexof`.
    pub(crate) indexof_params: Vec<u16>,
    /// Scalar parameters with their expected runtime types.
    pub(crate) scalar_params: Vec<(u16, LaneTy)>,
    /// Gather parameters with their planned widths.
    pub(crate) gather_params: Vec<(u16, u8)>,
}

/// Lane plans for a whole module, parallel to `IrProgram::kernels`.
/// Kernels the planner rejected carry the reason; backends fall back to
/// the scalar interpreter for them.
#[derive(Debug, Clone, Default)]
pub struct LaneProgram {
    /// `(kernel name, plan or rejection reason)`.
    pub kernels: Vec<(String, Result<LaneKernel, String>)>,
}

impl LaneProgram {
    /// Plans every kernel of a lowered program.
    pub fn plan_program(ir: &crate::IrProgram) -> LaneProgram {
        LaneProgram {
            kernels: ir.kernels.iter().map(|k| (k.name.clone(), plan(k))).collect(),
        }
    }

    /// [`plan_program`](Self::plan_program) with analyzer facts
    /// (`brook_cert::absint`), parallel to `ir.kernels`. Facts only
    /// ever *expand* admission: a kernel the syntactic checks reject
    /// but the analyzer proves safe is admitted.
    pub fn plan_program_with(ir: &crate::IrProgram, facts: &[crate::KernelFacts]) -> LaneProgram {
        LaneProgram {
            kernels: ir
                .kernels
                .iter()
                .enumerate()
                .map(|(i, k)| (k.name.clone(), plan_with(k, facts.get(i))))
                .collect(),
        }
    }

    /// The lane plan for `name`, when the planner admitted it.
    pub fn kernel(&self, name: &str) -> Option<&LaneKernel> {
        self.kernels
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, p)| p.as_ref().ok())
    }

    /// The planning decision for `name`: `Ok(())` for lane execution,
    /// `Err(reason)` for scalar fallback.
    pub fn decision(&self, name: &str) -> Option<Result<(), &str>> {
        self.kernels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_ref().map(|_| ()).map_err(|e| e.as_str()))
    }
}

// ---------------------------------------------------------------------------
// The planner.
// ---------------------------------------------------------------------------

struct Planner<'k> {
    kernel: &'k IrKernel,
    /// Stable runtime type per register.
    tys: Vec<LaneTy>,
    /// Slab offset per register (f, i or b space according to `tys`).
    offs: Vec<u32>,
    f_len: usize,
    i_len: usize,
    b_len: usize,
    ops: Vec<Op>,
    op_start: Vec<u32>,
    out_off: Vec<u32>,
    out_w: Vec<u8>,
    elem_params: Vec<(u16, u8)>,
    indexof_params: Vec<u16>,
    scalar_params: Vec<(u16, LaneTy)>,
    gather_params: Vec<(u16, u8)>,
}

/// Compiles a kernel to the lane form, or explains why it must stay on
/// the scalar interpreter. The analysis is deliberately conservative:
/// admission means "bit-exact with the scalar path by construction",
/// so anything whose dynamic semantics cannot be resolved statically —
/// a register whose runtime type would change, a read the element may
/// not have written yet, a statically present fault site reachable
/// through straight-line code — is rejected, not approximated.
///
/// # Errors
/// A human-readable rejection reason (recorded in the compliance
/// report's lane-plan table).
pub fn plan(kernel: &IrKernel) -> Result<LaneKernel, String> {
    plan_with(kernel, None)
}

/// [`plan`] with optional analyzer facts: when the abstract
/// interpreter proved definite assignment for every register
/// (`facts.def_before_use_ok`), the planner's own syntactic
/// def-before-use walk — which rejects some loop-carried but safe
/// kernels — is superseded. Unproven facts fall back to the syntactic
/// walk, so admission never shrinks.
///
/// # Errors
/// A human-readable rejection reason (recorded in the compliance
/// report's lane-plan table).
pub fn plan_with(kernel: &IrKernel, facts: Option<&crate::KernelFacts>) -> Result<LaneKernel, String> {
    if kernel.is_reduce {
        return Err("reduce kernels fold serially (cross-element accumulator dependence)".into());
    }
    crate::verify::verify(kernel).map_err(|e| format!("IR failed verification: {e}"))?;
    let mut p = Planner {
        kernel,
        tys: Vec::with_capacity(kernel.regs.len()),
        offs: Vec::with_capacity(kernel.regs.len()),
        f_len: 0,
        i_len: 0,
        b_len: 0,
        ops: Vec::new(),
        op_start: Vec::with_capacity(kernel.insts.len() + 1),
        out_off: Vec::new(),
        out_w: Vec::new(),
        elem_params: Vec::new(),
        indexof_params: Vec::new(),
        scalar_params: Vec::new(),
        gather_params: Vec::new(),
    };
    // Fixed slab layout: one slab per register, typed by its static
    // type (the zero-initialization type, which admission forces every
    // write to preserve).
    for t in &kernel.regs {
        let ty = LaneTy::of_type(*t);
        p.tys.push(ty);
        p.offs.push(match ty {
            LaneTy::F(w) => {
                let off = p.f_len as u32;
                p.f_len += w as usize * LANES;
                off
            }
            LaneTy::I => {
                let off = p.i_len as u32;
                p.i_len += LANES;
                off
            }
            LaneTy::B => {
                let off = p.b_len as u32;
                p.b_len += 1;
                off
            }
        });
    }
    // Output staging slabs live in the same f32 arena as registers.
    for (_, param) in kernel.output_params() {
        if param.ty.scalar != ScalarKind::Float {
            return Err(format!("output `{}` is not a float stream", param.name));
        }
        p.out_off.push(p.f_len as u32);
        p.out_w.push(param.ty.width);
        p.f_len += param.ty.width as usize * LANES;
    }
    if !facts.is_some_and(|f| f.def_before_use_ok) {
        p.check_def_before_use()?;
    }
    for pc in 0..kernel.insts.len() {
        p.op_start.push(p.ops.len() as u32);
        p.decode(pc)
            .map_err(|e| format!("{e} (inst {pc}, source {})", kernel.spans[pc]))?;
    }
    p.op_start.push(p.ops.len() as u32);
    // Output staging must be pre-read whenever staged lanes could be
    // observed (ReadOut / compound WriteOut) or survive unwritten to
    // the flush (conditional write, early return) — flushing garbage
    // over elements the scalar path would have left untouched.
    let mut out_preload = vec![false; p.out_w.len()];
    for inst in &kernel.insts {
        match inst {
            Inst::ReadOut { out, .. } => out_preload[*out as usize] = true,
            Inst::WriteOut { out, op, .. } if *op != AssignOp::Assign => out_preload[*out as usize] = true,
            _ => {}
        }
    }
    let has_ret = kernel.insts.iter().any(|i| matches!(i, Inst::Ret));
    for (slot, need) in out_preload.iter_mut().enumerate() {
        // Skip the pre-read only when every element unconditionally
        // overwrites the whole slot: a plain store in a top-level
        // straight-line region, with no kernel-level return anywhere.
        let definite = !has_ret
            && kernel.body.iter().any(|nd| match nd {
                Node::Seq { start, end } => (*start..*end).any(|pc| {
                    matches!(
                        &kernel.insts[pc as usize],
                        Inst::WriteOut { out, op: AssignOp::Assign, .. } if *out as usize == slot
                    )
                }),
                _ => false,
            });
        *need = *need || !definite;
    }
    let cond_off = p
        .tys
        .iter()
        .zip(&p.offs)
        .map(|(t, o)| if *t == LaneTy::B { *o } else { u32::MAX })
        .collect();
    Ok(LaneKernel {
        ops: p.ops,
        op_start: p.op_start,
        f_len: p.f_len,
        i_len: p.i_len,
        b_len: p.b_len,
        cond_off,
        out_off: p.out_off,
        out_w: p.out_w,
        out_preload,
        elem_params: p.elem_params,
        indexof_params: p.indexof_params,
        scalar_params: p.scalar_params,
        gather_params: p.gather_params,
    })
}

impl<'k> Planner<'k> {
    fn ty(&self, r: crate::Reg) -> LaneTy {
        self.tys[r as usize]
    }

    fn off(&self, r: crate::Reg) -> u32 {
        self.offs[r as usize]
    }

    fn scratch_f(&mut self, w: u8) -> u32 {
        let off = self.f_len as u32;
        self.f_len += w as usize * LANES;
        off
    }

    /// Every register must be definitely written before it is read
    /// within one element, on every path. Otherwise the scalar
    /// interpreter's register frame (which persists across elements)
    /// could leak a previous element's value — sequential semantics the
    /// lane engine cannot reproduce.
    fn check_def_before_use(&self) -> Result<(), String> {
        fn walk(nodes: &[Node], insts: &[Inst], assigned: &mut Vec<bool>) -> Result<(), String> {
            let mut reads = Vec::new();
            for n in nodes {
                match n {
                    Node::Seq { start, end } => {
                        for pc in *start..*end {
                            let inst = &insts[pc as usize];
                            reads.clear();
                            inst.reads(&mut reads);
                            for r in &reads {
                                if !assigned[*r as usize] {
                                    return Err(format!(
                                        "register r{r} may be read before this element writes it"
                                    ));
                                }
                            }
                            if let Some(d) = inst.dst() {
                                assigned[d as usize] = true;
                            }
                        }
                    }
                    Node::If { cond, then, els, .. } => {
                        if !assigned[*cond as usize] {
                            return Err(format!(
                                "branch condition r{cond} may be read before this element writes it"
                            ));
                        }
                        let mut t = assigned.clone();
                        let mut e = assigned.clone();
                        walk(then, insts, &mut t)?;
                        walk(els, insts, &mut e)?;
                        for (a, (tb, eb)) in assigned.iter_mut().zip(t.iter().zip(&e)) {
                            *a = *a || (*tb && *eb);
                        }
                    }
                    Node::Loop(l) => match l.kind {
                        LoopKind::DoWhile => {
                            walk(&l.body, insts, assigned)?;
                            walk(&l.header, insts, assigned)?;
                            if !assigned[l.cond as usize] {
                                return Err("loop condition read before written".into());
                            }
                        }
                        _ => {
                            // Header runs at least once; the body may not.
                            walk(&l.header, insts, assigned)?;
                            if !assigned[l.cond as usize] {
                                return Err("loop condition read before written".into());
                            }
                            let mut b = assigned.clone();
                            walk(&l.body, insts, &mut b)?;
                        }
                    },
                }
            }
            Ok(())
        }
        let mut assigned = vec![false; self.kernel.regs.len()];
        walk(&self.kernel.body, &self.kernel.insts, &mut assigned)
    }

    // -- shared emission helpers --------------------------------------------

    /// Width after `Value::zip` broadcast, or `None` when the scalar
    /// semantics would fault (shape mismatch / non-float operand).
    fn zip_w(a: LaneTy, b: LaneTy) -> Option<u8> {
        let (LaneTy::F(wa), LaneTy::F(wb)) = (a, b) else {
            return None;
        };
        let w = wa.max(wb);
        if (wa == w || wa == 1) && (wb == w || wb == 1) {
            Some(w)
        } else {
            None
        }
    }

    /// Promotes an int operand to a fresh `F(1)` scratch (Brook's
    /// implicit conversion); floats pass through.
    fn promote(&mut self, off: u32, ty: LaneTy) -> Result<(u32, LaneTy), String> {
        match ty {
            LaneTy::I => {
                let s = self.scratch_f(1);
                self.ops.push(Op::ItoF { dst: s, src: off });
                Ok((s, LaneTy::F(1)))
            }
            LaneTy::B => Err("bool operand in arithmetic".into()),
            f => Ok((off, f)),
        }
    }

    /// Emits `brook_bin_op(op, a, b)` into `dst`, returning the result
    /// type. Arithmetic only — comparisons and logic are handled at the
    /// `Inst::Bin` site.
    fn emit_arith(
        &mut self,
        op: FOp,
        iop: IOp,
        dst: u32,
        a: (u32, LaneTy),
        b: (u32, LaneTy),
    ) -> Result<LaneTy, String> {
        if a.1 == LaneTy::I && b.1 == LaneTy::I {
            self.ops.push(Op::ArithI {
                op: iop,
                dst,
                a: a.0,
                b: b.0,
            });
            return Ok(LaneTy::I);
        }
        let (ao, at) = self.promote(a.0, a.1)?;
        let (bo, bt) = self.promote(b.0, b.1)?;
        let w = Self::zip_w(at, bt).ok_or("operand shape mismatch")?;
        let (LaneTy::F(wa), LaneTy::F(wb)) = (at, bt) else {
            unreachable!()
        };
        self.ops.push(Op::ArithF {
            op,
            dst,
            w,
            a: ao,
            ab: wa == 1 && w > 1,
            b: bo,
            bb: wb == 1 && w > 1,
        });
        Ok(LaneTy::F(w))
    }

    /// Emits `apply_assign(current, op, src)` into the float region at
    /// `dst_off` with current type `dst_ty`, returning the combined
    /// type. `to_out` relaxes the exact-type rule for output staging
    /// slabs (the scalar `write_out` truncates wider values to the
    /// output width).
    fn emit_assign(
        &mut self,
        dst_off: u32,
        dst_ty: LaneTy,
        op: AssignOp,
        src_off: u32,
        src_ty: LaneTy,
        to_out: bool,
    ) -> Result<(), String> {
        let (fop, iop) = match op {
            AssignOp::Assign => {
                match (dst_ty, src_ty) {
                    (LaneTy::F(w), LaneTy::F(ws)) if ws == w => {
                        self.ops.push(Op::CopyF {
                            dst: dst_off,
                            src: src_off,
                            n: w,
                        });
                    }
                    (LaneTy::F(w), LaneTy::F(1)) if w > 1 => {
                        self.ops.push(Op::SplatF {
                            dst: dst_off,
                            w,
                            src: src_off,
                        });
                    }
                    (LaneTy::F(1), LaneTy::I) => {
                        self.ops.push(Op::ItoF {
                            dst: dst_off,
                            src: src_off,
                        });
                    }
                    (LaneTy::F(w), LaneTy::F(ws)) if to_out && ws > w => {
                        // write_out keeps the first w lanes of a wider value.
                        self.ops.push(Op::CopyF {
                            dst: dst_off,
                            src: src_off,
                            n: w,
                        });
                    }
                    (LaneTy::I, LaneTy::I) => {
                        self.ops.push(Op::CopyI {
                            dst: dst_off,
                            src: src_off,
                        });
                    }
                    (LaneTy::B, LaneTy::B) => {
                        self.ops.push(Op::CopyB {
                            dst: dst_off,
                            src: src_off,
                        });
                    }
                    _ => {
                        return Err(format!(
                            "assignment would change the register's runtime type \
                             ({dst_ty:?} <- {src_ty:?})"
                        ))
                    }
                }
                return Ok(());
            }
            AssignOp::AddAssign => (FOp::Add, IOp::Add),
            AssignOp::SubAssign => (FOp::Sub, IOp::Sub),
            AssignOp::MulAssign => (FOp::Mul, IOp::Mul),
            AssignOp::DivAssign => (FOp::Div, IOp::Div),
        };
        let combined = self.emit_arith(fop, iop, dst_off, (dst_off, dst_ty), (src_off, src_ty))?;
        if combined != dst_ty {
            return Err(format!(
                "compound assignment would change the register's runtime type \
                 ({dst_ty:?} -> {combined:?})"
            ));
        }
        Ok(())
    }

    // -- per-instruction decoding -------------------------------------------

    fn decode(&mut self, pc: usize) -> Result<(), String> {
        let inst = self.kernel.insts[pc].clone();
        match inst {
            Inst::Nop | Inst::Jump { .. } | Inst::BranchIfFalse { .. } => {
                // Control flow executes through the structured tree.
            }
            Inst::Ret => self.ops.push(Op::Ret),
            Inst::Fail { .. } => self.ops.push(Op::Bail),
            Inst::Const { dst, v } => {
                let ty = self.ty(dst);
                if LaneTy::of_value(&v) != ty {
                    return Err("constant type does not match its register".into());
                }
                let off = self.off(dst);
                match v {
                    Value::Int(i) => self.ops.push(Op::ConstI { dst: off, v: i }),
                    Value::Bool(b) => self.ops.push(Op::ConstB { dst: off, v: b }),
                    other => {
                        let LaneTy::F(w) = ty else { unreachable!() };
                        let mut lanes = [0.0f32; 4];
                        lanes[..other.lanes().len()].copy_from_slice(other.lanes());
                        self.ops.push(Op::ConstF {
                            dst: off,
                            w,
                            v: lanes,
                        });
                    }
                }
            }
            Inst::Mov { dst, src } => {
                let (dt, st) = (self.ty(dst), self.ty(src));
                if dt != st {
                    return Err(format!(
                        "move would change the register's type ({dt:?} <- {st:?})"
                    ));
                }
                let (d, s) = (self.off(dst), self.off(src));
                match dt {
                    LaneTy::F(w) => self.ops.push(Op::CopyF { dst: d, src: s, n: w }),
                    LaneTy::I => self.ops.push(Op::CopyI { dst: d, src: s }),
                    LaneTy::B => self.ops.push(Op::CopyB { dst: d, src: s }),
                }
            }
            Inst::DeclInit { dst, src, ty } => {
                let want = LaneTy::of_type(ty);
                debug_assert_eq!(want, self.ty(dst));
                let (d, s, st) = (self.off(dst), self.off(src), self.ty(src));
                match (want, st) {
                    (LaneTy::F(1), LaneTy::I) => self.ops.push(Op::ItoF { dst: d, src: s }),
                    (LaneTy::F(w), LaneTy::I) => self.ops.push(Op::SplatI { dst: d, w, src: s }),
                    (LaneTy::F(w), LaneTy::F(1)) if w > 1 => self.ops.push(Op::SplatF { dst: d, w, src: s }),
                    (LaneTy::F(w), LaneTy::F(ws)) if w == ws => {
                        self.ops.push(Op::CopyF { dst: d, src: s, n: w })
                    }
                    (LaneTy::I, LaneTy::I) => self.ops.push(Op::CopyI { dst: d, src: s }),
                    (LaneTy::B, LaneTy::B) => self.ops.push(Op::CopyB { dst: d, src: s }),
                    (w, s) => {
                        return Err(format!(
                            "declaration initializer does not coerce to its type ({w:?} <- {s:?})"
                        ))
                    }
                }
            }
            Inst::AssignLocal { dst, op, src } => {
                self.emit_assign(
                    self.off(dst),
                    self.ty(dst),
                    op,
                    self.off(src),
                    self.ty(src),
                    false,
                )?;
            }
            Inst::Bin { dst, op, lhs, rhs } => self.decode_bin(dst, op, lhs, rhs)?,
            Inst::Un { dst, op, src } => {
                let (d, s, st) = (self.off(dst), self.off(src), self.ty(src));
                match op {
                    UnOp::Neg => match st {
                        LaneTy::I => {
                            if self.ty(dst) != LaneTy::I {
                                return Err("negation result type mismatch".into());
                            }
                            self.ops.push(Op::NegI { dst: d, src: s });
                        }
                        LaneTy::F(w) => {
                            if self.ty(dst) != LaneTy::F(w) {
                                return Err("negation result type mismatch".into());
                            }
                            self.ops.push(Op::NegF { dst: d, src: s, w });
                        }
                        LaneTy::B => return Err("cannot negate a bool".into()),
                    },
                    UnOp::Not => {
                        if st != LaneTy::B || self.ty(dst) != LaneTy::B {
                            return Err("`!` needs a bool".into());
                        }
                        self.ops.push(Op::NotB { dst: d, src: s });
                    }
                }
            }
            Inst::CastInt { dst, src } => {
                if self.ty(dst) != LaneTy::I {
                    return Err("int() result register is not an int".into());
                }
                let (d, s) = (self.off(dst), self.off(src));
                match self.ty(src) {
                    LaneTy::F(1) => self.ops.push(Op::FtoI { dst: d, src: s }),
                    LaneTy::I => self.ops.push(Op::CopyI { dst: d, src: s }),
                    _ => return Err("int() needs a scalar".into()),
                }
            }
            Inst::Construct { dst, width, args } => self.decode_construct(dst, width, &args)?,
            Inst::Swizzle { dst, src, sel } => self.decode_swizzle(dst, src, &sel)?,
            Inst::SwizzleStore { dst, op, src, sel } => self.decode_swizzle_store(dst, op, src, &sel)?,
            Inst::Builtin { dst, which, args } => self.decode_builtin(dst, which, &args)?,
            Inst::Select { dst, cond, a, b } => {
                if self.ty(cond) != LaneTy::B {
                    return Err("ternary condition is not a bool".into());
                }
                let (at, bt, dt) = (self.ty(a), self.ty(b), self.ty(dst));
                if at != bt || at != dt {
                    return Err(format!(
                        "ternary arms have lane-divergent types ({at:?} vs {bt:?})"
                    ));
                }
                let (d, c, ao, bo) = (self.off(dst), self.off(cond), self.off(a), self.off(b));
                match dt {
                    LaneTy::F(w) => self.ops.push(Op::SelF {
                        dst: d,
                        cond: c,
                        a: ao,
                        b: bo,
                        w,
                    }),
                    LaneTy::I => self.ops.push(Op::SelI {
                        dst: d,
                        cond: c,
                        a: ao,
                        b: bo,
                    }),
                    LaneTy::B => self.ops.push(Op::SelB {
                        dst: d,
                        cond: c,
                        a: ao,
                        b: bo,
                    }),
                }
            }
            Inst::ReadElem { dst, param } => {
                let p = &self.kernel.params[param as usize];
                if p.ty.scalar != ScalarKind::Float {
                    return Err("non-float elementwise input".into());
                }
                let w = p.ty.width;
                if self.ty(dst) != LaneTy::F(w) {
                    return Err("element read width does not match its register".into());
                }
                let slot = match self.elem_params.iter().position(|(pi, _)| *pi == param) {
                    Some(i) => i as u16,
                    None => {
                        self.elem_params.push((param, w));
                        (self.elem_params.len() - 1) as u16
                    }
                };
                self.ops.push(Op::ReadElem {
                    dst: self.off(dst),
                    w,
                    slot,
                });
            }
            Inst::ReadScalar { dst, param } => {
                let ty = self.ty(dst);
                let slot = match self.scalar_params.iter().position(|(pi, _)| *pi == param) {
                    Some(i) => i as u16,
                    None => {
                        self.scalar_params.push((param, ty));
                        (self.scalar_params.len() - 1) as u16
                    }
                };
                if self.scalar_params[slot as usize].1 != ty {
                    return Err("scalar parameter read at two different types".into());
                }
                match ty {
                    LaneTy::F(w) => self.ops.push(Op::ReadScalarF {
                        dst: self.off(dst),
                        w,
                        slot,
                    }),
                    LaneTy::I => self.ops.push(Op::ReadScalarI {
                        dst: self.off(dst),
                        slot,
                    }),
                    LaneTy::B => return Err("bool scalar parameter".into()),
                }
            }
            Inst::ReadOut { dst, out } => {
                let w = self.out_w[out as usize];
                if self.ty(dst) != LaneTy::F(w) {
                    return Err("output read width does not match its register".into());
                }
                self.ops.push(Op::CopyF {
                    dst: self.off(dst),
                    src: self.out_off[out as usize],
                    n: w,
                });
            }
            Inst::WriteOut { out, op, src } => {
                let w = self.out_w[out as usize];
                self.emit_assign(
                    self.out_off[out as usize],
                    LaneTy::F(w),
                    op,
                    self.off(src),
                    self.ty(src),
                    true,
                )?;
            }
            Inst::Gather {
                dst,
                param,
                idx,
                proven,
            } => {
                let p = &self.kernel.params[param as usize];
                if p.ty.scalar != ScalarKind::Float {
                    return Err("non-float gather".into());
                }
                let w = p.ty.width;
                if self.ty(dst) != LaneTy::F(w) {
                    return Err("gather width does not match its register".into());
                }
                if !matches!(p.kind, ParamKind::Gather { .. }) {
                    return Err(format!("`{}` is not a gather parameter", p.name));
                }
                let mut ops_idx = Vec::with_capacity(idx.len());
                for r in &idx {
                    match self.ty(*r) {
                        LaneTy::F(1) => ops_idx.push((self.off(*r), false)),
                        LaneTy::I => ops_idx.push((self.off(*r), true)),
                        _ => return Err("gather index must be scalar".into()),
                    }
                }
                if !self.gather_params.iter().any(|(pi, _)| *pi == param) {
                    self.gather_params.push((param, w));
                }
                self.ops.push(Op::Gather {
                    dst: self.off(dst),
                    w,
                    param,
                    idx: ops_idx,
                    proven,
                });
            }
            Inst::Indexof { dst, param } => {
                if self.ty(dst) != LaneTy::F(2) {
                    return Err("indexof register is not a float2".into());
                }
                let p = &self.kernel.params[param as usize];
                if matches!(p.kind, ParamKind::Gather { .. }) {
                    return Err(format!("indexof on non-stream `{}`", p.name));
                }
                let slot = match self.indexof_params.iter().position(|pi| *pi == param) {
                    Some(i) => i as u16,
                    None => {
                        self.indexof_params.push(param);
                        (self.indexof_params.len() - 1) as u16
                    }
                };
                self.ops.push(Op::Indexof {
                    dst: self.off(dst),
                    slot,
                });
            }
        }
        Ok(())
    }

    fn decode_bin(
        &mut self,
        dst: crate::Reg,
        op: BinOp,
        lhs: crate::Reg,
        rhs: crate::Reg,
    ) -> Result<(), String> {
        let (lt, rt) = (self.ty(lhs), self.ty(rhs));
        let (lo, ro, d) = (self.off(lhs), self.off(rhs), self.off(dst));
        // Pure int arithmetic and int comparisons.
        if lt == LaneTy::I && rt == LaneTy::I {
            if let Some(c) = comp_of(op) {
                if self.ty(dst) != LaneTy::B {
                    return Err("comparison result register is not a bool".into());
                }
                self.ops.push(Op::CmpI {
                    op: c,
                    dst: d,
                    a: lo,
                    b: ro,
                });
                return Ok(());
            }
            if op.is_logical() {
                return Err("logical op on ints".into());
            }
            if self.ty(dst) != LaneTy::I {
                return Err("int arithmetic result register is not an int".into());
            }
            let iop = match op {
                BinOp::Add => IOp::Add,
                BinOp::Sub => IOp::Sub,
                BinOp::Mul => IOp::Mul,
                BinOp::Div => IOp::Div,
                BinOp::Rem => IOp::Rem,
                _ => unreachable!(),
            };
            self.ops.push(Op::ArithI {
                op: iop,
                dst: d,
                a: lo,
                b: ro,
            });
            return Ok(());
        }
        if lt == LaneTy::B && rt == LaneTy::B {
            let bop = match op {
                BinOp::And => BOp::And,
                BinOp::Or => BOp::Or,
                BinOp::Eq => BOp::Eq,
                BinOp::Ne => BOp::Ne,
                _ => return Err("arithmetic on bools".into()),
            };
            if self.ty(dst) != LaneTy::B {
                return Err("bool op result register is not a bool".into());
            }
            self.ops.push(Op::LogicB {
                op: bop,
                dst: d,
                a: lo,
                b: ro,
            });
            return Ok(());
        }
        if let Some(c) = comp_of(op) {
            // Mixed comparison: both must promote to scalar floats.
            let (ao, at) = self.promote(lo, lt)?;
            let (bo, bt) = self.promote(ro, rt)?;
            if at != LaneTy::F(1) || bt != LaneTy::F(1) {
                return Err("comparisons need scalar operands".into());
            }
            if self.ty(dst) != LaneTy::B {
                return Err("comparison result register is not a bool".into());
            }
            self.ops.push(Op::CmpF {
                op: c,
                dst: d,
                a: ao,
                b: bo,
            });
            return Ok(());
        }
        if op.is_logical() {
            return Err("logical op on non-bools".into());
        }
        let fop = match op {
            BinOp::Add => FOp::Add,
            BinOp::Sub => FOp::Sub,
            BinOp::Mul => FOp::Mul,
            BinOp::Div => FOp::Div,
            BinOp::Rem => FOp::Rem,
            _ => unreachable!(),
        };
        let result = self.emit_arith(fop, IOp::Add, d, (lo, lt), (ro, rt))?;
        if result != self.ty(dst) {
            return Err(format!(
                "arithmetic result type {result:?} does not match its register ({:?})",
                self.ty(dst)
            ));
        }
        Ok(())
    }

    fn decode_construct(&mut self, dst: crate::Reg, width: u8, args: &[crate::Reg]) -> Result<(), String> {
        if self.ty(dst) != LaneTy::F(width) {
            return Err("constructor width does not match its register".into());
        }
        // Concatenated lane sources: float components in order, ints as
        // single converted lanes, bools contributing nothing (exactly
        // `eval::construct`).
        enum SrcLane {
            F(u32),
            I(u32),
        }
        let mut lanes: Vec<SrcLane> = Vec::new();
        for r in args {
            match self.ty(*r) {
                LaneTy::F(w) => {
                    for c in 0..w as usize {
                        lanes.push(SrcLane::F(self.off(*r) + (c * LANES) as u32));
                    }
                }
                LaneTy::I => lanes.push(SrcLane::I(self.off(*r))),
                LaneTy::B => {}
            }
        }
        let d = self.off(dst);
        // Aliasing guard: constructor sources are normally fresh temps,
        // but a pass could in principle alias them with the destination;
        // route through a scratch in that case.
        let aliases = args.contains(&dst);
        let target = if aliases { self.scratch_f(width) } else { d };
        if lanes.len() == 1 && width > 1 {
            match lanes[0] {
                SrcLane::F(off) => self.ops.push(Op::SplatF {
                    dst: target,
                    w: width,
                    src: off,
                }),
                SrcLane::I(off) => self.ops.push(Op::SplatI {
                    dst: target,
                    w: width,
                    src: off,
                }),
            }
        } else {
            if lanes.len() < width as usize {
                return Err(format!("`float{width}` constructor needs {width} components"));
            }
            for (c, src) in lanes.iter().take(width as usize).enumerate() {
                let dc = target + (c * LANES) as u32;
                match src {
                    SrcLane::F(off) => self.ops.push(Op::CopyF {
                        dst: dc,
                        src: *off,
                        n: 1,
                    }),
                    SrcLane::I(off) => self.ops.push(Op::ItoF { dst: dc, src: *off }),
                }
            }
        }
        if aliases {
            self.ops.push(Op::CopyF {
                dst: d,
                src: target,
                n: width,
            });
        }
        Ok(())
    }

    /// Selector characters as lane indices, validated against width `w`.
    fn sel_indices(sel: &str, w: u8) -> Result<Vec<usize>, String> {
        if sel.is_empty() || sel.len() > 4 {
            return Err(format!("swizzle `.{sel}` out of range"));
        }
        let mut out = Vec::with_capacity(sel.len());
        for c in sel.bytes() {
            let i = crate::eval::lane_index(c);
            if i >= w as usize {
                return Err(format!("swizzle `.{sel}` out of range"));
            }
            out.push(i);
        }
        Ok(out)
    }

    fn decode_swizzle(&mut self, dst: crate::Reg, src: crate::Reg, sel: &str) -> Result<(), String> {
        let LaneTy::F(w) = self.ty(src) else {
            return Err("cannot swizzle a non-float value".into());
        };
        let idx = Self::sel_indices(sel, w)?;
        if self.ty(dst) != LaneTy::F(idx.len() as u8) {
            return Err("swizzle width does not match its register".into());
        }
        let (d0, s0) = (self.off(dst), self.off(src));
        let target = if dst == src {
            self.scratch_f(idx.len() as u8)
        } else {
            d0
        };
        for (k, i) in idx.iter().enumerate() {
            self.ops.push(Op::CopyF {
                dst: target + (k * LANES) as u32,
                src: s0 + (i * LANES) as u32,
                n: 1,
            });
        }
        if dst == src {
            self.ops.push(Op::CopyF {
                dst: d0,
                src: target,
                n: idx.len() as u8,
            });
        }
        Ok(())
    }

    fn decode_swizzle_store(
        &mut self,
        dst: crate::Reg,
        op: AssignOp,
        src: crate::Reg,
        sel: &str,
    ) -> Result<(), String> {
        let LaneTy::F(w) = self.ty(dst) else {
            return Err("cannot swizzle a non-float value".into());
        };
        let idx = Self::sel_indices(sel, w)?;
        let n = idx.len() as u8;
        // view = dst.sel
        let view = self.scratch_f(n);
        let d0 = self.off(dst);
        for (k, i) in idx.iter().enumerate() {
            self.ops.push(Op::CopyF {
                dst: view + (k * LANES) as u32,
                src: d0 + (i * LANES) as u32,
                n: 1,
            });
        }
        // combined = apply_assign(view, op, src); the combined value may
        // be wider than the view (scalar keeps the first n lanes).
        let (so, st) = (self.off(src), self.ty(src));
        let combined: u32 = match op {
            AssignOp::Assign => match st {
                LaneTy::F(ws) if ws >= n && src == dst => {
                    // `v.yx = v;` — the stores below must read the
                    // right-hand side's *original* components, so an
                    // aliasing source goes through a scratch copy.
                    let s = self.scratch_f(n);
                    self.ops.push(Op::CopyF { dst: s, src: so, n });
                    s
                }
                LaneTy::F(ws) if ws >= n => so,
                LaneTy::F(1) => {
                    let s = self.scratch_f(n);
                    self.ops.push(Op::SplatF {
                        dst: s,
                        w: n,
                        src: so,
                    });
                    s
                }
                LaneTy::I if n == 1 => {
                    let s = self.scratch_f(1);
                    self.ops.push(Op::ItoF { dst: s, src: so });
                    s
                }
                _ => return Err("swizzle assignment out of range".into()),
            },
            _ => {
                // The view is always float (dst is an F register), so
                // only the float flavour of the compound op applies.
                let fop = match op {
                    AssignOp::AddAssign => FOp::Add,
                    AssignOp::SubAssign => FOp::Sub,
                    AssignOp::MulAssign => FOp::Mul,
                    AssignOp::DivAssign => FOp::Div,
                    AssignOp::Assign => unreachable!(),
                };
                let (po, pt) = self.promote(so, st)?;
                let cw = Self::zip_w(LaneTy::F(n), pt).ok_or("operand shape mismatch")?;
                if cw < n {
                    return Err("swizzle assignment out of range".into());
                }
                let s = self.scratch_f(cw);
                let LaneTy::F(wp) = pt else { unreachable!() };
                self.ops.push(Op::ArithF {
                    op: fop,
                    dst: s,
                    w: cw,
                    a: view,
                    ab: n == 1 && cw > 1,
                    b: po,
                    bb: wp == 1 && cw > 1,
                });
                s
            }
        };
        // Store combined lanes back into the selected components.
        for (k, i) in idx.iter().enumerate() {
            self.ops.push(Op::CopyF {
                dst: d0 + (i * LANES) as u32,
                src: combined + (k * LANES) as u32,
                n: 1,
            });
        }
        Ok(())
    }

    fn decode_builtin(&mut self, dst: crate::Reg, which: u16, args: &[crate::Reg]) -> Result<(), String> {
        let name = BUILTINS
            .get(which as usize)
            .map(|b| b.name)
            .ok_or("unknown builtin")?;
        // Arguments promote int -> float first, exactly as the scalar
        // interpreter does before calling `eval_brook_builtin`.
        let mut a: Vec<(u32, LaneTy)> = Vec::with_capacity(args.len());
        for r in args {
            let p = self.promote(self.off(*r), self.ty(*r))?;
            a.push(p);
        }
        let d = self.off(dst);
        let want = self.ty(dst);
        let fw = |t: LaneTy| -> Result<u8, String> {
            match t {
                LaneTy::F(w) => Ok(w),
                _ => Err(format!("invalid arguments for `{name}`")),
            }
        };
        let unary = |u: Un1, p: &mut Self, a: &[(u32, LaneTy)]| -> Result<LaneTy, String> {
            let w = fw(a[0].1)?;
            p.ops.push(Op::Map1 {
                f: u,
                dst: d,
                src: a[0].0,
                w,
            });
            Ok(LaneTy::F(w))
        };
        // zip into an explicit destination
        fn zip_into(
            p: &mut Planner<'_>,
            f: Bi2,
            dst: u32,
            a: (u32, LaneTy),
            b: (u32, LaneTy),
        ) -> Result<LaneTy, String> {
            let w = Planner::zip_w(a.1, b.1).ok_or("operand shape mismatch")?;
            let (LaneTy::F(wa), LaneTy::F(wb)) = (a.1, b.1) else {
                unreachable!()
            };
            p.ops.push(Op::Map2 {
                f,
                dst,
                w,
                a: a.0,
                ab: wa == 1 && w > 1,
                b: b.0,
                bb: wb == 1 && w > 1,
            });
            Ok(LaneTy::F(w))
        }
        let result: LaneTy = match name {
            "sin" => unary(Un1::Sin, self, &a)?,
            "cos" => unary(Un1::Cos, self, &a)?,
            "tan" => unary(Un1::Tan, self, &a)?,
            "exp" => unary(Un1::Exp, self, &a)?,
            "exp2" => unary(Un1::Exp2, self, &a)?,
            "log" => unary(Un1::Log, self, &a)?,
            "log2" => unary(Un1::Log2, self, &a)?,
            "sqrt" => unary(Un1::Sqrt, self, &a)?,
            "rsqrt" => unary(Un1::Rsqrt, self, &a)?,
            "abs" => unary(Un1::Abs, self, &a)?,
            "floor" => unary(Un1::Floor, self, &a)?,
            "ceil" => unary(Un1::Ceil, self, &a)?,
            "fract" => unary(Un1::Fract, self, &a)?,
            "round" => unary(Un1::Round, self, &a)?,
            "sign" => unary(Un1::Sign, self, &a)?,
            "saturate" => unary(Un1::Saturate, self, &a)?,
            "normalize" => {
                let w = fw(a[0].1)?;
                self.ops.push(Op::Normalize {
                    dst: d,
                    src: a[0].0,
                    w,
                });
                LaneTy::F(w)
            }
            "min" => zip_into(self, Bi2::Min, d, a[0], a[1])?,
            "max" => zip_into(self, Bi2::Max, d, a[0], a[1])?,
            "pow" => zip_into(self, Bi2::Pow, d, a[0], a[1])?,
            "fmod" => zip_into(self, Bi2::Fmod, d, a[0], a[1])?,
            "step" => zip_into(self, Bi2::Step, d, a[0], a[1])?,
            "atan2" => zip_into(self, Bi2::Atan2, d, a[0], a[1])?,
            "clamp" => {
                // lo = max(a0, a1); res = min(lo, a2)
                let lw = Self::zip_w(a[0].1, a[1].1).ok_or("operand shape mismatch")?;
                let lo = self.scratch_f(lw);
                zip_into(self, Bi2::Max, lo, a[0], a[1])?;
                zip_into(self, Bi2::Min, d, (lo, LaneTy::F(lw)), a[2])?
            }
            "lerp" => {
                // bt = a1 * t; at = a0 * (1 - t); res = at + bt
                let btw = Self::zip_w(a[1].1, a[2].1).ok_or("operand shape mismatch")?;
                let bt = self.scratch_f(btw);
                zip_into(self, Bi2::Mul, bt, a[1], a[2])?;
                let atw = Self::zip_w(a[0].1, a[2].1).ok_or("operand shape mismatch")?;
                let at = self.scratch_f(atw);
                zip_into(self, Bi2::MulOneMinusB, at, a[0], a[2])?;
                zip_into(self, Bi2::Add2, d, (at, LaneTy::F(atw)), (bt, LaneTy::F(btw)))?
            }
            "smoothstep" => {
                // num = a2 - a0; den = a1 - a0; t = clamp01(num / den); res = hermite(t)
                let nw = Self::zip_w(a[2].1, a[0].1).ok_or("operand shape mismatch")?;
                let num = self.scratch_f(nw);
                zip_into(self, Bi2::Sub2, num, a[2], a[0])?;
                let dw = Self::zip_w(a[1].1, a[0].1).ok_or("operand shape mismatch")?;
                let den = self.scratch_f(dw);
                zip_into(self, Bi2::Sub2, den, a[1], a[0])?;
                let tw = Self::zip_w(LaneTy::F(nw), LaneTy::F(dw)).ok_or("operand shape mismatch")?;
                let t = self.scratch_f(tw);
                zip_into(
                    self,
                    Bi2::DivClamp01,
                    t,
                    (num, LaneTy::F(nw)),
                    (den, LaneTy::F(dw)),
                )?;
                self.ops.push(Op::Map1 {
                    f: Un1::Hermite,
                    dst: d,
                    src: t,
                    w: tw,
                });
                LaneTy::F(tw)
            }
            "dot" => {
                let (wa, wb) = (fw(a[0].1)?, fw(a[1].1)?);
                if wa != wb {
                    return Err(format!("invalid arguments for `{name}`"));
                }
                self.ops.push(Op::Dot {
                    dst: d,
                    a: a[0].0,
                    b: a[1].0,
                    w: wa,
                });
                LaneTy::F(1)
            }
            "length" => {
                let w = fw(a[0].1)?;
                self.ops.push(Op::Length {
                    dst: d,
                    src: a[0].0,
                    w,
                });
                LaneTy::F(1)
            }
            "distance" => {
                let w = Self::zip_w(a[0].1, a[1].1).ok_or("operand shape mismatch")?;
                let diff = self.scratch_f(w);
                zip_into(self, Bi2::Sub2, diff, a[0], a[1])?;
                self.ops.push(Op::Length { dst: d, src: diff, w });
                LaneTy::F(1)
            }
            other => return Err(format!("builtin `{other}` not implemented on the CPU backend")),
        };
        if result != want {
            return Err(format!(
                "builtin result type {result:?} does not match its register ({want:?})"
            ));
        }
        Ok(())
    }
}

fn comp_of(op: BinOp) -> Option<COp> {
    match op {
        BinOp::Lt => Some(COp::Lt),
        BinOp::Le => Some(COp::Le),
        BinOp::Gt => Some(COp::Gt),
        BinOp::Ge => Some(COp::Ge),
        BinOp::Eq => Some(COp::Eq),
        BinOp::Ne => Some(COp::Ne),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The execution engine.
// ---------------------------------------------------------------------------

/// Internal signal: abandon the current block and re-run it scalar.
struct Bail;

macro_rules! lanes_loop {
    ($m:expr, $l:ident, $body:block) => {
        if $m == FULL {
            for $l in 0..LANES {
                $body
            }
        } else {
            let mut mm = $m;
            while mm != 0 {
                let $l = mm.trailing_zeros() as usize;
                $body
                mm &= mm - 1;
            }
        }
    };
}

/// Reusable slab storage for the lane (and Tier-2) engines: the f32
/// register/staging arena, the i32 arena and the bool-mask arena.
/// Allocated once — per worker in the parallel backend — and re-prepared
/// per kernel, so per-dispatch execution never reallocates. The f32/i32
/// arenas are 32-byte aligned so the explicit-SIMD tier
/// ([`crate::simd`]) can use AVX2 aligned loads on slab blocks.
#[derive(Debug, Default)]
pub struct LaneSlabs {
    pub(crate) f: crate::simd::AlignedF32,
    pub(crate) i: crate::simd::AlignedI32,
    pub(crate) b: Vec<Mask>,
}

impl LaneSlabs {
    /// An empty frame; sized on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes and zero-fills the arenas for one kernel's slab layout.
    pub(crate) fn prepare(&mut self, lk: &LaneKernel) {
        self.f.clear_resize(lk.f_len);
        self.i.clear_resize(lk.i_len);
        self.b.clear();
        self.b.resize(lk.b_len, 0);
        debug_assert_eq!(
            self.f.as_slice().as_ptr() as usize % 32,
            0,
            "lane f32 slab arena must be 32-byte aligned for AVX2 loads"
        );
        debug_assert_eq!(
            self.i.as_slice().as_ptr() as usize % 32,
            0,
            "lane i32 slab arena must be 32-byte aligned for AVX2 loads"
        );
    }
}

struct Engine<'a, 'p> {
    lk: &'p LaneKernel,
    bindings: &'a [Binding<'a>],
    /// Float register + output staging slabs (component-major, one
    /// component = [`LANES`] consecutive values).
    f: &'a mut [f32],
    i: &'a mut [i32],
    b: &'a mut [Mask],
    /// Lanes retired by a kernel-level `return` in this block.
    dead: Mask,
    /// Per-lane loop back-edge counts (the scalar budget, per lane).
    iters: [u32; LANES],
    /// Per elem slot: backing data and per-lane element offsets.
    elem_data: Vec<&'a [f32]>,
    elem_off: Vec<[usize; LANES]>,
    /// Per scalar slot: pre-split lanes / int payloads.
    scalar_f: Vec<[f32; 4]>,
    scalar_i: Vec<i32>,
    /// Per indexof slot: per-lane `indexof` value.
    idx_vals: Vec<[[f32; 2]; LANES]>,
    /// Maximum `indexof` component values of this launch's domain
    /// ([`crate::eval::indexof_comp_max`]) — the runtime half of
    /// [`crate::ProvenIdx::IndexofRel`] clamp elision.
    comp_max: [i64; 2],
}

/// Runs a (non-reduce) kernel over a contiguous partition of its output
/// domain through the lane engine — the drop-in counterpart of
/// [`crate::interp::run_kernel_range`], bit-exact with it for both
/// results and faults. Bindings the plan cannot model (unexpected
/// kinds, widths or scalar types) and faulting blocks transparently
/// execute through the scalar interpreter.
///
/// # Errors
/// Exactly the scalar interpreter's faults, with element attribution.
pub fn run_kernel_range(
    lane: &LaneKernel,
    kernel: &IrKernel,
    bindings: &[Binding<'_>],
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<(), ExecError> {
    let mut slabs = LaneSlabs::new();
    run_kernel_range_in(&mut slabs, lane, kernel, bindings, outputs, domain_shape, range)
}

/// [`run_kernel_range`] with caller-owned slab storage: the parallel
/// backend allocates one [`LaneSlabs`] per worker and reuses it across
/// every block of the worker's chunk instead of rebuilding the frame
/// per dispatch.
///
/// # Errors
/// Exactly the scalar interpreter's faults, with element attribution.
pub fn run_kernel_range_in(
    slabs: &mut LaneSlabs,
    lane: &LaneKernel,
    kernel: &IrKernel,
    bindings: &[Binding<'_>],
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<(), ExecError> {
    let (dx, dy, linear) = domain_extents(domain_shape);
    debug_assert!(range.end <= dx * dy, "domain range exceeds the domain");
    let scalar = |outputs: &mut [&mut [f32]]| {
        crate::interp::run_kernel_range(kernel, bindings, outputs, domain_shape, range.clone())
    };
    // Output-slot -> buffer mapping plus per-buffer widths; anything
    // unexpected falls back to the scalar path, which owns the error
    // surface.
    let mut out_buf = Vec::with_capacity(kernel.outputs.len());
    for (slot, _) in kernel.output_params() {
        match &bindings[kernel.outputs[slot as usize] as usize] {
            Binding::Out(i) => out_buf.push(*i),
            _ => return scalar(outputs),
        }
    }
    let mut buf_width: Vec<Option<usize>> = vec![None; outputs.len()];
    for (slot, bi) in out_buf.iter().enumerate() {
        buf_width[*bi] = Some(lane.out_w[slot] as usize);
    }
    // Elementwise inputs must match the planned widths.
    let mut elem_data = Vec::with_capacity(lane.elem_params.len());
    let mut elem_shapes = Vec::with_capacity(lane.elem_params.len());
    for (pi, w) in &lane.elem_params {
        match &bindings[*pi as usize] {
            Binding::Elem { data, shape, width } if width == w => {
                elem_data.push(*data);
                elem_shapes.push(*shape);
            }
            _ => return scalar(outputs),
        }
    }
    // Scalars must carry the planned runtime types.
    let mut scalar_f = vec![[0.0f32; 4]; lane.scalar_params.len()];
    let mut scalar_i = vec![0i32; lane.scalar_params.len()];
    for (slot, (pi, ty)) in lane.scalar_params.iter().enumerate() {
        match &bindings[*pi as usize] {
            Binding::Scalar(v) if LaneTy::of_value(v) == *ty => match v {
                Value::Int(x) => scalar_i[slot] = *x,
                other => {
                    scalar_f[slot][..other.lanes().len()].copy_from_slice(other.lanes());
                }
            },
            _ => return scalar(outputs),
        }
    }
    for (pi, w) in &lane.gather_params {
        match &bindings[*pi as usize] {
            Binding::Gather { width, .. } if width == w => {}
            _ => return scalar(outputs),
        }
    }
    // `indexof` semantics depend on the binding kind; gather bindings
    // fault in the scalar path, so let it raise that fault.
    for pi in &lane.indexof_params {
        if matches!(&bindings[*pi as usize], Binding::Gather { .. }) {
            return scalar(outputs);
        }
    }
    slabs.prepare(lane);
    let mut eng = Engine {
        lk: lane,
        bindings,
        f: slabs.f.as_mut_slice(),
        i: slabs.i.as_mut_slice(),
        b: &mut slabs.b,
        dead: 0,
        iters: [0; LANES],
        elem_data,
        elem_off: vec![[0; LANES]; lane.elem_params.len()],
        scalar_f,
        scalar_i,
        idx_vals: vec![[[0.0; 2]; LANES]; lane.indexof_params.len()],
        comp_max: crate::eval::indexof_comp_max((dx, dy), linear),
    };
    let mut base = range.start;
    while base < range.end {
        let n = (range.end - base).min(LANES);
        let mask: Mask = if n == LANES { FULL } else { (1u32 << n) - 1 };
        eng.dead = 0;
        eng.iters = [0; LANES];
        // Per-lane element addressing for this block.
        for (si, shape) in elem_shapes.iter().enumerate() {
            let cols = if shape.len() == 2 {
                shape[1]
            } else {
                shape.iter().product()
            };
            let width = lane.elem_params[si].1 as usize;
            for l in 0..n {
                let p = base + l;
                let (ix, iy) = input_index((p % dx, p / dx), (dx, dy), shape);
                eng.elem_off[si][l] = (iy * cols + ix) * width;
            }
        }
        for (si, pi) in lane.indexof_params.iter().enumerate() {
            for l in 0..n {
                let p = base + l;
                let pos = (p % dx, p / dx);
                eng.idx_vals[si][l] = match &bindings[*pi as usize] {
                    Binding::Elem { shape, .. } => indexof_elem(pos, (dx, dy), shape),
                    Binding::Out(_) | Binding::Scalar(_) => indexof_pos(pos, (dx, dy), linear),
                    Binding::Gather { .. } => unreachable!("validated above"),
                };
            }
        }
        // Stage current output contents where the plan says the block
        // can observe or leave them (unconditional-overwrite slots skip
        // the pre-read — the flush rewrites every lane anyway).
        for (slot, bi) in out_buf.iter().enumerate() {
            if !lane.out_preload[slot] {
                continue;
            }
            let w = lane.out_w[slot] as usize;
            let off = lane.out_off[slot] as usize;
            let buf = &outputs[*bi];
            for l in 0..n {
                let src = (base + l - range.start) * w;
                for c in 0..w {
                    eng.f[off + c * LANES + l] = buf[src + c];
                }
            }
        }
        match eng.exec_nodes(&kernel.body, mask) {
            Ok(()) => {
                for (slot, bi) in out_buf.iter().enumerate() {
                    let w = lane.out_w[slot] as usize;
                    let off = lane.out_off[slot] as usize;
                    let buf = &mut outputs[*bi];
                    for l in 0..n {
                        let dst = (base + l - range.start) * w;
                        for c in 0..w {
                            buf[dst + c] = eng.f[off + c * LANES + l];
                        }
                    }
                }
            }
            Err(Bail) => {
                // Re-run exactly this block through the scalar
                // interpreter: its partial writes, fault choice, element
                // attribution and span are the scalar path's, verbatim.
                // (No staged lane write has touched the real buffers.)
                let mut slices: Vec<&mut [f32]> = Vec::with_capacity(outputs.len());
                for (bi, out) in outputs.iter_mut().enumerate() {
                    match buf_width[bi] {
                        Some(w) => {
                            let s = (base - range.start) * w;
                            slices.push(&mut out[s..s + n * w]);
                        }
                        None => slices.push(&mut out[0..0]),
                    }
                }
                crate::interp::run_kernel_range(kernel, bindings, &mut slices, domain_shape, base..base + n)?;
            }
        }
        base += n;
    }
    Ok(())
}

impl Engine<'_, '_> {
    fn exec_nodes(&mut self, nodes: &[Node], mask: Mask) -> Result<(), Bail> {
        for n in nodes {
            let m = mask & !self.dead;
            if m == 0 {
                return Ok(());
            }
            match n {
                Node::Seq { start, end } => self.exec_seq(*start, *end, m)?,
                Node::If { cond, then, els, .. } => {
                    let cb = self.b[self.lk.cond_off[*cond as usize] as usize];
                    let tm = m & cb;
                    let em = m & !cb;
                    if tm != 0 {
                        self.exec_nodes(then, tm)?;
                    }
                    if em != 0 {
                        self.exec_nodes(els, em)?;
                    }
                }
                Node::Loop(l) => self.exec_loop(l, m)?,
            }
        }
        Ok(())
    }

    fn exec_loop(&mut self, l: &crate::LoopNode, mask: Mask) -> Result<(), Bail> {
        let cond_off = self.lk.cond_off[l.cond as usize] as usize;
        let mut active = mask;
        if l.kind == LoopKind::DoWhile {
            loop {
                active &= !self.dead;
                if active == 0 {
                    return Ok(());
                }
                self.exec_nodes(&l.body, active)?;
                active &= !self.dead;
                if active == 0 {
                    return Ok(());
                }
                self.exec_nodes(&l.header, active)?;
                active &= !self.dead & self.b[cond_off];
                if active == 0 {
                    return Ok(());
                }
                self.bump_iters(active)?;
            }
        }
        loop {
            active &= !self.dead;
            if active == 0 {
                return Ok(());
            }
            self.exec_nodes(&l.header, active)?;
            active &= !self.dead & self.b[cond_off];
            if active == 0 {
                return Ok(());
            }
            self.exec_nodes(&l.body, active)?;
            // Back-edge: lanes still live after the body iterate again.
            active &= !self.dead;
            if active != 0 {
                self.bump_iters(active)?;
            }
        }
    }

    /// The scalar iteration budget, per lane: every taken back-edge
    /// counts once for every lane that takes it.
    fn bump_iters(&mut self, m: Mask) -> Result<(), Bail> {
        let mut mm = m;
        while mm != 0 {
            let l = mm.trailing_zeros() as usize;
            self.iters[l] += 1;
            if u64::from(self.iters[l]) > MAX_ITERATIONS {
                return Err(Bail);
            }
            mm &= mm - 1;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec_seq(&mut self, start: u32, end: u32, m: Mask) -> Result<(), Bail> {
        let lk = self.lk;
        let bindings = self.bindings;
        let ops = &lk.ops[lk.op_start[start as usize] as usize..lk.op_start[end as usize] as usize];
        for op in ops {
            match op {
                Op::ConstF { dst, w, v } => {
                    for (c, val) in v.iter().copied().take(*w as usize).enumerate() {
                        let d = *dst as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = val;
                        });
                    }
                }
                Op::ConstI { dst, v } => {
                    let d = *dst as usize;
                    lanes_loop!(m, l, {
                        self.i[d + l] = *v;
                    });
                }
                Op::ConstB { dst, v } => {
                    let d = *dst as usize;
                    let bits = if *v { m } else { 0 };
                    self.b[d] = (self.b[d] & !m) | bits;
                }
                Op::CopyF { dst, src, n } => {
                    for c in 0..*n as usize {
                        let d = *dst as usize + c * LANES;
                        let s = *src as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = self.f[s + l];
                        });
                    }
                }
                Op::CopyI { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        self.i[d + l] = self.i[s + l];
                    });
                }
                Op::CopyB { dst, src } => {
                    let bits = self.b[*src as usize];
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | (bits & m);
                }
                Op::SplatF { dst, w, src } => {
                    let s = *src as usize;
                    for c in 0..*w as usize {
                        let d = *dst as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = self.f[s + l];
                        });
                    }
                }
                Op::SplatI { dst, w, src } => {
                    let s = *src as usize;
                    for c in 0..*w as usize {
                        let d = *dst as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = self.i[s + l] as f32;
                        });
                    }
                }
                Op::ItoF { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        self.f[d + l] = self.i[s + l] as f32;
                    });
                }
                Op::FtoI { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        self.i[d + l] = self.f[s + l] as i32;
                    });
                }
                Op::ArithF {
                    op,
                    dst,
                    w,
                    a,
                    ab,
                    b,
                    bb,
                } => {
                    for c in 0..*w as usize {
                        let d = *dst as usize + c * LANES;
                        let x = *a as usize + if *ab { 0 } else { c * LANES };
                        let y = *b as usize + if *bb { 0 } else { c * LANES };
                        match op {
                            FOp::Add => lanes_loop!(m, l, {
                                self.f[d + l] = self.f[x + l] + self.f[y + l];
                            }),
                            FOp::Sub => lanes_loop!(m, l, {
                                self.f[d + l] = self.f[x + l] - self.f[y + l];
                            }),
                            FOp::Mul => lanes_loop!(m, l, {
                                self.f[d + l] = self.f[x + l] * self.f[y + l];
                            }),
                            FOp::Div => lanes_loop!(m, l, {
                                self.f[d + l] = self.f[x + l] / self.f[y + l];
                            }),
                            FOp::Rem => lanes_loop!(m, l, {
                                let av = self.f[x + l];
                                let bv = self.f[y + l];
                                self.f[d + l] = av - bv * (av / bv).floor();
                            }),
                        }
                    }
                }
                Op::ArithI { op, dst, a, b } => {
                    let (d, x, y) = (*dst as usize, *a as usize, *b as usize);
                    match op {
                        IOp::Add => lanes_loop!(m, l, {
                            self.i[d + l] = self.i[x + l].wrapping_add(self.i[y + l]);
                        }),
                        IOp::Sub => lanes_loop!(m, l, {
                            self.i[d + l] = self.i[x + l].wrapping_sub(self.i[y + l]);
                        }),
                        IOp::Mul => lanes_loop!(m, l, {
                            self.i[d + l] = self.i[x + l].wrapping_mul(self.i[y + l]);
                        }),
                        IOp::Div => lanes_loop!(m, l, {
                            let bv = self.i[y + l];
                            self.i[d + l] = if bv == 0 {
                                0
                            } else {
                                self.i[x + l].wrapping_div(bv)
                            };
                        }),
                        IOp::Rem => lanes_loop!(m, l, {
                            let bv = self.i[y + l];
                            self.i[d + l] = if bv == 0 {
                                0
                            } else {
                                self.i[x + l].wrapping_rem(bv)
                            };
                        }),
                    }
                }
                Op::CmpF { op, dst, a, b } => {
                    let (x, y) = (*a as usize, *b as usize);
                    let mut bits: Mask = 0;
                    lanes_loop!(m, l, {
                        let av = self.f[x + l];
                        let bv = self.f[y + l];
                        let t = match op {
                            COp::Lt => av < bv,
                            COp::Le => av <= bv,
                            COp::Gt => av > bv,
                            COp::Ge => av >= bv,
                            COp::Eq => av == bv,
                            COp::Ne => av != bv,
                        };
                        if t {
                            bits |= 1 << l;
                        }
                    });
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | bits;
                }
                Op::CmpI { op, dst, a, b } => {
                    let (x, y) = (*a as usize, *b as usize);
                    let mut bits: Mask = 0;
                    lanes_loop!(m, l, {
                        let av = self.i[x + l];
                        let bv = self.i[y + l];
                        let t = match op {
                            COp::Lt => av < bv,
                            COp::Le => av <= bv,
                            COp::Gt => av > bv,
                            COp::Ge => av >= bv,
                            COp::Eq => av == bv,
                            COp::Ne => av != bv,
                        };
                        if t {
                            bits |= 1 << l;
                        }
                    });
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | bits;
                }
                Op::LogicB { op, dst, a, b } => {
                    let (av, bv) = (self.b[*a as usize], self.b[*b as usize]);
                    let bits = match op {
                        BOp::And => av & bv,
                        BOp::Or => av | bv,
                        BOp::Eq => !(av ^ bv),
                        BOp::Ne => av ^ bv,
                    };
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | (bits & m);
                }
                Op::NotB { dst, src } => {
                    let bits = !self.b[*src as usize];
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | (bits & m);
                }
                Op::NegF { dst, src, w } => {
                    for c in 0..*w as usize {
                        let d = *dst as usize + c * LANES;
                        let s = *src as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = -self.f[s + l];
                        });
                    }
                }
                Op::NegI { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        self.i[d + l] = self.i[s + l].wrapping_neg();
                    });
                }
                Op::Map1 { f, dst, src, w } => {
                    macro_rules! map1 {
                        ($g:expr) => {
                            for c in 0..*w as usize {
                                let d = *dst as usize + c * LANES;
                                let s = *src as usize + c * LANES;
                                lanes_loop!(m, l, {
                                    self.f[d + l] = $g(self.f[s + l]);
                                });
                            }
                        };
                    }
                    match f {
                        Un1::Sin => map1!(f32::sin),
                        Un1::Cos => map1!(f32::cos),
                        Un1::Tan => map1!(f32::tan),
                        Un1::Exp => map1!(f32::exp),
                        Un1::Exp2 => map1!(f32::exp2),
                        Un1::Log => map1!(f32::ln),
                        Un1::Log2 => map1!(f32::log2),
                        Un1::Sqrt => map1!(f32::sqrt),
                        Un1::Rsqrt => map1!(|x: f32| 1.0 / x.sqrt()),
                        Un1::Abs => map1!(f32::abs),
                        Un1::Floor => map1!(f32::floor),
                        Un1::Ceil => map1!(f32::ceil),
                        Un1::Fract => map1!(f32::fract),
                        Un1::Round => map1!(|x: f32| (x + 0.5).floor()),
                        Un1::Sign => map1!(f32::signum),
                        Un1::Saturate => map1!(|x: f32| x.clamp(0.0, 1.0)),
                        Un1::Hermite => map1!(|v: f32| v * v * (3.0 - 2.0 * v)),
                    }
                }
                Op::Map2 {
                    f,
                    dst,
                    w,
                    a,
                    ab,
                    b,
                    bb,
                } => {
                    macro_rules! map2 {
                        ($g:expr) => {
                            for c in 0..*w as usize {
                                let d = *dst as usize + c * LANES;
                                let x = *a as usize + if *ab { 0 } else { c * LANES };
                                let y = *b as usize + if *bb { 0 } else { c * LANES };
                                lanes_loop!(m, l, {
                                    self.f[d + l] = $g(self.f[x + l], self.f[y + l]);
                                });
                            }
                        };
                    }
                    match f {
                        Bi2::Min => map2!(f32::min),
                        Bi2::Max => map2!(f32::max),
                        Bi2::Pow => map2!(f32::powf),
                        Bi2::Fmod => map2!(|x: f32, y: f32| x - y * (x / y).floor()),
                        Bi2::Step => map2!(|e: f32, x: f32| if x < e { 0.0 } else { 1.0 }),
                        Bi2::Atan2 => map2!(f32::atan2),
                        Bi2::MulOneMinusB => map2!(|x: f32, t: f32| x * (1.0 - t)),
                        Bi2::DivClamp01 => map2!(|x: f32, y: f32| (x / y).clamp(0.0, 1.0)),
                        Bi2::Add2 => map2!(|x: f32, y: f32| x + y),
                        Bi2::Sub2 => map2!(|x: f32, y: f32| x - y),
                        Bi2::Mul => map2!(|x: f32, y: f32| x * y),
                    }
                }
                Op::Dot { dst, a, b, w } => {
                    let (d, x, y) = (*dst as usize, *a as usize, *b as usize);
                    lanes_loop!(m, l, {
                        let mut sum = 0.0f32;
                        for c in 0..*w as usize {
                            sum += self.f[x + c * LANES + l] * self.f[y + c * LANES + l];
                        }
                        self.f[d + l] = sum;
                    });
                }
                Op::Length { dst, src, w } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        let mut sum = 0.0f32;
                        for c in 0..*w as usize {
                            let v = self.f[s + c * LANES + l];
                            sum += v * v;
                        }
                        self.f[d + l] = sum.sqrt();
                    });
                }
                Op::Normalize { dst, src, w } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    lanes_loop!(m, l, {
                        let mut sum = 0.0f32;
                        for c in 0..*w as usize {
                            let v = self.f[s + c * LANES + l];
                            sum += v * v;
                        }
                        let len = sum.sqrt();
                        for c in 0..*w as usize {
                            self.f[d + c * LANES + l] = self.f[s + c * LANES + l] / len;
                        }
                    });
                }
                Op::SelF { dst, cond, a, b, w } => {
                    let cb = self.b[*cond as usize];
                    lanes_loop!(m, l, {
                        let src = if cb & (1 << l) != 0 { *a } else { *b } as usize;
                        for c in 0..*w as usize {
                            self.f[*dst as usize + c * LANES + l] = self.f[src + c * LANES + l];
                        }
                    });
                }
                Op::SelI { dst, cond, a, b } => {
                    let cb = self.b[*cond as usize];
                    let (d, x, y) = (*dst as usize, *a as usize, *b as usize);
                    lanes_loop!(m, l, {
                        self.i[d + l] = if cb & (1 << l) != 0 {
                            self.i[x + l]
                        } else {
                            self.i[y + l]
                        };
                    });
                }
                Op::SelB { dst, cond, a, b } => {
                    let cb = self.b[*cond as usize];
                    let bits = (self.b[*a as usize] & cb) | (self.b[*b as usize] & !cb);
                    let d = *dst as usize;
                    self.b[d] = (self.b[d] & !m) | (bits & m);
                }
                Op::ReadElem { dst, w, slot } => {
                    let data = self.elem_data[*slot as usize];
                    let off = self.elem_off[*slot as usize];
                    for c in 0..*w as usize {
                        let d = *dst as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = data[off[l] + c];
                        });
                    }
                }
                Op::ReadScalarF { dst, w, slot } => {
                    let v = self.scalar_f[*slot as usize];
                    for (c, val) in v.iter().copied().take(*w as usize).enumerate() {
                        let d = *dst as usize + c * LANES;
                        lanes_loop!(m, l, {
                            self.f[d + l] = val;
                        });
                    }
                }
                Op::ReadScalarI { dst, slot } => {
                    let v = self.scalar_i[*slot as usize];
                    let d = *dst as usize;
                    lanes_loop!(m, l, {
                        self.i[d + l] = v;
                    });
                }
                Op::Gather {
                    dst,
                    w,
                    param,
                    idx,
                    proven,
                } => {
                    let Binding::Gather { data, shape, width } = &bindings[*param as usize] else {
                        return Err(Bail);
                    };
                    // One per-block fit check buys a clamp-free lane
                    // loop when the analyzer proved the indices in
                    // bounds for this shape.
                    if proven
                        .as_ref()
                        .is_some_and(|p| crate::eval::proven_fits_dyn(p, shape, self.comp_max))
                    {
                        lanes_loop!(m, l, {
                            let mut linear = 0usize;
                            for (k, (off, is_int)) in idx.iter().enumerate() {
                                let iv: i64 = if *is_int {
                                    i64::from(self.i[*off as usize + l])
                                } else {
                                    (self.f[*off as usize + l] + 0.5).floor() as i64
                                };
                                let dim = shape[k];
                                debug_assert!(
                                    iv >= 0 && (iv as usize) < dim,
                                    "unsound clamp elision: lane index {iv} outside [0, {dim}) — analyzer bug"
                                );
                                linear = linear * dim + iv as usize;
                            }
                            let src = linear * *width as usize;
                            for c in 0..*w as usize {
                                self.f[*dst as usize + c * LANES + l] = data[src + c];
                            }
                        });
                        continue;
                    }
                    lanes_loop!(m, l, {
                        let mut linear = 0usize;
                        if idx.len() == shape.len() {
                            for (k, (off, is_int)) in idx.iter().enumerate() {
                                let iv: i64 = if *is_int {
                                    i64::from(self.i[*off as usize + l])
                                } else {
                                    (self.f[*off as usize + l] + 0.5).floor() as i64
                                };
                                let dim = shape[k];
                                linear = linear * dim + iv.clamp(0, dim as i64 - 1) as usize;
                            }
                        } else {
                            let len: usize = shape.iter().product();
                            let first: i64 = match idx.first() {
                                Some((off, true)) => i64::from(self.i[*off as usize + l]),
                                Some((off, false)) => (self.f[*off as usize + l] + 0.5).floor() as i64,
                                None => 0,
                            };
                            linear = first.clamp(0, len as i64 - 1) as usize;
                        }
                        let src = linear * *width as usize;
                        for c in 0..*w as usize {
                            self.f[*dst as usize + c * LANES + l] = data[src + c];
                        }
                    });
                }
                Op::Indexof { dst, slot } => {
                    let v = self.idx_vals[*slot as usize];
                    let d = *dst as usize;
                    lanes_loop!(m, l, {
                        self.f[d + l] = v[l][0];
                        self.f[d + LANES + l] = v[l][1];
                    });
                }
                Op::Ret => {
                    self.dead |= m;
                    return Ok(());
                }
                Op::Bail => return Err(Bail),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    /// Runs a 1-input/1-output kernel over a 1-D domain on both the
    /// scalar interpreter and the lane engine and returns both results.
    #[allow(clippy::type_complexity)]
    fn run_both(
        kernel: &IrKernel,
        input: &[f32],
        n: usize,
    ) -> (Result<Vec<f32>, ExecError>, Result<Vec<f32>, ExecError>) {
        let lane = plan(kernel).expect("plan");
        let shape = [n];
        let run = |use_lanes: bool| -> Result<Vec<f32>, ExecError> {
            let mut bindings = Vec::new();
            let mut n_outs = 0usize;
            for p in &kernel.params {
                match p.kind {
                    ParamKind::Stream => bindings.push(Binding::Elem {
                        data: input,
                        shape: &shape,
                        width: 1,
                    }),
                    ParamKind::OutStream => {
                        bindings.push(Binding::Out(n_outs));
                        n_outs += 1;
                    }
                    _ => panic!("run_both supports stream params only"),
                }
            }
            let mut buf = vec![0.0f32; n];
            {
                let mut outs: Vec<&mut [f32]> = vec![&mut buf];
                if use_lanes {
                    run_kernel_range(&lane, kernel, &bindings, &mut outs, &shape, 0..n)?;
                } else {
                    crate::interp::run_kernel_range(kernel, &bindings, &mut outs, &shape, 0..n)?;
                }
            }
            Ok(buf)
        };
        (run(false), run(true))
    }

    pub(super) fn assert_bit_exact(src: &str, input_of: impl Fn(usize) -> f32, sizes: &[usize]) {
        let k = lower_src(src);
        for &n in sizes {
            let input: Vec<f32> = (0..n).map(&input_of).collect();
            let (scalar, lanes) = run_both(&k, &input, n);
            let (scalar, lanes) = (scalar.expect("scalar"), lanes.expect("lanes"));
            for (i, (s, l)) in scalar.iter().zip(&lanes).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    l.to_bits(),
                    "n={n} element {i}: scalar {s} vs lanes {l}\n{src}"
                );
            }
        }
    }

    #[test]
    fn straight_line_matches_scalar_at_every_remainder() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a * 2.5 + sin(a) - sqrt(abs(a)); }",
            |i| i as f32 * 0.37 - 3.0,
            &[1, LANES - 1, LANES, LANES + 1, 2 * LANES + 1, 97],
        );
    }

    #[test]
    fn divergent_branch_and_loop_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 12; i++) {
                    if (s < a) { s += 1.5; } else { s -= 0.25; }
                }
                if (a > 4.0) { o = s * 2.0; return; }
                o = s;
            }",
            |i| (i as f32 * 1.7) % 9.0,
            &[LANES, 2 * LANES + 1, 61],
        );
    }

    #[test]
    fn data_dependent_while_loop_masks_until_all_exit() {
        // Every lane exits after a different trip count: the loop must
        // keep only unfinished lanes active.
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float s = a;
                while (s < 20.0) { s = s * 1.5 + 1.0; }
                o = s;
            }",
            |i| (i % 19) as f32,
            &[LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn vectors_swizzles_and_builtins_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                float4 v = float4(a, a + 1.0, a * 2.0, 4.0);
                v.xy += float2(0.5, 0.25);
                float3 u = float3(v.x, v.y, v.z);
                float d = dot(u, normalize(u));
                float c = clamp(a, 0.25, 3.5) + lerp(1.0, 2.0, fract(a)) + smoothstep(0.0, 8.0, a);
                o = d + c + length(float2(v.z, v.w)) + min(a, 2.0) * step(1.0, a);
            }",
            |i| i as f32 * 0.61 - 2.0,
            &[LANES, LANES + 1, 53],
        );
    }

    #[test]
    fn int_arithmetic_and_casts_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) {
                int i = int(a);
                int j = i * 3 - 7;
                int k = j / (i + 2) + j % 5;
                o = float(k) + a;
            }",
            |i| i as f32 * 0.9 - 4.0,
            &[LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn ternary_select_matches_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a > 2.0 ? a * 3.0 : a - 1.0; }",
            |i| i as f32 * 0.5,
            &[LANES, LANES + 1],
        );
    }

    #[test]
    fn compound_output_writes_match_scalar() {
        assert_bit_exact(
            "kernel void f(float a<>, out float o<>) { o = a; o += 2.0; o *= a + 1.0; }",
            |i| i as f32 * 0.21,
            &[LANES - 1, LANES, 2 * LANES + 1],
        );
    }

    #[test]
    fn empty_range_is_a_no_op() {
        let k = lower_src("kernel void f(float a<>, out float o<>) { o = a; }");
        let lane = plan(&k).expect("plan");
        let shape = [4usize];
        let bindings = vec![
            Binding::Elem {
                data: &[1.0, 2.0, 3.0, 4.0],
                shape: &shape,
                width: 1,
            },
            Binding::Out(0),
        ];
        let mut buf = vec![7.0f32; 0];
        let mut outs: Vec<&mut [f32]> = vec![&mut buf];
        run_kernel_range(&lane, &k, &bindings, &mut outs, &shape, 0..0).expect("empty range");
    }

    #[test]
    fn planner_rejects_reduce_kernels() {
        let k = lower_src("reduce void sum(float a<>, reduce float r<>) { r += a; }");
        let err = plan(&k).expect_err("reduce must stay scalar");
        assert!(err.contains("serial"), "{err}");
    }

    #[test]
    fn budget_fault_matches_scalar_exactly() {
        // Lane 3 of the second block diverges into an unbounded loop;
        // the lane engine must bail and report the scalar path's exact
        // fault: element index, message and source line.
        let src = "kernel void f(float a<>, out float o<>) {\n    float s = a;\n    while (s > 0.5) { s = s + 0.0; }\n    o = s;\n}";
        let k = lower_src(src);
        let n = LANES + 7;
        let bad = LANES + 3;
        let input: Vec<f32> = (0..n).map(|i| if i == bad { 1.0 } else { 0.0 }).collect();
        let (scalar, lanes) = run_both(&k, &input, n);
        let se = scalar.expect_err("scalar faults");
        let le = lanes.expect_err("lanes fault");
        assert_eq!(se, le, "lane fault must be the scalar fault verbatim");
        assert_eq!(le.element, Some(bad));
        assert_eq!(le.span.line, 3);
        assert!(le.render().contains(&format!("element {bad}")), "{}", le.render());
    }

    #[test]
    fn fault_in_block_preserves_scalar_partial_writes() {
        // The scalar path writes elements before the faulting one; the
        // lane engine stages blocks, so after its scalar re-run of the
        // faulting block the partial writes must agree.
        let src = "kernel void f(float a<>, out float o<>) {
            o = a * 2.0;
            float s = a;
            while (s > 0.5) { s = s + 0.0; }
        }";
        let k = lower_src(src);
        let n = LANES;
        let bad = 5;
        let input: Vec<f32> = (0..n)
            .map(|i| if i == bad { 1.0 } else { 0.1 * i as f32 })
            .collect();
        let lane = plan(&k).expect("plan");
        let shape = [n];
        let run = |use_lanes: bool| -> (Vec<f32>, ExecError) {
            let bindings = vec![
                Binding::Elem {
                    data: &input,
                    shape: &shape,
                    width: 1,
                },
                Binding::Out(0),
            ];
            let mut buf = vec![0.0f32; n];
            let err = {
                let mut outs: Vec<&mut [f32]> = vec![&mut buf];
                if use_lanes {
                    run_kernel_range(&lane, &k, &bindings, &mut outs, &shape, 0..n).expect_err("fault")
                } else {
                    crate::interp::run_kernel_range(&k, &bindings, &mut outs, &shape, 0..n)
                        .expect_err("fault")
                }
            };
            (buf, err)
        };
        let (sbuf, serr) = run(false);
        let (lbuf, lerr) = run(true);
        assert_eq!(serr, lerr);
        assert_eq!(sbuf, lbuf, "partial writes must match the scalar path");
        assert_eq!(serr.element, Some(bad));
    }

    #[test]
    fn lane_program_records_decisions() {
        let checked = parse_and_check(
            "kernel void ok(float a<>, out float o<>) { o = a + 1.0; }
             reduce void sum(float a<>, reduce float r<>) { r += a; }",
        )
        .expect("front-end");
        let (ir, errs) = crate::lower::lower_program(&checked);
        assert!(errs.is_empty());
        let lp = LaneProgram::plan_program(&ir);
        assert!(lp.kernel("ok").is_some());
        assert!(lp.kernel("sum").is_none());
        assert_eq!(lp.decision("ok"), Some(Ok(())));
        assert!(matches!(lp.decision("sum"), Some(Err(_))));
    }
}

#[cfg(test)]
mod alias_tests {
    use super::tests::assert_bit_exact as assert_bit_exact_1in1out;
    use super::*;

    /// `v.yx = v;` — the swizzle store's right-hand side aliases its
    /// destination; the stores must read the original components
    /// (scalar semantics), not partially overwritten ones.
    #[test]
    fn aliasing_swizzle_store_reads_the_original_value() {
        assert_bit_exact_1in1out(
            "kernel void f(float a<>, out float o<>) {
                float2 v = float2(a, a * 2.0 + 1.0);
                v.yx = v;
                o = v.x * 100.0 + v.y;
            }",
            |i| i as f32 * 0.31 - 1.0,
            &[LANES, LANES + 3],
        );
    }

    /// Self-referential swizzle read (`v = v.yx` style chains) through
    /// a compound store.
    #[test]
    fn compound_aliasing_swizzle_store_matches_scalar() {
        assert_bit_exact_1in1out(
            "kernel void f(float a<>, out float o<>) {
                float3 v = float3(a, a + 1.0, a + 2.0);
                v.zx += v.xy;
                o = v.x + v.y * 10.0 + v.z * 100.0;
            }",
            |i| i as f32 * 0.17,
            &[LANES, 2 * LANES + 1],
        );
    }
}
