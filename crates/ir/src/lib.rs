//! # brook-ir — BrookIR, the typed flat mid-level IR of the toolchain
//!
//! Every layer of the Brook Auto stack used to walk the front-end AST
//! directly: the CPU backends tree-interpreted it, the GLSL generator
//! pattern-matched it, the fusion planner cloned and renamed its
//! statements, and the certification analyses re-traversed it. BrookIR
//! replaces that shared dependency with a single **typed, flat,
//! register-based** intermediate form that every consumer lowers
//! through:
//!
//! * **flat instruction stream** ([`Inst`]) with absolute jump targets —
//!   the execution form. The interpreter in [`interp`] runs it over a
//!   preallocated register frame with no tree walk, no scope hash maps
//!   and no per-node allocation;
//! * **structured regions** ([`Node`]) over the same instruction
//!   indices — the analysis/codegen form. Loops stay syntactic regions
//!   carrying their statically deduced trip bound, so certifiability
//!   remains a syntactic property after lowering (the paper's BA003
//!   argument survives the IR);
//! * **source provenance**: every instruction carries the [`Span`] of
//!   the statement or expression it was lowered from, so certification
//!   findings and runtime faults raised *after* lowering still point at
//!   the offending source line.
//!
//! Helper functions are inlined during lowering (certified programs
//! have an acyclic, depth-bounded call graph; see [`lower`]), so the IR
//! has no call instruction and no stack.
//!
//! The semantic helpers in [`eval`] are shared with the legacy AST tree
//! walker in `brook-auto`, which is kept as the differential oracle:
//! both execute the *same* scalar semantics by construction, and the
//! fuzz campaigns assert bit-exactness between them.

pub mod eval;
pub mod interp;
pub mod lanes;
pub mod lower;
pub mod passes;
pub mod pretty;
pub mod simd;
pub mod tier;
pub mod verify;

pub use brook_lang::ast::{AssignOp, BinOp, ParamKind, Type, UnOp};
pub use brook_lang::loopbound::LoopBound;
use brook_lang::span::Span;
pub use brook_lang::ReduceOp;
pub use glsl_es::Value;

/// A virtual register index into a kernel's preallocated frame.
pub type Reg = u32;

/// One kernel parameter, mirrored from the front-end so the IR is
/// self-contained (fused kernels have no AST to refer back to).
#[derive(Debug, Clone, PartialEq)]
pub struct IrParam {
    /// Parameter name (binding key and GLSL uniform/sampler base name).
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Stream / gather / scalar role.
    pub kind: ParamKind,
}

/// Analyzer-proven range of one gather-index dimension.
///
/// Produced by `brook_cert::absint` and attached to [`Inst::Gather`].
/// Both forms are inclusive intervals; `IndexofRel` expresses indices
/// derived from `indexof` of the *output* stream, whose components are
/// bounded by the launch domain rather than by a compile-time constant
/// (the dominant gather pattern in stencil and matrix kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenIdx {
    /// The index is a compile-time interval: `lo <= idx <= hi`.
    Const { lo: i64, hi: i64 },
    /// The index is `indexof` component `comp` (0 = x, 1 = y) of the
    /// launch domain plus an offset in `[lo, hi]`:
    /// `comp_value + lo <= idx <= comp_value + hi`, where
    /// `0 <= comp_value <= comp_max(domain)` (see
    /// [`eval::indexof_comp_max`]).
    IndexofRel { comp: u8, lo: i64, hi: i64 },
}

/// One flat instruction.
///
/// The value semantics are *dynamic*, mirroring the AST tree walker
/// exactly: registers carry a static upper-bound type (see
/// [`IrKernel::regs`]) but instructions like [`Inst::AssignLocal`] and
/// [`Inst::WriteOut`] apply Brook's implicit conversions (int→float
/// promotion, scalar→vector broadcast) on the runtime value, so a
/// lowered program is bit-exact with the tree-walking oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// No operation (left behind by index-stable passes such as DCE).
    Nop,
    /// `dst = v`.
    Const { dst: Reg, v: Value },
    /// `dst = src` (verbatim copy, no conversion).
    Mov { dst: Reg, src: Reg },
    /// Declaration initializer: `dst = coerce_to(src, ty)` (Brook's
    /// decl-site implicit conversion, [`eval::coerce_to`]).
    DeclInit { dst: Reg, src: Reg, ty: Type },
    /// Local assignment: `dst = apply_assign(dst, op, src)` — including
    /// compound operators and Brook's assignment broadcasts
    /// ([`eval::apply_assign`]).
    AssignLocal { dst: Reg, op: AssignOp, src: Reg },
    /// `dst = lhs op rhs` with Brook's implicit int→float promotion
    /// ([`eval::brook_bin_op`]).
    Bin { dst: Reg, op: BinOp, lhs: Reg, rhs: Reg },
    /// `dst = op src`.
    Un { dst: Reg, op: UnOp, src: Reg },
    /// `dst = int(src)` (truncating cast).
    CastInt { dst: Reg, src: Reg },
    /// `dst = float<width>(args...)` — vector constructor / scalar cast
    /// / splat, with the tree walker's lane-concatenation semantics.
    Construct { dst: Reg, width: u8, args: Vec<Reg> },
    /// `dst = src.sel` (component selection, `sel` normalized to xyzw).
    Swizzle { dst: Reg, src: Reg, sel: String },
    /// `dst.sel = apply_assign(dst.sel, op, src)` (swizzled store into
    /// a local register).
    SwizzleStore {
        dst: Reg,
        op: AssignOp,
        src: Reg,
        sel: String,
    },
    /// `dst = builtin(args...)`; `which` indexes
    /// [`brook_lang::builtins::BUILTINS`]. Int arguments promote to
    /// float first, as in the tree walker.
    Builtin { dst: Reg, which: u16, args: Vec<Reg> },
    /// `dst = cond ? a : b` — both arms already evaluated (sound for
    /// the pure arms the lowerer emits it for).
    Select { dst: Reg, cond: Reg, a: Reg, b: Reg },
    /// `dst =` current element of the elementwise input `param`.
    ReadElem { dst: Reg, param: u16 },
    /// `dst =` scalar (uniform) argument bound to `param`.
    ReadScalar { dst: Reg, param: u16 },
    /// `dst =` current value of output slot `out` at this element.
    ReadOut { dst: Reg, out: u16 },
    /// Output store: `out = apply_assign(out, op, src)` at the current
    /// element.
    WriteOut { out: u16, op: AssignOp, src: Reg },
    /// `dst = param[idx...]` — random-access gather with per-dimension
    /// clamping ([`eval::gather_clamped`]).
    ///
    /// `proven` is filled in by the abstract interpreter
    /// (`brook_cert::absint`) after the pass pipeline: one
    /// [`ProvenIdx`] per dimension describing where the logical index
    /// of that dimension is statically proven to lie. Shapes and
    /// launch domains are runtime-only, so executors may skip the
    /// per-dimension clamp only after checking at launch time that the
    /// bound stream's shape covers the proven range (see
    /// [`eval::proven_fits_dyn`]). Passes never see a `Some` value —
    /// the annotation runs strictly after optimization.
    Gather {
        dst: Reg,
        param: u16,
        idx: Vec<Reg>,
        proven: Option<Vec<ProvenIdx>>,
    },
    /// `dst = indexof(param)` (always a `float2`).
    Indexof { dst: Reg, param: u16 },
    /// Unconditional jump (loop back-edges and else-skips only — the
    /// region tree in [`IrKernel::body`] proves structure).
    Jump { target: u32 },
    /// Jump to `target` when `cond` is false.
    BranchIfFalse { cond: Reg, target: u32 },
    /// Finish the current element (kernel-level `return;`).
    Ret,
    /// Deliberate runtime fault, preserving the tree walker's dynamic
    /// error surface (e.g. reading a gather without an index). When
    /// `codegen_fatal` is set the construct is also rejected by the
    /// shader generator (the tree-walking GLSL path did too); guarded
    /// faults (helper fall-through checks) stay CPU-only.
    Fail { msg: String, codegen_fatal: bool },
}

impl Inst {
    /// The register this instruction writes, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::DeclInit { dst, .. }
            | Inst::AssignLocal { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::CastInt { dst, .. }
            | Inst::Construct { dst, .. }
            | Inst::Swizzle { dst, .. }
            | Inst::SwizzleStore { dst, .. }
            | Inst::Builtin { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::ReadElem { dst, .. }
            | Inst::ReadScalar { dst, .. }
            | Inst::ReadOut { dst, .. }
            | Inst::Gather { dst, .. }
            | Inst::Indexof { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Registers this instruction reads, appended to `out`.
    /// `AssignLocal`/`SwizzleStore` read their destination too (the
    /// current value feeds the combine).
    pub fn reads(&self, out: &mut Vec<Reg>) {
        match self {
            Inst::Mov { src, .. }
            | Inst::DeclInit { src, .. }
            | Inst::Un { src, .. }
            | Inst::CastInt { src, .. }
            | Inst::Swizzle { src, .. } => out.push(*src),
            Inst::AssignLocal { dst, src, .. } | Inst::SwizzleStore { dst, src, .. } => {
                out.push(*dst);
                out.push(*src);
            }
            Inst::Bin { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Inst::Construct { args, .. } | Inst::Builtin { args, .. } => out.extend(args.iter().copied()),
            Inst::Select { cond, a, b, .. } => {
                out.push(*cond);
                out.push(*a);
                out.push(*b);
            }
            Inst::WriteOut { src, .. } => out.push(*src),
            Inst::Gather { idx, .. } => out.extend(idx.iter().copied()),
            Inst::BranchIfFalse { cond, .. } => out.push(*cond),
            _ => {}
        }
    }
}

/// Loop flavour, preserved for pretty-printing, certification messages
/// and the GLSL emitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Counted C-style `for`.
    For,
    /// `while` (certification rejects it; executable in unchecked mode).
    While,
    /// `do { .. } while` (same status as `while`).
    DoWhile,
}

/// A structured loop region over the flat instruction stream.
///
/// Layout for `For`/`While`: `[header.. , exit_at, body.. , back_at]`
/// with `back_at` jumping to the first header instruction. For
/// `DoWhile` the body precedes the header:
/// `[body.. , header.. , exit_at, back_at]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNode {
    /// Loop flavour.
    pub kind: LoopKind,
    /// Statically deduced trip bound (the BA003 artifact, carried
    /// through lowering so the IR re-check stays syntactic).
    pub bound: LoopBound,
    /// Source location of the loop statement.
    pub span: Span,
    /// Per-iteration condition computation, ending in `cond`.
    pub header: Vec<Node>,
    /// Condition register tested by `exit_at`.
    pub cond: Reg,
    /// Index of the `BranchIfFalse` exiting the loop.
    pub exit_at: u32,
    /// Loop body (for `For` loops the step is lowered at its end).
    pub body: Vec<Node>,
    /// Index of the back-edge `Jump`.
    pub back_at: u32,
}

/// A node of the structured region tree.
///
/// The tree covers exactly the kernel's instruction range; the verifier
/// checks that every control-flow instruction appears where the tree
/// says it does, so the flat interpreter and the structured consumers
/// (GLSL emitter, certification re-check) can never disagree about
/// control flow.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Straight-line instructions `[start, end)` — no `Jump`/`Branch`.
    Seq { start: u32, end: u32 },
    /// `if (cond) { then } else { els }`; `branch_at` is the
    /// `BranchIfFalse` and `jump_at` the then-branch's jump over the
    /// else branch (absent when `els` is empty).
    If {
        /// Condition register.
        cond: Reg,
        /// Index of the `BranchIfFalse`.
        branch_at: u32,
        /// Then-branch nodes.
        then: Vec<Node>,
        /// Index of the `Jump` over the else branch.
        jump_at: Option<u32>,
        /// Else-branch nodes.
        els: Vec<Node>,
    },
    /// A structured loop region.
    Loop(Box<LoopNode>),
}

/// One lowered kernel: flat instructions + structured regions + types +
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct IrKernel {
    /// Kernel name.
    pub name: String,
    /// True for reduce kernels.
    pub is_reduce: bool,
    /// Canonical reduction operation (reduce kernels).
    pub reduce_op: Option<ReduceOp>,
    /// Parameters in declaration order (binding order).
    pub params: Vec<IrParam>,
    /// Indices into `params` of the `out` stream parameters, in
    /// declaration order — `WriteOut`/`ReadOut` slots.
    pub outputs: Vec<u16>,
    /// Register holding the reduction accumulator (reduce kernels).
    pub acc_reg: Option<Reg>,
    /// Static type of every register (an upper bound: runtime values
    /// may be narrower, exactly as in the tree walker).
    pub regs: Vec<Type>,
    /// The flat instruction stream.
    pub insts: Vec<Inst>,
    /// Source span of every instruction (parallel to `insts`).
    pub spans: Vec<Span>,
    /// Structured region tree over `insts`.
    pub body: Vec<Node>,
    /// Source span of the kernel definition.
    pub span: Span,
    /// Whether any instruction is `Indexof` (mirrors the front-end
    /// summary flag).
    pub uses_indexof: bool,
}

impl IrKernel {
    /// The parameter index of output slot `out`.
    pub fn out_param(&self, out: u16) -> &IrParam {
        &self.params[self.outputs[out as usize] as usize]
    }

    /// Iterates every `(slot, param)` output pair.
    pub fn output_params(&self) -> impl Iterator<Item = (u16, &IrParam)> {
        self.outputs
            .iter()
            .enumerate()
            .map(|(slot, &p)| (slot as u16, &self.params[p as usize]))
    }

    /// Registers actually referenced by live (non-`Nop`) instructions.
    pub fn live_regs(&self) -> Vec<bool> {
        let mut live = vec![false; self.regs.len()];
        let mut reads = Vec::new();
        for inst in &self.insts {
            if let Some(d) = inst.dst() {
                live[d as usize] = true;
            }
            reads.clear();
            inst.reads(&mut reads);
            for r in &reads {
                live[*r as usize] = true;
            }
        }
        live
    }
}

/// Analyzer-proven facts about one kernel, consumed by the execution
/// planners ([`lanes::plan`], [`tier`]) in place of (or on top of)
/// their own ad-hoc syntactic checks.
///
/// Produced by `brook_cert::absint`; data-only so the IR crate does not
/// depend on the cert crate. `Default` is the "no facts proven" value —
/// planners given it behave exactly as before.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelFacts {
    /// Every register is definitely assigned before every use on every
    /// path (proven by the analyzer's definite-assignment dataflow — a
    /// strict superset of the planners' syntactic walk).
    pub def_before_use_ok: bool,
    /// `unreachable[pc]` — instruction `pc` is statically unreachable
    /// (dominated by a branch whose condition the analyzer proved
    /// constant). Parallel to `IrKernel::insts`; empty when unproven.
    pub unreachable: Vec<bool>,
    /// For reduce kernels whose combine matches
    /// [`simd::reduce_combine_site`]: the analyzer's value range for
    /// the per-element combine operand. The vectorized-reduce planner
    /// admits the kernel only when this proves the fold
    /// reassociation-safe (NaN-free and strictly sign-definite).
    pub reduce_combine: Option<ReduceCombineFact>,
}

/// The abstract value of a reduce kernel's combine operand, joined
/// over every path reaching the combine (see
/// [`KernelFacts::reduce_combine`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceCombineFact {
    /// Lower bound of the operand's numeric range.
    pub lo: f32,
    /// Upper bound of the operand's numeric range.
    pub hi: f32,
    /// Whether the operand is proven non-NaN on every path.
    pub nan_free: bool,
}

impl KernelFacts {
    /// True when instruction `pc` is proven unreachable.
    pub fn is_unreachable(&self, pc: usize) -> bool {
        self.unreachable.get(pc).copied().unwrap_or(false)
    }
}

/// A lowered translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IrProgram {
    /// Kernels in source order (kernels that failed to lower — possible
    /// only for programs compiled with certification disabled — are
    /// absent; backends fall back to the AST walker for those).
    pub kernels: Vec<IrKernel>,
}

impl IrProgram {
    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&IrKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_dst_and_reads() {
        let i = Inst::Bin {
            dst: 2,
            op: BinOp::Add,
            lhs: 0,
            rhs: 1,
        };
        assert_eq!(i.dst(), Some(2));
        let mut r = Vec::new();
        i.reads(&mut r);
        assert_eq!(r, vec![0, 1]);
        let w = Inst::WriteOut {
            out: 0,
            op: AssignOp::Assign,
            src: 2,
        };
        assert_eq!(w.dst(), None);
        r.clear();
        w.reads(&mut r);
        assert_eq!(r, vec![2]);
    }

    #[test]
    fn assign_local_reads_its_destination() {
        let i = Inst::AssignLocal {
            dst: 3,
            op: AssignOp::AddAssign,
            src: 1,
        };
        let mut r = Vec::new();
        i.reads(&mut r);
        assert_eq!(r, vec![3, 1]);
    }
}
