//! The cert-preserving optimization passes over BrookIR.
//!
//! Every pass is an **index-stable, in-place rewrite**: instructions
//! are replaced (`Bin` → `Const`, duplicate → `Mov`, dead → `Nop`) but
//! never inserted, deleted or moved, so jump targets and the structured
//! region tree stay valid by construction and the verifier can re-check
//! the result after every pass (the rollback gate in
//! `brook-cert::ir_check` does exactly that).
//!
//! Bit-exactness discipline: the optimized program must produce the
//! same f32 bit patterns as the unoptimized one on the CPU backends
//! (the fuzz campaign in `brook-fuzz::optdiff` asserts it). Constant
//! folding therefore evaluates with the *interpreter's own* functions
//! ([`crate::eval`]), and algebraic rewrites are restricted to IEEE
//! bit-exact identities (`x*1.0`, `x/1.0`, `x-0.0` — but **not**
//! `x+0.0`, which flips the sign of `-0.0`).

use crate::eval;
use crate::{Inst, IrKernel, Node, Reg};
use brook_lang::ast::{AssignOp, BinOp, ScalarKind, Type, UnOp};
use brook_lang::builtins::BUILTINS;
use glsl_es::Value;

/// One optimization pass.
pub trait Pass {
    /// Stable pass name recorded in the `ComplianceReport` provenance.
    fn name(&self) -> &'static str;
    /// Rewrites `k` in place; returns whether anything changed.
    fn run(&self, k: &mut IrKernel) -> bool;
}

/// The default pipeline: constant folding, algebraic simplification,
/// common-subexpression elimination, dead-code elimination.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(ConstFold),
        Box::new(Algebraic),
        Box::new(Cse),
        Box::new(Dce),
    ]
}

/// How many times each register is written (the accumulator register of
/// a reduce kernel gets an extra external definition: the harness seeds
/// it before every fold step).
fn def_counts(k: &IrKernel) -> Vec<u32> {
    let mut counts = vec![0u32; k.regs.len()];
    for inst in &k.insts {
        if let Some(d) = inst.dst() {
            counts[d as usize] += 1;
        }
    }
    if let Some(acc) = k.acc_reg {
        counts[acc as usize] += 1;
    }
    counts
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Sparse conditional-free constant propagation: registers defined by
/// exactly one instruction whose operands are all known constants fold
/// to `Const`, using the interpreter's own evaluation helpers so the
/// folded value is bit-identical to what execution would compute.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, k: &mut IrKernel) -> bool {
        let defs = def_counts(k);
        let mut known: Vec<Option<Value>> = vec![None; k.regs.len()];
        let mut changed = false;
        // Fixpoint: values only ever become known, so iteration count is
        // bounded by the longest const dependency chain.
        loop {
            let mut progressed = false;
            for i in 0..k.insts.len() {
                let Some(d) = k.insts[i].dst() else { continue };
                if defs[d as usize] != 1 || known[d as usize].is_some() {
                    continue;
                }
                let get = |r: Reg| known[r as usize];
                let folded: Option<Value> = match &k.insts[i] {
                    Inst::Const { v, .. } => Some(*v),
                    Inst::Mov { src, .. } => get(*src),
                    Inst::DeclInit { src, ty, .. } => get(*src).map(|v| eval::coerce_to(v, *ty)),
                    Inst::Bin { op, lhs, rhs, .. } => match (get(*lhs), get(*rhs)) {
                        (Some(l), Some(r)) => eval::brook_bin_op(*op, l, r).ok(),
                        _ => None,
                    },
                    Inst::Un { op, src, .. } => get(*src).and_then(|v| match op {
                        UnOp::Neg => match v {
                            Value::Int(x) => Some(Value::Int(x.wrapping_neg())),
                            other => other.map(|f| -f),
                        },
                        UnOp::Not => v.as_bool().map(|b| Value::Bool(!b)),
                    }),
                    Inst::CastInt { src, .. } => get(*src).and_then(|v| match v {
                        Value::Float(f) => Some(Value::Int(f as i32)),
                        Value::Int(x) => Some(Value::Int(x)),
                        _ => None,
                    }),
                    Inst::Construct { width, args, .. } => {
                        let vals: Option<Vec<Value>> = args.iter().map(|r| get(*r)).collect();
                        vals.and_then(|v| eval::construct(*width as usize, &v).ok())
                    }
                    Inst::Swizzle { src, sel, .. } => get(*src).and_then(|v| eval::swizzle(&v, sel).ok()),
                    Inst::Select { cond, a, b, .. } => match get(*cond).and_then(|c| c.as_bool()) {
                        Some(true) => get(*a),
                        Some(false) => get(*b),
                        None => None,
                    },
                    Inst::Builtin { which, args, .. } => {
                        let vals: Option<Vec<Value>> = args
                            .iter()
                            .map(|r| {
                                get(*r).map(|v| match v {
                                    Value::Int(x) => Value::Float(x as f32),
                                    other => other,
                                })
                            })
                            .collect();
                        vals.and_then(|v| eval::eval_brook_builtin(BUILTINS[*which as usize].name, &v).ok())
                    }
                    _ => None,
                };
                if let Some(v) = folded {
                    known[d as usize] = Some(v);
                    if !matches!(&k.insts[i], Inst::Const { .. }) {
                        k.insts[i] = Inst::Const { dst: d, v };
                        changed = true;
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Algebraic simplification
// ---------------------------------------------------------------------------

/// The runtime value kind a register is guaranteed to hold, computed by
/// a small forward fixpoint. Registers have static *upper-bound* types;
/// the dynamic semantics can narrow them (an int literal returned from
/// a float helper stays `Int` until an operation promotes it), so the
/// algebraic rules consult this lattice instead of the static type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Unknown,
    Float,
    Int,
    Bool,
    Mixed,
}

fn join(a: Kind, b: Kind) -> Kind {
    match (a, b) {
        (Kind::Unknown, x) | (x, Kind::Unknown) => x,
        (x, y) if x == y => x,
        _ => Kind::Mixed,
    }
}

fn value_kinds(k: &IrKernel) -> Vec<Kind> {
    let mut kinds = vec![Kind::Unknown; k.regs.len()];
    if let Some(acc) = k.acc_reg {
        kinds[acc as usize] = Kind::Float; // seeded with the identity
    }
    for _ in 0..8 {
        let mut changed = false;
        for inst in &k.insts {
            let Some(d) = inst.dst() else { continue };
            let got = match inst {
                Inst::Const { v, .. } => match v {
                    Value::Int(_) => Kind::Int,
                    Value::Bool(_) => Kind::Bool,
                    _ => Kind::Float,
                },
                Inst::ReadElem { .. }
                | Inst::Gather { .. }
                | Inst::Builtin { .. }
                | Inst::Indexof { .. }
                | Inst::Swizzle { .. }
                | Inst::SwizzleStore { .. }
                | Inst::Construct { .. } => Kind::Float,
                Inst::ReadScalar { param, .. } => match k.params[*param as usize].ty.scalar {
                    ScalarKind::Int => Kind::Int,
                    ScalarKind::Bool => Kind::Bool,
                    ScalarKind::Float => Kind::Float,
                },
                Inst::ReadOut { .. } => Kind::Float,
                Inst::CastInt { .. } => Kind::Int,
                Inst::DeclInit { src, ty, .. } => {
                    let s = kinds[*src as usize];
                    if ty.is_float() {
                        match s {
                            Kind::Float | Kind::Int => Kind::Float,
                            other => other,
                        }
                    } else {
                        s
                    }
                }
                Inst::Mov { src, .. } => kinds[*src as usize],
                Inst::Select { a, b, .. } => join(kinds[*a as usize], kinds[*b as usize]),
                Inst::AssignLocal { dst, src, op } => {
                    let cur = kinds[*dst as usize];
                    let s = kinds[*src as usize];
                    match op {
                        AssignOp::Assign => match (cur, s) {
                            (Kind::Float, Kind::Int) => Kind::Float,
                            _ => s,
                        },
                        _ => match (cur, s) {
                            (Kind::Int, Kind::Int) => Kind::Int,
                            (Kind::Float, Kind::Float | Kind::Int) | (Kind::Int, Kind::Float) => Kind::Float,
                            (Kind::Unknown, _) | (_, Kind::Unknown) => Kind::Unknown,
                            _ => Kind::Mixed,
                        },
                    }
                }
                Inst::Bin { op, lhs, rhs, .. } => {
                    if op.is_comparison() || op.is_logical() {
                        Kind::Bool
                    } else {
                        match (kinds[*lhs as usize], kinds[*rhs as usize]) {
                            (Kind::Int, Kind::Int) => Kind::Int,
                            (Kind::Float, Kind::Float | Kind::Int) | (Kind::Int, Kind::Float) => Kind::Float,
                            (Kind::Unknown, _) | (_, Kind::Unknown) => Kind::Unknown,
                            _ => Kind::Mixed,
                        }
                    }
                }
                Inst::Un { op, src, .. } => match op {
                    UnOp::Not => Kind::Bool,
                    UnOp::Neg => kinds[*src as usize],
                },
                _ => continue,
            };
            let merged = join(kinds[d as usize], got);
            if merged != kinds[d as usize] {
                kinds[d as usize] = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    kinds
}

/// Bit-exact algebraic identities: `x*1.0`, `1.0*x`, `x/1.0`, `x-0.0`
/// on guaranteed-float registers (and the int/bool mirrors) rewrite to
/// `Mov`. `x+0.0` is deliberately absent — it would turn `-0.0` into
/// `+0.0` and break the CPU backends' bitwise equivalence contract.
pub struct Algebraic;

impl Pass for Algebraic {
    fn name(&self) -> &'static str {
        "algebraic"
    }

    fn run(&self, k: &mut IrKernel) -> bool {
        let defs = def_counts(k);
        let kinds = value_kinds(k);
        // A register is a usable constant operand when its single def is
        // a Const.
        let mut const_of: Vec<Option<Value>> = vec![None; k.regs.len()];
        for inst in &k.insts {
            if let Inst::Const { dst, v } = inst {
                if defs[*dst as usize] == 1 {
                    const_of[*dst as usize] = Some(*v);
                }
            }
        }
        let mut changed = false;
        for i in 0..k.insts.len() {
            let repl = match &k.insts[i] {
                Inst::Bin { dst, op, lhs, rhs } => {
                    let lc = const_of[*lhs as usize];
                    let rc = const_of[*rhs as usize];
                    let lk = kinds[*lhs as usize];
                    let rk = kinds[*rhs as usize];
                    let f_one = |v: Option<Value>| matches!(v, Some(Value::Float(f)) if f.to_bits() == 1.0f32.to_bits());
                    let f_zero = |v: Option<Value>| matches!(v, Some(Value::Float(f)) if f.to_bits() == 0.0f32.to_bits());
                    let i_one = |v: Option<Value>| matches!(v, Some(Value::Int(1)));
                    let i_zero = |v: Option<Value>| matches!(v, Some(Value::Int(0)));
                    let keep = match op {
                        // x * 1.0 → x ; 1.0 * x → x (float), x * 1 → x (int)
                        BinOp::Mul if lk == Kind::Float && f_one(rc) => Some(*lhs),
                        BinOp::Mul if rk == Kind::Float && f_one(lc) => Some(*rhs),
                        BinOp::Mul if lk == Kind::Int && i_one(rc) => Some(*lhs),
                        BinOp::Mul if rk == Kind::Int && i_one(lc) => Some(*rhs),
                        // x / 1.0 → x ; x / 1 → x
                        BinOp::Div if lk == Kind::Float && f_one(rc) => Some(*lhs),
                        BinOp::Div if lk == Kind::Int && i_one(rc) => Some(*lhs),
                        // x - 0.0 → x (exact even for -0.0) ; x - 0 → x
                        BinOp::Sub if lk == Kind::Float && f_zero(rc) => Some(*lhs),
                        BinOp::Sub if lk == Kind::Int && i_zero(rc) => Some(*lhs),
                        // x + 0 / 0 + x only for ints (-0.0 forbids the
                        // float version).
                        BinOp::Add if lk == Kind::Int && i_zero(rc) => Some(*lhs),
                        BinOp::Add if rk == Kind::Int && i_zero(lc) => Some(*rhs),
                        // bool identities
                        BinOp::And if rk == Kind::Bool && matches!(lc, Some(Value::Bool(true))) => Some(*rhs),
                        BinOp::And if lk == Kind::Bool && matches!(rc, Some(Value::Bool(true))) => Some(*lhs),
                        BinOp::Or if rk == Kind::Bool && matches!(lc, Some(Value::Bool(false))) => Some(*rhs),
                        BinOp::Or if lk == Kind::Bool && matches!(rc, Some(Value::Bool(false))) => Some(*lhs),
                        _ => None,
                    };
                    keep.map(|src| Inst::Mov { dst: *dst, src })
                }
                Inst::Select { dst, cond, a, b } => match const_of[*cond as usize] {
                    Some(Value::Bool(true)) => Some(Inst::Mov { dst: *dst, src: *a }),
                    Some(Value::Bool(false)) => Some(Inst::Mov { dst: *dst, src: *b }),
                    _ => None,
                },
                _ => None,
            };
            if let Some(r) = repl {
                k.insts[i] = r;
                changed = true;
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Common-subexpression elimination
// ---------------------------------------------------------------------------

/// Local value numbering within each straight-line `Seq` region:
/// a pure instruction recomputing an expression already available in a
/// register becomes a `Mov` from it.
pub struct Cse;

/// Key identifying a pure computation (Values keyed by bit pattern so
/// `NaN` and `-0.0` participate correctly).
#[derive(Debug, Clone, PartialEq)]
enum CseKey {
    Const([u32; 4], u8),
    Bin(BinOp, Reg, Reg),
    Un(UnOp, Reg),
    CastInt(Reg),
    DeclInit(Reg, Type),
    Construct(u8, Vec<Reg>),
    Swizzle(Reg, String),
    Builtin(u16, Vec<Reg>),
    Select(Reg, Reg, Reg),
    ReadElem(u16),
    ReadScalar(u16),
    Gather(u16, Vec<Reg>),
    Indexof(u16),
    Mov(Reg),
}

fn value_bits(v: &Value) -> ([u32; 4], u8) {
    match v {
        Value::Float(f) => ([f.to_bits(), 0, 0, 0], 1),
        Value::Vec2(l) => ([l[0].to_bits(), l[1].to_bits(), 0, 0], 2),
        Value::Vec3(l) => ([l[0].to_bits(), l[1].to_bits(), l[2].to_bits(), 0], 3),
        Value::Vec4(l) => (
            [l[0].to_bits(), l[1].to_bits(), l[2].to_bits(), l[3].to_bits()],
            4,
        ),
        Value::Int(i) => ([*i as u32, 0, 0, 0], 5),
        Value::Bool(b) => ([u32::from(*b), 0, 0, 0], 6),
    }
}

fn cse_key(inst: &Inst) -> Option<CseKey> {
    Some(match inst {
        Inst::Const { v, .. } => {
            let (bits, tag) = value_bits(v);
            CseKey::Const(bits, tag)
        }
        Inst::Bin { op, lhs, rhs, .. } => CseKey::Bin(*op, *lhs, *rhs),
        Inst::Un { op, src, .. } => CseKey::Un(*op, *src),
        Inst::CastInt { src, .. } => CseKey::CastInt(*src),
        Inst::DeclInit { src, ty, .. } => CseKey::DeclInit(*src, *ty),
        Inst::Construct { width, args, .. } => CseKey::Construct(*width, args.clone()),
        Inst::Swizzle { src, sel, .. } => CseKey::Swizzle(*src, sel.clone()),
        Inst::Builtin { which, args, .. } => CseKey::Builtin(*which, args.clone()),
        Inst::Select { cond, a, b, .. } => CseKey::Select(*cond, *a, *b),
        Inst::ReadElem { param, .. } => CseKey::ReadElem(*param),
        Inst::ReadScalar { param, .. } => CseKey::ReadScalar(*param),
        Inst::Gather { param, idx, .. } => CseKey::Gather(*param, idx.clone()),
        Inst::Indexof { param, .. } => CseKey::Indexof(*param),
        Inst::Mov { src, .. } => CseKey::Mov(*src),
        _ => return None,
    })
}

fn canonicalize(key: CseKey, f: impl Fn(Reg) -> Reg) -> CseKey {
    match key {
        CseKey::Bin(op, a, b) => CseKey::Bin(op, f(a), f(b)),
        CseKey::Un(op, a) => CseKey::Un(op, f(a)),
        CseKey::CastInt(a) => CseKey::CastInt(f(a)),
        CseKey::DeclInit(a, t) => CseKey::DeclInit(f(a), t),
        CseKey::Construct(w, args) => CseKey::Construct(w, args.into_iter().map(&f).collect()),
        CseKey::Swizzle(a, s) => CseKey::Swizzle(f(a), s),
        CseKey::Builtin(w, args) => CseKey::Builtin(w, args.into_iter().map(&f).collect()),
        CseKey::Select(c, a, b) => CseKey::Select(f(c), f(a), f(b)),
        CseKey::Gather(p, args) => CseKey::Gather(p, args.into_iter().map(&f).collect()),
        CseKey::Mov(a) => CseKey::Mov(f(a)),
        other @ (CseKey::Const(..) | CseKey::ReadElem(_) | CseKey::ReadScalar(_) | CseKey::Indexof(_)) => {
            other
        }
    }
}

fn key_mentions(key: &CseKey, r: Reg) -> bool {
    match key {
        CseKey::Const(..) | CseKey::ReadElem(_) | CseKey::ReadScalar(_) | CseKey::Indexof(_) => false,
        CseKey::Bin(_, a, b) => *a == r || *b == r,
        CseKey::Un(_, a)
        | CseKey::CastInt(a)
        | CseKey::DeclInit(a, _)
        | CseKey::Swizzle(a, _)
        | CseKey::Mov(a) => *a == r,
        CseKey::Construct(_, args) | CseKey::Builtin(_, args) | CseKey::Gather(_, args) => args.contains(&r),
        CseKey::Select(c, a, b) => *c == r || *a == r || *b == r,
    }
}

fn collect_seqs(nodes: &[Node], out: &mut Vec<(u32, u32)>) {
    for n in nodes {
        match n {
            Node::Seq { start, end } => out.push((*start, *end)),
            Node::If { then, els, .. } => {
                collect_seqs(then, out);
                collect_seqs(els, out);
            }
            Node::Loop(l) => {
                collect_seqs(&l.header, out);
                collect_seqs(&l.body, out);
            }
        }
    }
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, k: &mut IrKernel) -> bool {
        let mut seqs = Vec::new();
        collect_seqs(&k.body, &mut seqs);
        let mut changed = false;
        for (start, end) in seqs {
            let mut available: Vec<(CseKey, Reg)> = Vec::new();
            // Copy aliases (`Mov` chains) resolved to a canonical root,
            // so keys over copies of the same value still match.
            let mut alias: Vec<Option<Reg>> = vec![None; k.regs.len()];
            let resolve = |alias: &[Option<Reg>], mut r: Reg| {
                while let Some(a) = alias[r as usize] {
                    r = a;
                }
                r
            };
            for i in start..end {
                let inst = k.insts[i as usize].clone();
                let key = cse_key(&inst).map(|ky| canonicalize(ky, |r| resolve(&alias, r)));
                if let (Some(d), Some(key)) = (inst.dst(), key.clone()) {
                    if let Some((_, prior)) = available.iter().find(|(ky, _)| *ky == key) {
                        let prior = *prior;
                        if prior != d && !matches!(inst, Inst::Mov { .. }) {
                            k.insts[i as usize] = Inst::Mov { dst: d, src: prior };
                            changed = true;
                        }
                    }
                }
                // Any write invalidates facts reading or producing the
                // register, and aliases rooted at it.
                if let Some(d) = k.insts[i as usize].dst() {
                    let dc = resolve(&alias, d);
                    let _ = dc;
                    available.retain(|(ky, res)| *res != d && !key_mentions(ky, d));
                    alias[d as usize] = None;
                    for a in alias.iter_mut() {
                        if *a == Some(d) {
                            *a = None;
                        }
                    }
                }
                if let Inst::Mov { dst: d, src } = k.insts[i as usize] {
                    if d != src {
                        alias[d as usize] = Some(resolve(&alias, src));
                    }
                }
                if let (Some(d), Some(key)) = (k.insts[i as usize].dst(), cse_key(&k.insts[i as usize])) {
                    available.push((canonicalize(key, |r| resolve(&alias, r)), d));
                }
            }
        }
        changed
    }
}

// ---------------------------------------------------------------------------
// Dead-code elimination
// ---------------------------------------------------------------------------

/// Replaces pure instructions whose results are never read with `Nop`,
/// iterating to a fixpoint so dead chains disappear wholesale. The
/// accumulator register of reduce kernels is externally observed and
/// therefore always live; instructions without destinations (stores,
/// faults, control flow) are never touched.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, k: &mut IrKernel) -> bool {
        let mut changed = false;
        loop {
            // reads[r] = instruction indices reading r.
            let mut read_by: Vec<Vec<usize>> = vec![Vec::new(); k.regs.len()];
            let mut buf = Vec::new();
            for (i, inst) in k.insts.iter().enumerate() {
                buf.clear();
                inst.reads(&mut buf);
                for r in &buf {
                    read_by[*r as usize].push(i);
                }
            }
            let mut round = false;
            for i in 0..k.insts.len() {
                let Some(d) = k.insts[i].dst() else { continue };
                if Some(d) == k.acc_reg {
                    continue;
                }
                let readers = &read_by[d as usize];
                let only_self = readers.iter().all(|&r| r == i);
                if only_self && !matches!(k.insts[i], Inst::Nop) {
                    k.insts[i] = Inst::Nop;
                    round = true;
                    changed = true;
                }
            }
            if !round {
                break;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_simple;
    use crate::lower::lower_kernel;
    use crate::verify::verify;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrKernel {
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        lower_kernel(&checked, kdef).expect("lower")
    }

    fn optimized(src: &str) -> (IrKernel, IrKernel) {
        let base = lower_src(src);
        let mut opt = base.clone();
        for p in default_passes() {
            p.run(&mut opt);
            verify(&opt).unwrap_or_else(|e| panic!("{} broke the IR: {e}", p.name()));
        }
        (base, opt)
    }

    #[test]
    fn const_folding_collapses_literal_math() {
        let (_, opt) = optimized("kernel void f(float a<>, out float o<>) { o = a + (2.0 * 3.0 + 4.0); }");
        assert!(
            opt.insts
                .iter()
                .any(|i| matches!(i, Inst::Const { v: Value::Float(f), .. } if *f == 10.0)),
            "{:?}",
            opt.insts
        );
        // Only one live Bin remains (a + 10).
        let bins = opt.insts.iter().filter(|i| matches!(i, Inst::Bin { .. })).count();
        assert_eq!(bins, 1, "{:?}", opt.insts);
    }

    #[test]
    fn algebraic_strips_mul_by_one() {
        let (_, opt) = optimized("kernel void f(float a<>, out float o<>) { o = a * 1.0; }");
        assert!(
            !opt.insts.iter().any(|i| matches!(i, Inst::Bin { .. })),
            "x*1.0 must disappear: {:?}",
            opt.insts
        );
    }

    #[test]
    fn add_zero_is_not_simplified_on_floats() {
        // -0.0 + 0.0 == +0.0: rewriting x+0.0 → x would flip the sign
        // bit. The pass must leave it alone.
        let (_, opt) = optimized("kernel void f(float a<>, out float o<>) { o = a + 0.0; }");
        assert!(
            opt.insts
                .iter()
                .any(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. })),
            "x+0.0 must stay: {:?}",
            opt.insts
        );
    }

    #[test]
    fn cse_deduplicates_repeated_subexpressions() {
        let (base, opt) =
            optimized("kernel void f(float a<>, float b<>, out float o<>) { o = (a * b) + (a * b); }");
        let muls = |k: &IrKernel| {
            k.insts
                .iter()
                .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
                .count()
        };
        assert_eq!(muls(&base), 2);
        assert_eq!(muls(&opt), 1, "{:?}", opt.insts);
    }

    #[test]
    fn dce_removes_unused_locals() {
        let (_, opt) =
            optimized("kernel void f(float a<>, out float o<>) { float unused = sin(a) * 7.0; o = a; }");
        assert!(
            !opt.insts.iter().any(|i| matches!(i, Inst::Builtin { .. })),
            "dead sin() must be eliminated: {:?}",
            opt.insts
        );
    }

    #[test]
    fn passes_preserve_results_bitwise() {
        let srcs = [
            "kernel void f(float a<>, out float o<>) { o = (a * 1.0 + 2.0 * 3.0) / 1.0 - 0.0; }",
            "kernel void g(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 5; i++) { s += a * 1.0 + (2.0 - 2.0); }
                o = s + (a > 0.0 ? 1.0 : 2.0);
            }",
            "float h2(float x) { if (x > 1.0) { return x * 2.0; } return x; }
             kernel void h(float a<>, out float o<>) { o = h2(a) + (3.0 * 3.0); }",
        ];
        let data: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.37).collect();
        for src in srcs {
            let (base, opt) = optimized(src);
            let a = run_simple(&base, &[&data], data.len()).expect("base run");
            let b = run_simple(&opt, &[&data], data.len()).expect("opt run");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{src}");
            }
        }
    }

    #[test]
    fn reduce_accumulator_survives_dce() {
        let base = lower_src("reduce void sum(float a<>, reduce float r<>) { r += a; }");
        let mut opt = base.clone();
        for p in default_passes() {
            p.run(&mut opt);
        }
        let a = crate::interp::run_reduce(&base, &[1.0, 2.0, 3.0]).unwrap();
        let b = crate::interp::run_reduce(&opt, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
