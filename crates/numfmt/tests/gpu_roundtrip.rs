//! End-to-end test of the GPU-side numerical transformations: floats are
//! encoded into RGBA8 texels on the CPU, uploaded to a simulated OpenGL
//! ES 2.0 texture, decoded *and re-encoded inside a fragment shader* by
//! the GLSL snippets, rendered to an RGBA8 target and read back — the
//! exact data path of every Brook Auto kernel (paper §5.4).

use brook_numfmt::{canonicalize, floats_to_texels, texels_to_floats, GLSL_DECODE, GLSL_ENCODE};
use gles2_sim::{DeviceProfile, DrawMode, Gl, TexFormat, Value};
use proptest::prelude::*;

/// Builds the identity kernel: out[i] = decode(in[i]) re-encoded.
fn identity_shader() -> String {
    format!(
        "uniform sampler2D src;\nvarying vec2 v_texcoord;\n{GLSL_DECODE}\n{GLSL_ENCODE}\n\
         void main() {{ gl_FragColor = ba_encode(ba_decode(texture2D(src, v_texcoord))); }}"
    )
}

/// A kernel that doubles each value, to prove arithmetic happens on the
/// reconstructed float.
fn double_shader() -> String {
    format!(
        "uniform sampler2D src;\nvarying vec2 v_texcoord;\n{GLSL_DECODE}\n{GLSL_ENCODE}\n\
         void main() {{ gl_FragColor = ba_encode(ba_decode(texture2D(src, v_texcoord)) * 2.0); }}"
    )
}

fn run_shader(values: &[f32], shader: &str, side: u32) -> Vec<f32> {
    assert_eq!(values.len(), (side * side) as usize);
    let mut gl = Gl::new(DeviceProfile::videocore_iv());
    let input = gl
        .create_texture(side, side, TexFormat::Rgba8)
        .expect("input texture");
    gl.upload_texture(input, &floats_to_texels(values))
        .expect("upload");
    gl.bind_texture(0, input).expect("bind");
    let output = gl
        .create_texture(side, side, TexFormat::Rgba8)
        .expect("output texture");
    let fbo = gl.create_framebuffer();
    gl.attach_texture(fbo, output).expect("attach");
    gl.bind_framebuffer(fbo).expect("bind fbo");
    gl.viewport(side, side);
    let prog = gl.create_program(shader).expect("compile");
    gl.use_program(prog).expect("use");
    gl.set_uniform(prog, "src", Value::Int(0)).expect("sampler");
    gl.draw_fullscreen_quad(DrawMode::Full).expect("draw");
    texels_to_floats(&gl.read_pixels().expect("readback"))
}

#[test]
fn gpu_identity_roundtrip_exact() {
    let values: Vec<f32> = vec![
        0.0,
        1.0,
        -1.0,
        0.5,
        2.0,
        -0.25,
        3.25159,
        -2.61828,
        1e10,
        -1e-10,
        65535.0,
        1.0 / 3.0,
        1024.0,
        -4096.5,
        f32::MAX,
        f32::MIN_POSITIVE,
    ];
    let out = run_shader(&values, &identity_shader(), 4);
    for (i, (a, b)) in values.iter().zip(&out).enumerate() {
        assert_eq!(a, b, "identity roundtrip mismatch at {i}: {a} vs {b}");
    }
}

#[test]
fn gpu_arithmetic_on_decoded_floats() {
    let values: Vec<f32> = (0..16).map(|i| i as f32 * 1.5 - 7.0).collect();
    let out = run_shader(&values, &double_shader(), 4);
    for (a, b) in values.iter().zip(&out) {
        assert_eq!(*a * 2.0, *b, "doubling mismatch: {a} * 2 != {b}");
    }
}

#[test]
fn gpu_roundtrip_handles_powers_of_two() {
    // log2 edge cases: exact powers of two exercise the exponent
    // correction in ba_encode.
    let values: Vec<f32> = (0..16).map(|i| 2.0f32.powi(i - 8)).collect();
    let out = run_shader(&values, &identity_shader(), 4);
    assert_eq!(values, out);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpu_roundtrip_matches_cpu_canonicalization(
        values in proptest::collection::vec(-1.0e20f32..1.0e20f32, 16)
    ) {
        let canonical: Vec<f32> = values.iter().map(|v| canonicalize(*v)).collect();
        let out = run_shader(&canonical, &identity_shader(), 4);
        prop_assert_eq!(canonical, out);
    }
}
