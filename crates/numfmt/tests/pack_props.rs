//! Property tests for the RGBA8 pack/unpack transformations across the
//! full `f32` range: arbitrary bit patterns, subnormals, signed zeros
//! and values at the pack-range edges.
//!
//! Documented tolerance (crate docs): the roundtrip is *exact* for every
//! canonical value — `decode(encode(v)) == canonicalize(v)` bit-for-bit
//! aside from `-0.0` (whose sign bit is preserved in the encoding but
//! compares equal to `0.0`). Non-canonical inputs (NaN, infinities,
//! subnormals) first map onto the representable set via `canonicalize`.

use brook_numfmt::{canonicalize, decode_f32, encode_f32, floats_to_texels, texels_to_floats};
use proptest::prelude::*;
use proptest::sample::select;

/// Exact-roundtrip check used by every property below.
fn assert_exact_roundtrip(v: f32) {
    let c = canonicalize(v);
    let back = decode_f32(encode_f32(v));
    assert!(
        back == c || (back == 0.0 && c == 0.0),
        "roundtrip of {v} ({:#010x}): expected {c}, got {back}",
        v.to_bits()
    );
    // And through the channel (shader-visible) representation.
    let through = texels_to_floats(&floats_to_texels(&[v]));
    assert!(
        through[0] == c || (through[0] == 0.0 && c == 0.0),
        "channel roundtrip of {v}: expected {c}, got {}",
        through[0]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every possible bit pattern — including NaN payloads and both
    /// infinities — roundtrips to its canonical value.
    #[test]
    fn full_bit_range_roundtrips_to_canonical(bits in any::<u32>()) {
        assert_exact_roundtrip(f32::from_bits(bits));
    }

    /// Subnormals flush to a (signed) zero and stay there.
    #[test]
    fn subnormals_flush_to_zero(v in proptest::num::f32::SUBNORMAL) {
        prop_assert!(v != 0.0 && v.abs() < f32::MIN_POSITIVE, "strategy must be subnormal");
        prop_assert_eq!(canonicalize(v), 0.0);
        prop_assert_eq!(decode_f32(encode_f32(v)), 0.0);
        assert_exact_roundtrip(v);
    }

    /// Normal values roundtrip bit-exactly.
    #[test]
    fn normals_roundtrip_bit_exact(v in proptest::num::f32::NORMAL) {
        prop_assert_eq!(decode_f32(encode_f32(v)).to_bits(), v.to_bits());
    }

    /// One-ulp walks around the pack-range edges: the largest finite
    /// values, the smallest normals, and the subnormal boundary.
    #[test]
    fn pack_range_edges_roundtrip(
        anchor in select(vec![
            f32::MAX,
            f32::MIN, // most negative finite
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0,
            -1.0,
        ]),
        steps in 0u32..=3,
        down in any::<bool>(),
    ) {
        let mut bits = anchor.to_bits();
        for _ in 0..steps {
            // Walking the bit pattern walks magnitude ulp by ulp.
            bits = if down { bits.wrapping_sub(1) } else { bits.wrapping_add(1) };
        }
        assert_exact_roundtrip(f32::from_bits(bits));
    }

    /// Encoding is sign-symmetric for canonical values.
    #[test]
    fn encode_is_sign_symmetric(v in proptest::num::f32::NORMAL) {
        let pos = encode_f32(v.abs());
        let neg = encode_f32(-v.abs());
        prop_assert_eq!(pos[0], neg[0]);
        prop_assert_eq!(pos[1], neg[1]);
        prop_assert_eq!(pos[2], neg[2]);
        prop_assert_eq!(neg[3], pos[3] | 0x80);
    }
}

#[test]
fn signed_zeros_roundtrip_with_sign_bit() {
    let pz = encode_f32(0.0);
    let nz = encode_f32(-0.0);
    assert_eq!(decode_f32(pz), 0.0);
    assert_eq!(decode_f32(nz), 0.0);
    assert_eq!(pz[3] & 0x80, 0, "+0.0 must not carry the sign bit");
    assert_eq!(nz[3] & 0x80, 0x80, "-0.0 must keep the sign bit");
    assert!(decode_f32(nz).is_sign_negative());
}

#[test]
fn saturation_edges_are_exact() {
    assert_eq!(decode_f32(encode_f32(f32::INFINITY)), f32::MAX);
    assert_eq!(decode_f32(encode_f32(f32::NEG_INFINITY)), f32::MIN);
    assert_eq!(decode_f32(encode_f32(f32::NAN)), 0.0);
    // The boundary values themselves are representable and exact.
    for v in [f32::MAX, f32::MIN, f32::MIN_POSITIVE, -f32::MIN_POSITIVE] {
        assert_eq!(decode_f32(encode_f32(v)).to_bits(), v.to_bits());
    }
}
