//! # brook-numfmt — numerical format transformations for RGBA8-only GPUs
//!
//! Low-end OpenGL ES 2.0 GPUs (the paper's target class, e.g. VideoCore
//! IV and Mali-4xx) have no float textures: the only storage format is
//! RGBA8. Following the transformations of Trompouki & Kosmidis, DATE'16
//! (reference \[16\] of the Brook Auto paper, incorporated into the
//! backend in §5.4), every 32-bit float stream element is bit-packed into
//! the four 8-bit channels of one texel:
//!
//! * the **CPU side** ([`encode_f32`]/[`decode_f32`] and the bulk
//!   [`floats_to_texels`]/[`texels_to_floats`]) converts between `f32`
//!   buffers and RGBA8 texel arrays when setting up textures and reading
//!   results back — "portable performance-oriented C code" in the paper;
//! * the **GPU side** ([`GLSL_DECODE`]/[`GLSL_ENCODE`]) is GLSL ES 1.00
//!   source injected into every generated kernel, reconstructing the
//!   float from a sampled `vec4` and encoding the kernel result into
//!   `gl_FragColor` — "optimized with GLSL vector operations" in the
//!   paper.
//!
//! The encoding is IEEE-754 binary32 layout in little-endian channel
//! order (x = mantissa low byte, w = sign + exponent high bits), with two
//! deviations required by the GPU path: denormals flush to zero and
//! NaN/Inf saturate to the largest finite value. [`canonicalize`] applies
//! the same rules on the CPU so both paths agree bit-for-bit.
//!
//! ```
//! use brook_numfmt::{decode_f32, encode_f32};
//! let bytes = encode_f32(-123.456);
//! assert_eq!(decode_f32(bytes), -123.456);
//! ```

/// Largest-magnitude value the format represents; NaN and infinities
/// saturate here (GPU shaders cannot produce or store NaN portably).
pub const MAX_MAGNITUDE: f32 = f32::MAX;

/// Maps a float onto the representable set: denormals flush to zero,
/// NaN becomes zero, infinities saturate to `±`[`MAX_MAGNITUDE`].
pub fn canonicalize(v: f32) -> f32 {
    if v.is_nan() {
        return 0.0;
    }
    if v.is_infinite() {
        return MAX_MAGNITUDE.copysign(v);
    }
    if v != 0.0 && v.abs() < f32::MIN_POSITIVE {
        return 0.0f32.copysign(v);
    }
    v
}

/// Encodes a float into RGBA8 bytes (little-endian IEEE-754 after
/// [`canonicalize`]).
pub fn encode_f32(v: f32) -> [u8; 4] {
    canonicalize(v).to_le_bytes()
}

/// Decodes RGBA8 bytes produced by [`encode_f32`] or by the GPU-side
/// encoder back into a float.
pub fn decode_f32(bytes: [u8; 4]) -> f32 {
    canonicalize(f32::from_le_bytes(bytes))
}

/// Converts a byte to the channel value OpenGL delivers to a shader
/// (`n / 255`).
pub fn byte_to_channel(b: u8) -> f32 {
    b as f32 / 255.0
}

/// Converts a shader channel value back to the byte it came from.
pub fn channel_to_byte(c: f32) -> u8 {
    (c.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Bulk conversion: float buffer -> RGBA texel array ready for
/// `glTexImage2D` (one float per texel).
pub fn floats_to_texels(values: &[f32]) -> Vec<[f32; 4]> {
    values
        .iter()
        .map(|v| {
            let b = encode_f32(*v);
            [
                byte_to_channel(b[0]),
                byte_to_channel(b[1]),
                byte_to_channel(b[2]),
                byte_to_channel(b[3]),
            ]
        })
        .collect()
}

/// Bulk conversion: RGBA texels read via `glReadPixels` -> float buffer.
pub fn texels_to_floats(texels: &[[f32; 4]]) -> Vec<f32> {
    texels
        .iter()
        .map(|t| {
            decode_f32([
                channel_to_byte(t[0]),
                channel_to_byte(t[1]),
                channel_to_byte(t[2]),
                channel_to_byte(t[3]),
            ])
        })
        .collect()
}

/// GLSL ES 1.00 source of `ba_decode(vec4) -> float`: reconstructs an
/// IEEE-754 binary32 from the four sampled channels.
///
/// Exactness argument: every intermediate integer stays below `2^24`,
/// which `highp float` represents exactly; power-of-two scalings via
/// `exp2` are exact; hence the reconstruction is bit-exact for every
/// canonical (non-denormal, finite) input.
pub const GLSL_DECODE: &str = r#"
float ba_decode(vec4 rgba) {
    vec4 b = floor(rgba * 255.0 + 0.5);
    float sgn = 1.0 - 2.0 * step(128.0, b.w);
    float expo = mod(b.w, 128.0) * 2.0 + step(128.0, b.z);
    float mant = mod(b.z, 128.0) * 65536.0 + b.y * 256.0 + b.x;
    if (expo == 0.0) { return 0.0; }
    return sgn * (1.0 + mant * 0.00000011920928955078125) * exp2(expo - 127.0);
}
"#;

/// GLSL ES 1.00 source of `ba_encode(float) -> vec4`: packs a float into
/// four channels for `gl_FragColor`.
///
/// Includes the exponent-correction step that repairs `log2` rounding at
/// power-of-two boundaries, so the encoding is bit-exact for canonical
/// values.
pub const GLSL_ENCODE: &str = r#"
vec4 ba_encode(float v) {
    if (v == 0.0) { return vec4(0.0); }
    float sgn = v < 0.0 ? 128.0 : 0.0;
    float av = abs(v);
    float expo = floor(log2(av));
    if (av * exp2(-expo) >= 2.0) { expo = expo + 1.0; }
    if (av * exp2(-expo) < 1.0) { expo = expo - 1.0; }
    float be = expo + 127.0;
    if (be >= 255.0) { be = 254.0; av = exp2(128.0) - exp2(104.0); expo = 127.0; }
    if (be <= 0.0) { return vec4(0.0); }
    float mant = av * exp2(-expo) - 1.0;
    float m = floor(mant * 8388608.0 + 0.5);
    if (m >= 8388608.0) { m = 8388607.0; }
    float b0 = mod(m, 256.0);
    float b1 = mod(floor(m / 256.0), 256.0);
    float b2 = floor(m / 65536.0) + mod(be, 2.0) * 128.0;
    float b3 = sgn + floor(be / 2.0);
    return vec4(b0, b1, b2, b3) / 255.0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple_values() {
        for v in [
            0.0f32,
            1.0,
            -1.0,
            0.5,
            2.0,
            123.456,
            -9.875e10,
            3.0e-30,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            assert_eq!(decode_f32(encode_f32(v)), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn negative_zero_keeps_sign_bit() {
        let b = encode_f32(-0.0);
        assert_eq!(b[3] & 0x80, 0x80);
        assert_eq!(decode_f32(b), 0.0);
    }

    #[test]
    fn canonicalize_rules() {
        assert_eq!(canonicalize(f32::NAN), 0.0);
        assert_eq!(canonicalize(f32::INFINITY), f32::MAX);
        assert_eq!(canonicalize(f32::NEG_INFINITY), f32::MIN);
        assert_eq!(canonicalize(1.0e-45), 0.0); // denormal flushes
        assert_eq!(canonicalize(1.5), 1.5);
    }

    #[test]
    fn channel_byte_roundtrip() {
        for b in 0..=255u8 {
            assert_eq!(channel_to_byte(byte_to_channel(b)), b);
        }
    }

    #[test]
    fn bulk_roundtrip() {
        let values = vec![0.0, 1.0, -2.5, 1e10, -1e-10, 255.0, 3.15159];
        let texels = floats_to_texels(&values);
        assert_eq!(texels_to_floats(&texels), values);
    }

    #[test]
    fn glsl_snippets_are_nonempty_and_named() {
        assert!(GLSL_DECODE.contains("float ba_decode(vec4"));
        assert!(GLSL_ENCODE.contains("vec4 ba_encode(float"));
    }

    proptest! {
        #[test]
        fn roundtrip_is_identity_for_canonical(v in proptest::num::f32::NORMAL) {
            prop_assert_eq!(decode_f32(encode_f32(v)), canonicalize(v));
        }

        #[test]
        fn roundtrip_through_channels(v in -1.0e30f32..1.0e30f32) {
            let canonical = canonicalize(v);
            let texels = floats_to_texels(&[canonical]);
            let back = texels_to_floats(&texels);
            prop_assert_eq!(back[0], canonical);
        }

        #[test]
        fn canonicalize_is_idempotent(bits in any::<u32>()) {
            let v = f32::from_bits(bits);
            let c = canonicalize(v);
            prop_assert_eq!(canonicalize(c).to_bits(), c.to_bits());
        }
    }
}
