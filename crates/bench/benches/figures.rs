//! Criterion benches mirroring the paper's figures, one group per
//! figure/table artifact. Each bench point runs an application workload
//! end-to-end through the simulated target pipeline at a bench-friendly
//! size (the full paper-size sweeps live in the `fig*` binaries).

use brook_apps::binary_search::BinarySearch;
use brook_apps::binomial::Binomial;
use brook_apps::bitonic_sort::BitonicSort;
use brook_apps::black_scholes::BlackScholes;
use brook_apps::flops::Flops;
use brook_apps::floyd_warshall::FloydWarshall;
use brook_apps::image_filter::ImageFilter;
use brook_apps::mandelbrot::Mandelbrot;
use brook_apps::prefix_sum::PrefixSum;
use brook_apps::sgemm::Sgemm;
use brook_apps::spmv::Spmv;
use brook_apps::{measure, PaperApp, PlatformKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 20180624;

fn bench_app(c: &mut Criterion, group: &str, app: &dyn PaperApp, size: usize) {
    c.bench_function(&format!("{group}/{}_{size}", app.name()), |b| {
        b.iter(|| {
            let point = measure(black_box(app), PlatformKind::Target, size, SEED).expect("measure");
            black_box(point.speedup)
        })
    });
}

fn figure1(c: &mut Criterion) {
    bench_app(c, "fig1", &Flops::default(), 128);
}

fn figure2(c: &mut Criterion) {
    bench_app(c, "fig2", &Binomial, 128);
    bench_app(c, "fig2", &BlackScholes, 128);
    bench_app(c, "fig2", &PrefixSum, 128);
    bench_app(c, "fig2", &Spmv, 256);
}

fn figure3(c: &mut Criterion) {
    bench_app(c, "fig3", &BinarySearch, 128);
    bench_app(c, "fig3", &BitonicSort, 64);
    bench_app(c, "fig3", &FloydWarshall, 128);
    bench_app(c, "fig3", &ImageFilter::default(), 128);
    bench_app(c, "fig3", &Mandelbrot, 128);
    bench_app(c, "fig3", &Sgemm, 128);
}

fn figure4(c: &mut Criterion) {
    // Brook Auto vs hand-written sgemm at one size.
    let n = 128usize;
    let a = brook_apps::framework::gen_values(SEED, n * n, -1.0, 1.0);
    let b_mat = brook_apps::framework::gen_values(SEED + 1, n * n, -1.0, 1.0);
    c.bench_function("fig4/handwritten_sgemm_128", |bch| {
        bch.iter(|| {
            gles2_handwritten::sgemm(
                black_box(&a),
                black_box(&b_mat),
                n,
                gles2_sim::DeviceProfile::videocore_iv(),
                gles2_sim::DrawMode::Sampled { stride: 8 },
            )
            .expect("run")
        })
    });
    bench_app(c, "fig4", &Sgemm, 128);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = figure1, figure2, figure3, figure4
}
criterion_main!(benches);
