//! Criterion wall-clock comparison: scalar BrookIR interpreter vs the
//! lane-vectorized engine, per app (mandelbrot, sgemm, flops,
//! image_filter).
//!
//! The pass/fail gate lives in the `lanes_report` binary (CI
//! perf-smoke); this harness gives the per-iteration numbers a human
//! reads when chasing a lane-engine regression.

use brook_bench::lanes::compare_lanes;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_lanes(c: &mut Criterion) {
    // The comparison helper runs both engines (cross-checked bitwise)
    // and times them; wrap each full comparison so criterion's median
    // reflects the end-to-end measurement path.
    c.bench_function("lanes/scalar_vs_lane_all_apps", |b| {
        b.iter(|| compare_lanes().expect("comparison"));
    });
}

criterion_group!(benches, bench_lanes);
criterion_main!(benches);
