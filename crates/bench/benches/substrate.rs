//! Wall-clock regression benches for the substrate itself: the Brook
//! front-end + certification + code generation pipeline, the GLSL ES
//! interpreter, the simulated GL dispatch path, reductions and the
//! numerical format transformations.
//!
//! These complement the figure harnesses (which report *modeled* platform
//! time): if the simulator or compiler regresses, these catch it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const SGEMM_LIKE: &str = "
kernel void mm(float a[][], float b[][], out float c<>) {
    float2 p = indexof(c);
    float sum = 0.0;
    int k;
    for (k = 0; k < 64; k++) {
        sum += a[p.y][float(k)] * b[float(k)][p.x];
    }
    c = sum;
}";

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("frontend/parse_check_certify", |b| {
        b.iter(|| {
            let checked = brook_lang::parse_and_check(black_box(SGEMM_LIKE)).expect("check");
            let report = brook_cert::certify(&checked, &brook_cert::CertConfig::default());
            black_box(report.is_compliant())
        })
    });
}

fn bench_codegen(c: &mut Criterion) {
    let checked = brook_lang::parse_and_check(SGEMM_LIKE).expect("check");
    c.bench_function("codegen/generate_glsl", |b| {
        b.iter(|| {
            brook_codegen::generate_kernel_shader(
                black_box(&checked),
                "mm",
                "c",
                &brook_codegen::KernelShapes::default(),
                brook_codegen::StorageMode::Packed,
            )
            .expect("codegen")
        })
    });
    let generated = brook_codegen::generate_kernel_shader(
        &checked,
        "mm",
        "c",
        &brook_codegen::KernelShapes::default(),
        brook_codegen::StorageMode::Packed,
    )
    .expect("codegen");
    c.bench_function("glsl/compile_generated_shader", |b| {
        b.iter(|| glsl_es::compile(black_box(&generated.glsl)).expect("compile"))
    });
}

fn bench_fragment_execution(c: &mut Criterion) {
    let shader = glsl_es::compile(
        "varying vec2 v_texcoord;
         void main() {
             float s = 0.0;
             for (int i = 0; i < 32; i++) { s += v_texcoord.x * 1.001; }
             gl_FragColor = vec4(s);
         }",
    )
    .expect("compile");
    let sample = |_: i32, _: f32, _: f32| [0.0f32; 4];
    c.bench_function("glsl/fragment_32_iter_loop", |b| {
        b.iter(|| {
            let env = glsl_es::FragmentEnv {
                uniforms: &[],
                varyings: &[glsl_es::Value::Vec2([0.5, 0.5])],
                sample: &sample,
            };
            glsl_es::run_fragment(black_box(&shader), &env).expect("run")
        })
    });
}

fn bench_numfmt(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| i as f32 * 0.37 - 512.0).collect();
    c.bench_function("numfmt/encode_4096", |b| {
        b.iter(|| brook_numfmt::floats_to_texels(black_box(&values)))
    });
    let texels = brook_numfmt::floats_to_texels(&values);
    c.bench_function("numfmt/decode_4096", |b| {
        b.iter(|| brook_numfmt::texels_to_floats(black_box(&texels)))
    });
}

fn bench_dispatch(c: &mut Criterion) {
    use brook_auto::{Arg, BrookContext, DeviceProfile};
    c.bench_function("runtime/dispatch_64x64_add", |b| {
        b.iter_batched(
            || {
                let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
                let module = ctx
                    .compile("kernel void add(float a<>, float b<>, out float o<>) { o = a + b; }")
                    .expect("compile");
                let sa = ctx.stream(&[64, 64]).expect("stream");
                let sb = ctx.stream(&[64, 64]).expect("stream");
                let so = ctx.stream(&[64, 64]).expect("stream");
                ctx.write(&sa, &vec![1.0; 4096]).expect("write");
                ctx.write(&sb, &vec![2.0; 4096]).expect("write");
                (ctx, module, sa, sb, so)
            },
            |(mut ctx, module, sa, sb, so)| {
                ctx.run(
                    &module,
                    "add",
                    &[Arg::Stream(&sa), Arg::Stream(&sb), Arg::Stream(&so)],
                )
                .expect("run");
                ctx.read(&so).expect("read")
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_reduction(c: &mut Criterion) {
    use brook_auto::{BrookContext, DeviceProfile};
    c.bench_function("runtime/reduce_sum_128x128", |b| {
        b.iter_batched(
            || {
                let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
                let module = ctx
                    .compile("reduce void sum(float a<>, reduce float r<>) { r += a; }")
                    .expect("compile");
                let s = ctx.stream(&[128, 128]).expect("stream");
                ctx.write(&s, &vec![0.5; 128 * 128]).expect("write");
                (ctx, module, s)
            },
            |(mut ctx, module, s)| ctx.reduce(&module, "sum", &s).expect("reduce"),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_frontend, bench_codegen, bench_fragment_execution, bench_numfmt, bench_dispatch, bench_reduction
}
criterion_main!(benches);
