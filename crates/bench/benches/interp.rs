//! Criterion wall-clock comparison: AST tree walker vs flat BrookIR
//! interpreter, per app (mandelbrot, sgemm, flops).
//!
//! The pass/fail gate lives in the `interp_report` binary (CI
//! perf-smoke); this harness gives the per-iteration numbers a human
//! reads when chasing an interpreter regression.

use brook_bench::interp::compare_interpreters;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_interp(c: &mut Criterion) {
    // The comparison helper runs both engines (cross-checked bitwise)
    // and times them; wrap each full comparison so criterion's median
    // reflects the end-to-end measurement path.
    c.bench_function("interp/ast_vs_ir_all_apps", |b| {
        b.iter(|| compare_interpreters().expect("comparison"));
    });
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
