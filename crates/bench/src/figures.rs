//! Figure-regeneration harnesses.

use brook_apps::binary_search::BinarySearch;
use brook_apps::binomial::Binomial;
use brook_apps::bitonic_sort::BitonicSort;
use brook_apps::black_scholes::BlackScholes;
use brook_apps::flops::Flops;
use brook_apps::floyd_warshall::FloydWarshall;
use brook_apps::image_filter::ImageFilter;
use brook_apps::mandelbrot::Mandelbrot;
use brook_apps::prefix_sum::PrefixSum;
use brook_apps::sgemm::{kernel_source as sgemm_kernel, Sgemm};
use brook_apps::spmv::Spmv;
use brook_apps::{measure, MeasuredPoint, PaperApp, PlatformKind};
use brook_auto::BrookError;
use gles2_handwritten as handwritten;
use gles2_sim::DrawMode;
use perf_model::Platform;

/// Default seed for every figure (paper §6: seeded reproducible inputs).
pub const SEED: u64 = 20180624;

/// One application's speedup series on both platforms.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Application name.
    pub app: &'static str,
    /// (size, speedup) on the target — the paper's blue line.
    pub target: Vec<MeasuredPoint>,
    /// (size, speedup) on the x86 reference — the paper's grey line.
    pub reference: Vec<MeasuredPoint>,
}

fn sweep(app: &dyn PaperApp) -> Result<FigureSeries, BrookError> {
    let mut series = FigureSeries {
        app: app.name(),
        target: Vec::new(),
        reference: Vec::new(),
    };
    for size in app.sizes(PlatformKind::Target) {
        series
            .target
            .push(measure(app, PlatformKind::Target, size, SEED)?);
    }
    for size in app.sizes(PlatformKind::Reference) {
        series
            .reference
            .push(measure(app, PlatformKind::Reference, size, SEED)?);
    }
    Ok(series)
}

/// Figure 1: relative GPU/CPU capability via the flops benchmark
/// (paper: 26.7x on the target, 23x on the reference).
///
/// # Errors
/// Propagates harness failures.
pub fn fig1() -> Result<Vec<(String, f64)>, BrookError> {
    let app = Flops::default();
    let mut rows = Vec::new();
    for kind in [PlatformKind::Target, PlatformKind::Reference] {
        let point = measure(&app, kind, 512, SEED)?;
        rows.push((kind.platform().name, point.speedup));
    }
    Ok(rows)
}

/// Figure 2: the non-scalable programs — binomial (a), Black-Scholes
/// (b), prefix sum (c), SpMV (d).
///
/// # Errors
/// Propagates harness failures.
pub fn fig2() -> Result<Vec<FigureSeries>, BrookError> {
    Ok(vec![
        sweep(&Binomial)?,
        sweep(&BlackScholes)?,
        sweep(&PrefixSum)?,
        sweep(&Spmv)?,
    ])
}

/// Figure 3: the scalable programs — binary search (a), bitonic sort
/// (b), Floyd-Warshall (c), image filter (d), Mandelbrot (e), sgemm (f).
///
/// # Errors
/// Propagates harness failures.
pub fn fig3() -> Result<Vec<FigureSeries>, BrookError> {
    Ok(vec![
        sweep(&BinarySearch)?,
        sweep(&BitonicSort)?,
        sweep(&FloydWarshall)?,
        sweep(&ImageFilter::default())?,
        sweep(&Mandelbrot)?,
        sweep(&Sgemm)?,
    ])
}

/// One point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Matrix dimension.
    pub n: usize,
    /// Modeled time of the Brook Auto sgemm (seconds).
    pub brook_time: f64,
    /// Modeled time of the hand-written sgemm (seconds).
    pub handwritten_time: f64,
    /// `handwritten / brook` — the paper reports 50–90%.
    pub efficiency: f64,
}

/// Figure 4: Brook Auto code-generation/runtime efficiency against the
/// hand-written OpenGL ES 2 sgemm, plus the §6.3 productivity data
/// (lines of code).
///
/// Returns the per-size points and `(brook_loc, handwritten_loc)`.
///
/// # Errors
/// Propagates harness failures.
pub fn fig4() -> Result<(Vec<Fig4Point>, (usize, usize)), BrookError> {
    let platform = Platform::target();
    let mut points = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let brook = measure(&Sgemm, PlatformKind::Target, n, SEED)?;
        let a = brook_apps::framework::gen_values(SEED, n * n, -1.0, 1.0);
        let b = brook_apps::framework::gen_values(SEED + 1, n * n, -1.0, 1.0);
        let stride = (n / 16).clamp(2, 64) as u32;
        let hand = handwritten::sgemm(
            &a,
            &b,
            n,
            gles2_sim::DeviceProfile::videocore_iv(),
            DrawMode::Sampled { stride },
        )?;
        let brook_time = platform.gpu_time(&brook.gpu);
        let handwritten_time = platform.gpu_time(&hand.gpu);
        points.push(Fig4Point {
            n,
            brook_time,
            handwritten_time,
            efficiency: handwritten_time / brook_time,
        });
    }
    let brook_loc = sgemm_kernel(1024).lines().count() + 25; // kernel + host driver lines
    let hand_loc = handwritten::loc();
    Ok((points, (brook_loc, hand_loc)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_ratios_in_paper_band() {
        let rows = fig1().expect("fig1");
        assert_eq!(rows.len(), 2);
        for (name, ratio) in &rows {
            assert!(
                (5.0..80.0).contains(ratio),
                "{name}: capability ratio {ratio} far outside the paper's order of magnitude"
            );
        }
    }

    #[test]
    fn fig4_brook_within_sane_efficiency_band() {
        let (points, (brook_loc, hand_loc)) = fig4().expect("fig4");
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.efficiency > 0.3 && p.efficiency < 1.1,
                "n={}: hand/brook efficiency {} out of band",
                p.n,
                p.efficiency
            );
        }
        assert!(
            hand_loc > brook_loc * 3,
            "productivity gap missing: {brook_loc} vs {hand_loc}"
        );
    }
}
