//! Text rendering of figure data, in the style of the paper's plots.

use crate::figures::{Fig4Point, FigureSeries};
use std::fmt::Write;

/// Renders one application's speedup series as a table with both
/// platform columns (blue line = target, grey line = reference).
pub fn render_series(s: &FigureSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", s.app);
    let _ = writeln!(
        out,
        "{:>8} {:>18} {:>18}",
        "size", "target speedup", "reference speedup"
    );
    let sizes: Vec<usize> = s
        .reference
        .iter()
        .map(|p| p.size)
        .chain(s.target.iter().map(|p| p.size))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for size in sizes {
        let t = s.target.iter().find(|p| p.size == size);
        let r = s.reference.iter().find(|p| p.size == size);
        let fmt_opt = |p: Option<&brook_apps::MeasuredPoint>| -> String {
            match p {
                Some(p) => format!("{:.3}", p.speedup),
                None => "-".to_owned(),
            }
        };
        let _ = writeln!(out, "{:>8} {:>18} {:>18}", size, fmt_opt(t), fmt_opt(r));
    }
    out
}

/// Renders a compact speedup table for several series.
pub fn render_speedup_table(series: &[FigureSeries]) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&render_series(s));
        out.push('\n');
    }
    out
}

/// Renders Figure 4's efficiency points.
pub fn render_fig4(points: &[Fig4Point], loc: (usize, usize)) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>16} {:>22}",
        "n", "brook time", "hand-written", "brook efficiency"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>6} {:>13.4}s {:>15.4}s {:>21.1}%",
            p.n,
            p.brook_time,
            p.handwritten_time,
            p.efficiency * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nProductivity (paper §6.3): Brook sgemm {} LoC vs hand-written {} LoC ({}x)",
        loc.0,
        loc.1,
        loc.1 / loc.0.max(1)
    );
    out
}
