//! Scalar flat-IR interpreter vs lane-vectorized engine — the perf
//! headline of the lane-execution work, measured, not asserted.
//!
//! Four paper apps with very different hot-loop shapes run identical
//! workloads on two CPU contexts: the scalar BrookIR interpreter (a
//! `cpu` context with `lane_execution = false`, one element per
//! instruction-dispatch) and the lane engine (the default `cpu`
//! backend: blocks of `brook_ir::lanes::LANES` elements per dispatch,
//! structure-of-arrays register slabs, mask-predicated control flow).
//! Results are cross-checked bit-exactly while timing, so the
//! comparison can never quietly measure two different computations,
//! and every workload's kernel is asserted to be planner-admitted — a
//! planner regression that silently sent an app back to the scalar
//! path would fail the bench, not flatter it.
//!
//! `lanes_report` renders the table, writes the `BENCH_lanes.json`
//! trajectory file and **fails** if the lane engine is not strictly
//! faster on every vectorizable app — the CI perf-smoke gate against
//! lane-engine regressions.

use brook_apps::{flops::Flops, image_filter, mandelbrot, sgemm};
use brook_auto::{Arg, BrookContext, BrookError};
use std::time::Instant;

/// One app's timing comparison.
#[derive(Debug, Clone)]
pub struct LaneComparison {
    /// App name.
    pub app: &'static str,
    /// Output elements per dispatch.
    pub elements: usize,
    /// Best-of-N wall time per dispatch, scalar IR interpreter, ns.
    pub scalar_ns: u128,
    /// Best-of-N wall time per dispatch, lane engine, ns.
    pub lane_ns: u128,
}

impl LaneComparison {
    /// Scalar time over lane time (>1 means the lane engine is faster).
    pub fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.lane_ns as f64
    }
}

/// One positional kernel argument of a timed workload.
pub(crate) enum ArgSpec {
    /// Gather table (shape, data).
    Gather(Vec<usize>, Vec<f32>),
    /// Elementwise input (shape, data).
    Input(Vec<usize>, Vec<f32>),
    /// Scalar float.
    F(f32),
    /// `float4` constant.
    F4([f32; 4]),
}

pub(crate) struct Workload {
    pub(crate) app: &'static str,
    pub(crate) source: String,
    pub(crate) kernel: &'static str,
    pub(crate) args: Vec<ArgSpec>,
    pub(crate) out_shape: Vec<usize>,
}

/// The shared four-app workload suite (`tier` reuses it so both perf
/// gates measure identical dispatches).
pub(crate) fn workloads() -> Vec<Workload> {
    let mb = 64usize;
    let (x0, y0, x1, y1) = mandelbrot::REGION;
    let (dx, dy) = ((x1 - x0) / mb as f32, (y1 - y0) / mb as f32);
    let n = 32usize; // sgemm matrix dimension
    let img = 96usize; // image_filter side
    let ramp = |len: usize, k: f32| (0..len).map(|i| (i as f32 * k).sin() + 1.5).collect::<Vec<f32>>();
    let w = image_filter::GAUSSIAN;
    vec![
        Workload {
            app: "mandelbrot",
            source: mandelbrot::kernel_source(),
            kernel: "mandelbrot",
            args: vec![ArgSpec::F(x0), ArgSpec::F(y0), ArgSpec::F(dx), ArgSpec::F(dy)],
            out_shape: vec![mb, mb],
        },
        Workload {
            app: "sgemm",
            source: sgemm::kernel_source(n),
            kernel: "sgemm",
            args: vec![
                ArgSpec::Gather(vec![n, n], ramp(n * n, 0.37)),
                ArgSpec::Gather(vec![n, n], ramp(n * n, 0.11)),
            ],
            out_shape: vec![n, n],
        },
        Workload {
            app: "flops",
            source: Flops { iters: 96 }.kernel_source(),
            kernel: "flops",
            args: vec![
                ArgSpec::Input(vec![64, 64], ramp(64 * 64, 0.13)),
                ArgSpec::Input(vec![64, 64], ramp(64 * 64, 0.29)),
            ],
            out_shape: vec![64, 64],
        },
        Workload {
            app: "image_filter",
            source: image_filter::KERNEL.to_string(),
            kernel: "conv3x3",
            args: vec![
                ArgSpec::Gather(vec![img, img], ramp(img * img, 0.41)),
                ArgSpec::F4([w[0], w[1], w[2], w[3]]),
                ArgSpec::F4([w[4], w[5], w[6], w[7]]),
                ArgSpec::F(w[8]),
            ],
            out_shape: vec![img, img],
        },
    ]
}

pub(crate) struct Prepared {
    pub(crate) ctx: BrookContext,
    pub(crate) module: brook_auto::BrookModule,
    pub(crate) streams: Vec<Option<brook_auto::Stream>>,
    pub(crate) out: brook_auto::Stream,
}

pub(crate) fn prepare(w: &Workload, mut ctx: BrookContext) -> Result<Prepared, BrookError> {
    let module = ctx.compile(&w.source)?;
    let mut streams = Vec::new();
    for a in &w.args {
        match a {
            ArgSpec::Gather(shape, data) | ArgSpec::Input(shape, data) => {
                let s = ctx.stream(shape)?;
                ctx.write(&s, data)?;
                streams.push(Some(s));
            }
            _ => streams.push(None),
        }
    }
    let out = ctx.stream(&w.out_shape)?;
    Ok(Prepared {
        ctx,
        module,
        streams,
        out,
    })
}

pub(crate) fn dispatch(p: &mut Prepared, w: &Workload) -> Result<(), BrookError> {
    let mut args: Vec<Arg<'_>> = Vec::new();
    for (a, s) in w.args.iter().zip(&p.streams) {
        match (a, s) {
            (ArgSpec::Gather(..) | ArgSpec::Input(..), Some(s)) => args.push(Arg::Stream(s)),
            (ArgSpec::F(v), _) => args.push(Arg::Float(*v)),
            (ArgSpec::F4(v), _) => args.push(Arg::Float4(*v)),
            _ => unreachable!("stream argument lost its stream"),
        }
    }
    args.push(Arg::Stream(&p.out));
    p.ctx.run(&p.module, w.kernel, &args)
}

pub(crate) fn best_of(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn scalar_ir_context() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.lane_execution = false;
    ctx
}

/// Runs the comparison. Each workload executes on both engines, the
/// lane planner is asserted to have admitted the kernel, results are
/// cross-checked bit-exactly, both sides are warmed up, then each side
/// is timed best-of-5. One-time compile/plan cost is excluded by
/// construction: compilation happens once in `prepare`, and the
/// cross-check plus an explicit warm-up dispatch precede every timed
/// rep, so the reported ns are steady-state dispatches only.
///
/// # Errors
/// Compile/run failures, a planner rejection of a bench app, or an
/// engine disagreement (which would invalidate the comparison).
pub fn compare_lanes() -> Result<Vec<LaneComparison>, BrookError> {
    let mut rows = Vec::new();
    for w in workloads() {
        let mut scalar = prepare(&w, scalar_ir_context())?;
        let mut lane = prepare(&w, BrookContext::cpu())?;
        // Every bench app must actually take the lane path.
        let plan = lane
            .module
            .report
            .lane_plans
            .iter()
            .find(|p| p.kernel == w.kernel)
            .ok_or_else(|| BrookError::Usage(format!("{}: no lane plan recorded", w.app)))?;
        if !plan.vectorized {
            return Err(BrookError::Usage(format!(
                "{}: planner rejected the kernel ({}) — the bench would compare scalar to scalar",
                w.app, plan.detail
            )));
        }
        // Correctness first: both engines must agree bitwise.
        dispatch(&mut scalar, &w)?;
        dispatch(&mut lane, &w)?;
        let a = scalar.ctx.read(&scalar.out)?;
        let b = lane.ctx.read(&lane.out)?;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(BrookError::Usage(format!(
                    "{}: scalar and lane engines disagree at element {i}: {x} vs {y}",
                    w.app
                )));
            }
        }
        // Explicit warm-up so the timed reps see steady state only.
        dispatch(&mut scalar, &w)?;
        dispatch(&mut lane, &w)?;
        let reps = 5;
        let scalar_ns = best_of(reps, || {
            dispatch(&mut scalar, &w).expect("scalar dispatch");
        });
        let lane_ns = best_of(reps, || {
            dispatch(&mut lane, &w).expect("lane dispatch");
        });
        rows.push(LaneComparison {
            app: w.app,
            elements: w.out_shape.iter().product(),
            scalar_ns,
            lane_ns,
        });
    }
    Ok(rows)
}

/// Renders the comparison table.
pub fn render_lanes_table(rows: &[LaneComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Scalar BrookIR interpreter vs lane engine (L={}, best-of-5 per dispatch)\n",
        brook_ir::lanes::LANES
    ));
    out.push_str(&format!(
        "{:<14} {:>10} {:>14} {:>14} {:>9}\n",
        "app", "elements", "scalar ns", "lane ns", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>14} {:>14} {:>8.2}x\n",
            r.app,
            r.elements,
            r.scalar_ns,
            r.lane_ns,
            r.speedup()
        ));
    }
    out
}

/// Serializes the rows as the `BENCH_lanes.json` trajectory document.
pub fn lanes_json(rows: &[LaneComparison]) -> String {
    let mut out = String::from("{\n  \"bench\": \"lanes\",\n  \"unit\": \"ns/dispatch\",\n");
    out.push_str(&format!(
        "  \"lanes\": {},\n  \"rows\": [\n",
        brook_ir::lanes::LANES
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"elements\": {}, \"scalar_ns\": {}, \"lane_ns\": {}, \"speedup\": {:.4}}}{}\n",
            r.app,
            r.elements,
            r.scalar_ns,
            r.lane_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_json_is_well_formed() {
        let rows = compare_lanes().expect("comparison");
        assert_eq!(rows.len(), 4);
        let json = lanes_json(&rows);
        assert!(json.contains("\"app\": \"mandelbrot\""));
        assert!(json.contains("\"app\": \"image_filter\""));
        assert!(json.contains("\"bench\": \"lanes\""));
        let table = render_lanes_table(&rows);
        assert!(table.contains("sgemm"));
    }
}
