//! Service load harness: multi-tenant, multi-client latency measurement
//! against a live `brook-serve` instance, with a bit-exactness check
//! against serial single-tenant execution.
//!
//! This is the CI `service-smoke` substrate: [`service_load`] spins up
//! a server on an ephemeral port, hammers it from `clients` concurrent
//! connections spread over `tenants` tenants, and reports request
//! latency percentiles plus the server's own counters. Any divergence
//! from the serial oracle or any caught panic fails the run.

use brook_auto::{Arg, BrookContext};
use brook_serve::{Client, ErrorCode, Server, ServerConfig, WireArg};
use std::time::Instant;

const SOURCE: &str = "kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }";

/// Outcome of one service load run.
#[derive(Debug, Clone)]
pub struct ServiceLoadReport {
    /// Distinct tenants the clients were spread over.
    pub tenants: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Kernel launches issued per client.
    pub launches_per_client: usize,
    /// Elements per stream.
    pub elements: usize,
    /// Total requests the server reported serving.
    pub total_requests: u64,
    /// Request latency percentiles over every timed request
    /// (launches and reads), in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// Worst observed latency, ns.
    pub max_ns: u64,
    /// Panics caught by the server's shield (gate: must be 0).
    pub panics: u64,
    /// Requests shed with `Busy` (clients retried them).
    pub busy_rejected: u64,
    /// Compiled-module cache hits across tenants.
    pub cache_hits: u64,
    /// Compiled-module cache misses (compiles).
    pub cache_misses: u64,
    /// Launches that rode a coalesced same-kernel batch.
    pub coalesced_runs: u64,
    /// Every client's final stream matched the serial oracle bit for
    /// bit (gate: must be true).
    pub bit_exact: bool,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// What the service must reproduce for one client's workload.
fn serial_oracle(xs: &[f32], ys: &[f32], a: f32, launches: usize) -> Vec<f32> {
    let mut ctx = BrookContext::cpu();
    let m = ctx.compile(SOURCE).expect("oracle compile");
    let x = ctx.stream(&[xs.len()]).expect("x");
    let y = ctx.stream(&[ys.len()]).expect("y");
    let r = ctx.stream(&[xs.len()]).expect("r");
    ctx.write(&x, xs).expect("write");
    ctx.write(&y, ys).expect("write");
    for _ in 0..launches {
        ctx.run(
            &m,
            "saxpy",
            &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(a), Arg::Stream(&r)],
        )
        .expect("oracle run");
    }
    ctx.read(&r).expect("oracle read")
}

/// Runs the load test: `clients` concurrent connections spread over
/// `tenants` tenants, each issuing `launches_per_client` kernel
/// launches (plus periodic reads) against a fresh server.
///
/// # Errors
/// Server start-up or client failures, as a rendered message.
pub fn service_load(
    tenants: usize,
    clients: usize,
    launches_per_client: usize,
    elements: usize,
) -> Result<ServiceLoadReport, String> {
    assert!(tenants >= 1 && clients >= tenants);
    let server =
        Server::start("127.0.0.1:0", ServerConfig::default()).map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr();

    let workers: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || -> Result<(Vec<u64>, bool), String> {
                let tenant = format!("tenant-{}", ci % tenants);
                let mut c = Client::connect(addr, &tenant).map_err(|e| format!("connect: {e}"))?;
                let module = c.compile(SOURCE).map_err(|e| format!("compile: {e}"))?;
                let xs: Vec<f32> = (0..elements).map(|i| (ci + i) as f32 * 0.25).collect();
                let ys: Vec<f32> = (0..elements).map(|i| 1.0 + i as f32 * 0.5).collect();
                let a = 1.5 + ci as f32;
                let shape = [elements as u32];
                let x = c.create_stream(&shape, 1).map_err(|e| e.to_string())?;
                let y = c.create_stream(&shape, 1).map_err(|e| e.to_string())?;
                let r = c.create_stream(&shape, 1).map_err(|e| e.to_string())?;
                c.write(x, &xs).map_err(|e| e.to_string())?;
                c.write(y, &ys).map_err(|e| e.to_string())?;
                let args = [
                    WireArg::Stream(x),
                    WireArg::Stream(y),
                    WireArg::Float(a),
                    WireArg::Stream(r),
                ];
                let mut lat = Vec::with_capacity(launches_per_client + launches_per_client / 10);
                for i in 0..launches_per_client {
                    // A timed request spans Busy retries: shedding is
                    // part of the latency a well-behaved client sees.
                    let t0 = Instant::now();
                    loop {
                        match c.run(module, "saxpy", &args) {
                            Ok(()) => break,
                            Err(e) if e.code() == Some(ErrorCode::Busy) => {
                                std::thread::yield_now();
                            }
                            Err(e) => return Err(format!("run: {e}")),
                        }
                    }
                    lat.push(t0.elapsed().as_nanos() as u64);
                    if i % 10 == 9 {
                        let t0 = Instant::now();
                        c.read(r).map_err(|e| format!("read: {e}"))?;
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                }
                let got = c.read(r).map_err(|e| format!("read: {e}"))?;
                let want = serial_oracle(&xs, &ys, a, launches_per_client);
                Ok((lat, got == want))
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut bit_exact = true;
    for w in workers {
        let (lat, exact) = w.join().map_err(|_| "client thread panicked".to_owned())??;
        latencies.extend(lat);
        bit_exact &= exact;
    }
    latencies.sort_unstable();

    let stats = server.stats();
    let stat = |name: &str| -> u64 { stats.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v) };
    let report = ServiceLoadReport {
        tenants,
        clients,
        launches_per_client,
        elements,
        total_requests: stat("requests"),
        p50_ns: percentile(&latencies, 50.0),
        p95_ns: percentile(&latencies, 95.0),
        p99_ns: percentile(&latencies, 99.0),
        max_ns: latencies.last().copied().unwrap_or(0),
        panics: stat("panics"),
        busy_rejected: stat("busy_rejected"),
        cache_hits: stat("cache_hits"),
        cache_misses: stat("cache_misses"),
        coalesced_runs: stat("coalesced_runs"),
        bit_exact,
    };
    server.shutdown();
    Ok(report)
}

/// Human-readable summary table.
pub fn render_service_table(r: &ServiceLoadReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service load: {} tenants x {} clients x {} launches ({} elems/stream)",
        r.tenants, r.clients, r.launches_per_client, r.elements
    );
    let _ = writeln!(
        out,
        "  latency  p50 {:>9.1} us   p95 {:>9.1} us   p99 {:>9.1} us   max {:>9.1} us",
        r.p50_ns as f64 / 1e3,
        r.p95_ns as f64 / 1e3,
        r.p99_ns as f64 / 1e3,
        r.max_ns as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "  server   {} requests, {} busy-shed, {} coalesced, cache {}h/{}m, {} panics",
        r.total_requests, r.busy_rejected, r.coalesced_runs, r.cache_hits, r.cache_misses, r.panics
    );
    let _ = writeln!(
        out,
        "  bit-exact vs serial single-tenant execution: {}",
        if r.bit_exact { "yes" } else { "NO — DIVERGED" }
    );
    out
}

/// `BENCH_service.json` payload.
pub fn service_json(r: &ServiceLoadReport) -> String {
    format!(
        "{{\n  \"bench\": \"service\",\n  \"unit\": \"ns/request\",\n  \"tenants\": {},\n  \
         \"clients\": {},\n  \"launches_per_client\": {},\n  \"elements\": {},\n  \
         \"p50_ns\": {},\n  \"p95_ns\": {},\n  \"p99_ns\": {},\n  \"max_ns\": {},\n  \
         \"requests\": {},\n  \"busy_rejected\": {},\n  \"coalesced_runs\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"panics\": {},\n  \"bit_exact\": {}\n}}\n",
        r.tenants,
        r.clients,
        r.launches_per_client,
        r.elements,
        r.p50_ns,
        r.p95_ns,
        r.p99_ns,
        r.max_ns,
        r.total_requests,
        r.busy_rejected,
        r.coalesced_runs,
        r.cache_hits,
        r.cache_misses,
        r.panics,
        r.bit_exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn small_load_run_is_bit_exact_and_panic_free() {
        let r = service_load(2, 4, 20, 64).expect("load run");
        assert!(r.bit_exact);
        assert_eq!(r.panics, 0);
        assert!(r.total_requests >= (4 * 20) as u64);
        assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns && r.p99_ns <= r.max_ns);
    }
}
