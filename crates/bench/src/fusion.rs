//! Eager-vs-fused pass accounting for chained app workloads.
//!
//! Three of the paper's eleven applications extend naturally into
//! producer→consumer pipelines — exactly the shape §6's pass-splitting
//! punishes and the stream-graph planner collapses:
//!
//! * **image_filter**: Sobel-X 3×3 convolution (the ADAS kernel) →
//!   edge threshold;
//! * **mandelbrot**: escape-time iteration → normalize → gamma;
//! * **flops**: the vec4 MAD ladder → scale → offset.
//!
//! [`run_chain`] executes each chain twice on a fresh GL ES 2.0 context
//! — eagerly with real intermediates, then deferred through
//! [`BrookContext::graph`] — and reads the device's *measured* draw-call
//! counter plus the planner's byte accounting. [`render_table`] prints
//! the comparison the CI bench job surfaces, so a planner regression
//! (fusion silently stopping) is visible in plain logs.

use brook_apps::image_filter::{KERNEL as CONV_KERNEL, SOBEL_X};
use brook_apps::{flops, mandelbrot};
use brook_auto::{Arg, BrookContext, BrookError, Stream};
use gles2_sim::DeviceProfile;

/// One chained workload: its kernels and how to record it.
pub struct Chain {
    /// App the chain extends.
    pub app: &'static str,
    /// Pipeline description for the table.
    pub pipeline: &'static str,
    /// Stage launches, in order. Each stage receives the context/graph
    /// recorder, the previous stage's output and its own output stream.
    build: fn(&mut Recorder<'_, '_>) -> Result<(), BrookError>,
    /// Domain shape.
    shape: Vec<usize>,
}

/// Measured pass/byte costs of one execution mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeCost {
    /// GPU draw calls actually issued (one per pass).
    pub draw_calls: u64,
    /// Device bytes the intermediates cost (texture write + read per
    /// intermediate element); 0 when intermediates were elided.
    pub intermediate_bytes: usize,
}

/// Eager-vs-fused comparison for one chain.
#[derive(Debug, Clone)]
pub struct ChainComparison {
    /// App name.
    pub app: &'static str,
    /// Pipeline description.
    pub pipeline: &'static str,
    /// Eager execution cost.
    pub eager: ModeCost,
    /// Deferred-fused execution cost.
    pub fused: ModeCost,
    /// Final outputs of both modes (for validation).
    pub outputs: (Vec<f32>, Vec<f32>),
}

impl ChainComparison {
    /// Fraction of GPU passes fusion removed.
    pub fn pass_reduction(&self) -> f64 {
        1.0 - self.fused.draw_calls as f64 / self.eager.draw_calls as f64
    }
}

/// Either the eager context or a graph recorder — lets one chain
/// definition drive both modes.
enum Mode<'g, 'ctx> {
    Eager(&'g mut BrookContext),
    Deferred(&'g mut brook_auto::BrookGraph<'ctx>),
}

/// What a chain's `build` function records against.
pub struct Recorder<'g, 'ctx> {
    mode: Mode<'g, 'ctx>,
    shape: Vec<usize>,
    /// The chain's final output (pre-created on the context).
    out: Stream,
    /// The previous stage's output.
    prev: Option<Stream>,
    /// Round-trip bytes (one texture write + one read per element) of
    /// every intermediate this recording created — the eager cost the
    /// planner gets to elide.
    intermediate_bytes: usize,
}

impl Recorder<'_, '_> {
    /// A fresh intermediate stream: real when eager, virtual when
    /// deferred.
    fn intermediate(&mut self) -> Result<Stream, BrookError> {
        self.intermediate_bytes += self.shape.iter().product::<usize>() * 4 * 2;
        match &mut self.mode {
            Mode::Eager(ctx) => ctx.stream(&self.shape),
            Mode::Deferred(g) => g.stream(&self.shape),
        }
    }

    /// Records one stage: `mk_args` receives the stage's output stream
    /// and builds the full argument list. The final stage writes the
    /// chain output.
    fn stage(
        &mut self,
        module: &brook_auto::BrookModule,
        kernel: &str,
        last: bool,
        mk_args: impl FnOnce(&Stream, Option<&Stream>) -> Vec<OwnedArg>,
    ) -> Result<(), BrookError> {
        let out = if last { self.out } else { self.intermediate()? };
        let prev = self.prev;
        let owned = mk_args(&out, prev.as_ref());
        let args: Vec<Arg<'_>> = owned.iter().map(OwnedArg::as_arg).collect();
        match &mut self.mode {
            Mode::Eager(ctx) => ctx.run(module, kernel, &args)?,
            Mode::Deferred(g) => g.run(module, kernel, &args)?,
        }
        self.prev = Some(out);
        Ok(())
    }

    fn compile(&mut self, source: &str) -> Result<brook_auto::BrookModule, BrookError> {
        match &mut self.mode {
            Mode::Eager(ctx) => ctx.compile(source),
            Mode::Deferred(g) => g.compile(source),
        }
    }
}

/// An argument the chain definitions can build without borrowing pain.
enum OwnedArg {
    Stream(Stream),
    Float(f32),
    Float4([f32; 4]),
}

impl OwnedArg {
    fn as_arg(&self) -> Arg<'_> {
        match self {
            OwnedArg::Stream(s) => Arg::Stream(s),
            OwnedArg::Float(f) => Arg::Float(*f),
            OwnedArg::Float4(v) => Arg::Float4(*v),
        }
    }
}

const THRESH_KERNEL: &str =
    "kernel void thresh(float a<>, float lim, out float o<>) { o = (abs(a) > lim) ? 1.0 : 0.0; }";
const NORM_KERNEL: &str = "kernel void norm(float a<>, float s, out float o<>) { o = a * s; }";
const GAMMA_KERNEL: &str = "kernel void gamma(float a<>, out float o<>) { o = a * a; }";
const OFFSET_KERNEL: &str = "kernel void offset(float a<>, float b, out float o<>) { o = a + b; }";

fn sobel_threshold(r: &mut Recorder<'_, '_>) -> Result<(), BrookError> {
    let module = r.compile(&format!("{CONV_KERNEL}\n{THRESH_KERNEL}"))?;
    let w = SOBEL_X;
    r.stage(&module, "conv3x3", false, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("image preloaded")),
            OwnedArg::Float4([w[0], w[1], w[2], w[3]]),
            OwnedArg::Float4([w[4], w[5], w[6], w[7]]),
            OwnedArg::Float(w[8]),
            OwnedArg::Stream(*out),
        ]
    })?;
    r.stage(&module, "thresh", true, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("conv output")),
            OwnedArg::Float(0.5),
            OwnedArg::Stream(*out),
        ]
    })
}

fn mandelbrot_palette(r: &mut Recorder<'_, '_>) -> Result<(), BrookError> {
    let size = r.shape[0];
    let module = r.compile(&format!(
        "{}\n{NORM_KERNEL}\n{GAMMA_KERNEL}",
        mandelbrot::kernel_source()
    ))?;
    let (x0, y0, _, _) = mandelbrot::REGION;
    let (dx, dy) = (3.5 / size as f32, 2.5 / size as f32);
    r.stage(&module, "mandelbrot", false, |out, _| {
        vec![
            OwnedArg::Float(x0),
            OwnedArg::Float(y0),
            OwnedArg::Float(dx),
            OwnedArg::Float(dy),
            OwnedArg::Stream(*out),
        ]
    })?;
    r.stage(&module, "norm", false, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("counts")),
            OwnedArg::Float(1.0 / mandelbrot::MAX_ITER as f32),
            OwnedArg::Stream(*out),
        ]
    })?;
    r.stage(&module, "gamma", true, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("normalized")),
            OwnedArg::Stream(*out),
        ]
    })
}

fn flops_postprocess(r: &mut Recorder<'_, '_>) -> Result<(), BrookError> {
    let app = flops::Flops { iters: 16 };
    let module = r.compile(&format!(
        "{}\n{NORM_KERNEL}\n{OFFSET_KERNEL}",
        app.kernel_source()
    ))?;
    r.stage(&module, "flops", false, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("a preloaded")),
            OwnedArg::Stream(*prev.expect("b reuses a")),
            OwnedArg::Stream(*out),
        ]
    })?;
    r.stage(&module, "norm", false, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("flops output")),
            OwnedArg::Float(1.0e-3),
            OwnedArg::Stream(*out),
        ]
    })?;
    r.stage(&module, "offset", true, |out, prev| {
        vec![
            OwnedArg::Stream(*prev.expect("normalized")),
            OwnedArg::Float(1.0),
            OwnedArg::Stream(*out),
        ]
    })
}

/// The three chained workloads of the fusion benchmark.
pub fn chains() -> Vec<Chain> {
    vec![
        Chain {
            app: "image_filter",
            pipeline: "sobel3x3 → thresh",
            build: sobel_threshold,
            shape: vec![128, 128],
        },
        Chain {
            app: "mandelbrot",
            pipeline: "mandelbrot → norm → gamma",
            build: mandelbrot_palette,
            shape: vec![96, 96],
        },
        Chain {
            app: "flops",
            pipeline: "flops16 → norm → offset",
            build: flops_postprocess,
            shape: vec![64, 64],
        },
    ]
}

/// Deterministic input data in `[0, 1)` (the image/flops band).
fn input_data(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0)
        .collect()
}

/// Runs `chain` eagerly and deferred-fused on fresh GL ES 2.0 contexts
/// (embedded VideoCore profile), returning measured draw calls and the
/// intermediates' byte traffic.
///
/// # Errors
/// Compilation or dispatch failures on either path.
pub fn run_chain(chain: &Chain) -> Result<ChainComparison, BrookError> {
    let mut outputs = Vec::new();
    let mut costs = Vec::new();
    // Each intermediate costs one texture write plus one texture read of
    // its full extent eagerly; the fused plan's report says how much of
    // that it elided (both modes record the same intermediates, so the
    // recorder's count is the eager traffic).
    for fused in [false, true] {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let n: usize = chain.shape.iter().product();
        let first = ctx.stream(&chain.shape)?;
        ctx.write(&first, &input_data(n))?;
        let out = ctx.stream(&chain.shape)?;
        ctx.reset_counters();
        let intermediate_bytes = if fused {
            let mut g = ctx.graph();
            let mut r = Recorder {
                mode: Mode::Deferred(&mut g),
                shape: chain.shape.clone(),
                out,
                prev: Some(first),
                intermediate_bytes: 0,
            };
            (chain.build)(&mut r)?;
            let eager_traffic = r.intermediate_bytes;
            let report = g.execute()?;
            eager_traffic - report.intermediate_bytes_elided
        } else {
            let mut r = Recorder {
                mode: Mode::Eager(&mut ctx),
                shape: chain.shape.clone(),
                out,
                prev: Some(first),
                intermediate_bytes: 0,
            };
            (chain.build)(&mut r)?;
            r.intermediate_bytes
        };
        let draws = ctx.gpu_counters().draw_calls;
        let result = ctx.read(&out)?;
        outputs.push(result);
        costs.push((draws, intermediate_bytes));
    }
    Ok(ChainComparison {
        app: chain.app,
        pipeline: chain.pipeline,
        eager: ModeCost {
            draw_calls: costs[0].0,
            intermediate_bytes: costs[0].1,
        },
        fused: ModeCost {
            draw_calls: costs[1].0,
            intermediate_bytes: costs[1].1,
        },
        outputs: (outputs.swap_remove(0), outputs.swap_remove(0)),
    })
}

/// Renders the eager-vs-fused table the CI bench job prints.
pub fn render_table(rows: &[ChainComparison]) -> String {
    let mut out = String::new();
    out.push_str("chained workload                         | passes eager | passes fused | bytes moved eager | bytes moved fused | pass cut\n");
    out.push_str("-----------------------------------------+--------------+--------------+-------------------+-------------------+---------\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12}: {:<26} | {:>12} | {:>12} | {:>17} | {:>17} | {:>7.0}%\n",
            r.app,
            r.pipeline,
            r.eager.draw_calls,
            r.fused.draw_calls,
            r.eager.intermediate_bytes,
            r.fused.intermediate_bytes,
            r.pass_reduction() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: every chained workload loses ≥30% of its GPU
    /// passes to fusion, and fusion does not change the result beyond
    /// the storage tolerance (identical storage mode on both paths, so
    /// the comparison is tight).
    #[test]
    fn all_three_chains_cut_passes_by_at_least_30_percent() {
        let rows: Vec<ChainComparison> = chains()
            .iter()
            .map(|c| run_chain(c).unwrap_or_else(|e| panic!("{}: {e}", c.app)))
            .collect();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.pass_reduction() >= 0.30,
                "{}: only {:.0}% pass reduction",
                r.app,
                r.pass_reduction() * 100.0
            );
            assert!(
                r.fused.intermediate_bytes < r.eager.intermediate_bytes,
                "{}: fusion must reduce intermediate traffic",
                r.app
            );
            let (eager, fused) = &r.outputs;
            assert_eq!(eager.len(), fused.len(), "{}", r.app);
            for (i, (a, b)) in eager.iter().zip(fused).enumerate() {
                let scale = 1.0f32.max(a.abs());
                assert!(
                    (a - b).abs() <= 1e-3 * scale,
                    "{}: element {i}: eager {a} vs fused {b}",
                    r.app
                );
            }
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows: Vec<ChainComparison> = chains().iter().map(|c| run_chain(c).expect("chain")).collect();
        let table = render_table(&rows);
        assert!(table.contains("image_filter"));
        assert!(table.contains("mandelbrot"));
        assert!(table.contains("flops"));
    }
}
