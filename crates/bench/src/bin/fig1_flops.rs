//! Regenerates Figure 1: relative GPU/CPU capabilities between the
//! target platform and the reference x86 platform (flops benchmark:
//! ~2 Gflop over 1 MB of data, computation + transfer).

fn main() {
    println!("Figure 1 — relative GPU/CPU capability (flops, 512x512, 2 Gflop)");
    println!("paper: target 26.7x, reference 23x\n");
    match brook_bench::fig1() {
        Ok(rows) => {
            for (name, ratio) in rows {
                println!("{name:<50} GPU is {ratio:.1}x the CPU");
            }
        }
        Err(e) => {
            eprintln!("fig1 failed: {e}");
            std::process::exit(1);
        }
    }
}
