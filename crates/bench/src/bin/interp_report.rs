//! CI perf-smoke gate: AST tree walker vs flat BrookIR interpreter.
//!
//! Prints the per-app comparison table, writes the `BENCH_interp.json`
//! trajectory file, and exits nonzero if the IR interpreter is not
//! strictly faster than the AST walker on every benched app — the
//! BrookIR refactor's performance claim, enforced in CI.

use brook_bench::interp::{compare_interpreters, interp_json, render_interp_table};

fn main() {
    let rows = compare_interpreters().unwrap_or_else(|e| {
        eprintln!("interp comparison failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_interp_table(&rows));
    let json = interp_json(&rows);
    let path = std::path::Path::new("BENCH_interp.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());
    let mut ok = true;
    for r in &rows {
        if r.ir_ns >= r.ast_ns {
            eprintln!(
                "PERF REGRESSION: {}: IR interpreter ({} ns) is not faster than the AST walker ({} ns)",
                r.app, r.ir_ns, r.ast_ns
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("IR interpreter strictly faster on all {} apps.", rows.len());
}
