//! Ablation: what do the §5.4 numerical format transformations cost?
//!
//! Runs the same kernels on two devices that differ *only* in float
//! texture support — the real target (RGBA8 + decode/encode in every
//! kernel) versus a hypothetical VideoCore with the float extensions
//! (native storage, no transformations) — under the same timing model.
//! The ALU ratio isolates the decode/encode overhead the paper's §5.4
//! calls "computationally intensive and performance-critical".

use brook_auto::{Arg, BrookContext, DeviceProfile};
use perf_model::Platform;

fn float_capable_videocore() -> DeviceProfile {
    DeviceProfile {
        name: "hypothetical VideoCore IV + float extensions".to_owned(),
        float_textures: true,
        float_render_targets: true,
        ..DeviceProfile::videocore_iv()
    }
}

struct Workload {
    name: &'static str,
    src: String,
    inputs: usize,
    size: usize,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "elementwise add",
            src: "kernel void f(float a<>, float b<>, out float o<>) { o = a + b; }".into(),
            inputs: 2,
            size: 64,
        },
        Workload {
            name: "3x3 stencil",
            src: brook_apps::image_filter::KERNEL.to_owned(),
            inputs: 0, // special-cased below
            size: 64,
        },
        Workload {
            name: "sgemm n=64",
            src: brook_apps::sgemm::kernel_source(64),
            inputs: 0, // special-cased below
            size: 64,
        },
    ]
}

fn run(profile: DeviceProfile, w: &Workload) -> perf_model::GpuRun {
    let mut ctx = BrookContext::gles2(profile);
    let module = ctx.compile(&w.src).expect("compile");
    let n = w.size;
    let data: Vec<f32> = (0..n * n).map(|i| (i % 97) as f32 * 0.01).collect();
    match w.name {
        "elementwise add" => {
            let a = ctx.stream(&[n, n]).expect("a");
            let b = ctx.stream(&[n, n]).expect("b");
            let o = ctx.stream(&[n, n]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.write(&b, &data).expect("write");
            ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&o)])
                .expect("run");
        }
        "3x3 stencil" => {
            let img = ctx.stream(&[n, n]).expect("img");
            let o = ctx.stream(&[n, n]).expect("o");
            ctx.write(&img, &data).expect("write");
            ctx.run(
                &module,
                "conv3x3",
                &[
                    Arg::Stream(&img),
                    Arg::Float4([0.1, 0.1, 0.1, 0.1]),
                    Arg::Float4([0.2, 0.1, 0.1, 0.1]),
                    Arg::Float(0.1),
                    Arg::Stream(&o),
                ],
            )
            .expect("run");
        }
        _ => {
            let a = ctx.stream(&[n, n]).expect("a");
            let b = ctx.stream(&[n, n]).expect("b");
            let c = ctx.stream(&[n, n]).expect("c");
            ctx.write(&a, &data).expect("write");
            ctx.write(&b, &data).expect("write");
            ctx.run(
                &module,
                "sgemm",
                &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)],
            )
            .expect("run");
        }
    }
    let _ = w.inputs;
    ctx.gpu_counters()
}

fn main() {
    let platform = Platform::target();
    println!("Ablation — cost of the RGBA8 numerical format transformations (paper §5.4)\n");
    println!(
        "{:<18} {:>14} {:>14} {:>12} {:>16}",
        "workload", "packed ALU", "native ALU", "ALU ratio", "modeled slowdown"
    );
    for w in workloads() {
        let packed = run(DeviceProfile::videocore_iv(), &w);
        let native = run(float_capable_videocore(), &w);
        let ratio = packed.alu_ops as f64 / native.alu_ops as f64;
        let slowdown = platform.gpu_time(&packed) / platform.gpu_time(&native);
        println!(
            "{:<18} {:>14} {:>14} {:>12.2} {:>15.2}x",
            w.name, packed.alu_ops, native.alu_ops, ratio, slowdown
        );
    }
    println!(
        "\nReading: the packed path spends this factor more shader ALU on the same\n\
         kernel; the paper accepts it as the price of running on float-less GPUs."
    );
}
