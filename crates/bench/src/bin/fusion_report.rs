//! Prints the eager-vs-fused pass-count / bytes-moved table for the
//! three chained app workloads on the embedded GL ES 2.0 profile — the
//! CI bench job's fusion-regression tripwire.
//!
//! ```text
//! cargo run --release -p brook-bench --bin fusion_report
//! ```

use brook_bench::fusion::{chains, render_table, run_chain};

fn main() {
    let rows: Vec<_> = chains()
        .iter()
        .map(|c| run_chain(c).unwrap_or_else(|e| panic!("{}: {e}", c.app)))
        .collect();
    print!("{}", render_table(&rows));
    let worst = rows
        .iter()
        .map(|r| r.pass_reduction())
        .fold(f64::INFINITY, f64::min);
    println!("\nworst pass reduction: {:.0}%", worst * 100.0);
    if worst < 0.30 {
        eprintln!("FUSION REGRESSION: a chained workload fell below the 30% pass-reduction bar");
        std::process::exit(1);
    }
}
