//! CI resilience-cost gate: the injection hook must be (nearly) free
//! when idle.
//!
//! Times every `BENCH_simd` workload on a plain CPU context and on one
//! armed with an **empty** fault plan (hook installed, nothing ever
//! injected), prints the comparison, writes the `BENCH_fault.json`
//! trajectory file, and exits nonzero if any row exceeds the 2%
//! overhead budget (modulo the absolute noise floor — see
//! `brook_bench::resilience`). Outputs are cross-checked bitwise
//! before timing, so a hook that perturbed results fails loudly.
//!
//! The recovery ladder's *behavior* under live faults is gated
//! elsewhere: `cargo run --release -p brook-fuzz --example
//! fault_matrix` runs the randomized 11-app × 4-backend campaign.

use brook_bench::resilience::{measure_hook_overhead, overhead_json, render_overhead_table};

fn main() {
    let rows = measure_hook_overhead(25).unwrap_or_else(|e| {
        eprintln!("hook-overhead measurement failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_overhead_table(&rows));
    let json = overhead_json(&rows);
    let path = std::path::Path::new("BENCH_fault.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());
    let mut ok = true;
    for r in &rows {
        if !r.within_budget() {
            eprintln!(
                "PERF REGRESSION: {}: idle injection hook costs {:.2}% ({} ns over {} ns)",
                r.app,
                r.overhead_pct(),
                r.armed_ns.saturating_sub(r.plain_ns),
                r.plain_ns
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("idle injection hook within budget on all {} rows.", rows.len());
}
