//! Regenerates Figure 3: the scalable GPU programs — binary search (a),
//! bitonic sort (b), Floyd-Warshall (c), image filter (d), Mandelbrot
//! (e) and sgemm (f).

fn main() {
    println!("Figure 3 — scalable GPU programs (speedup = CPU time / GPU time)\n");
    match brook_bench::fig3() {
        Ok(series) => print!("{}", brook_bench::render_speedup_table(&series)),
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
