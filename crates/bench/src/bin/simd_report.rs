//! CI perf-smoke gate: Tier-2 forced scalar vs explicit SIMD.
//!
//! Prints the per-row comparison table, writes the `BENCH_simd.json`
//! trajectory file, and exits nonzero unless SIMD is strictly faster
//! than the forced-scalar tier on every row — the four paper apps plus
//! the vectorized `min` reduce. Both sides are measured in the same
//! process on the same machine, warm (compile/plan cost excluded), so
//! the gate compares steady-state dispatch cost only; the scalar side
//! is the exact configuration `BENCH_tier.json` records, making this
//! the strictly-faster-than-tier gate. On a host whose runtime
//! detection reports no SIMD at all the gate degrades to a warning —
//! there is nothing to measure, and failing would punish the portable
//! fallback for existing.

use brook_bench::simd::{compare_simd, render_simd_table, simd_json};
use brook_ir::simd::{detect, SimdLevel};

fn main() {
    if detect() == SimdLevel::Scalar {
        eprintln!("no SIMD level detected on this host; skipping the SIMD perf gate");
        return;
    }
    let rows = compare_simd().unwrap_or_else(|e| {
        eprintln!("simd comparison failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_simd_table(&rows));
    let json = simd_json(&rows);
    let path = std::path::Path::new("BENCH_simd.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());
    let mut ok = true;
    for r in &rows {
        if r.simd_ns >= r.tier_ns {
            eprintln!(
                "PERF REGRESSION: {}: SIMD ({} ns) is not faster than the scalar tier ({} ns)",
                r.app, r.simd_ns, r.tier_ns
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("SIMD strictly faster on all {} rows.", rows.len());
}
