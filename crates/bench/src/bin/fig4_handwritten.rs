//! Regenerates Figure 4 and the §6.3 productivity comparison: Brook Auto
//! sgemm vs the hand-written OpenGL ES 2 implementation.

fn main() {
    println!("Figure 4 — Brook Auto vs hand-written OpenGL ES 2 sgemm");
    println!("paper: Brook Auto reaches 50-90% of the hand-written performance\n");
    match brook_bench::fig4() {
        Ok((points, loc)) => print!("{}", brook_bench::render::render_fig4(&points, loc)),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
