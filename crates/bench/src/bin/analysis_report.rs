//! CI analysis-smoke gate: the abstract interpreter over the whole
//! paper suite.
//!
//! Prints the per-kernel fact table, writes the `ANALYSIS_facts.json`
//! artifact, runs every app end-to-end on the CPU backend (under the
//! elision `debug_assert` cross-checks when built without `--release`),
//! and exits nonzero on any spurious certification rejection or a
//! refined estimate above the AST one.

use brook_bench::analysis::{analysis_json, analyze_apps, render_analysis_table, run_apps_once};

fn main() {
    let rows = analyze_apps().unwrap_or_else(|e| {
        eprintln!("ANALYSIS SMOKE FAILED: {e}");
        std::process::exit(1);
    });
    print!("{}", render_analysis_table(&rows));
    if let Err(e) = run_apps_once() {
        eprintln!("ANALYSIS SMOKE FAILED (end-to-end): {e}");
        std::process::exit(1);
    }
    let json = analysis_json(&rows);
    let path = std::path::Path::new("ANALYSIS_facts.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\nfacts artifact written to {}", path.display());
    let proven: usize = rows.iter().map(|r| r.proven_gathers).sum();
    let total: usize = rows.iter().map(|r| r.total_gathers).sum();
    println!(
        "All {} kernels analyzed, zero spurious rejections; {proven}/{total} gathers proven.",
        rows.len()
    );
}
