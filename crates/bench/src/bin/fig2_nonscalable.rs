//! Regenerates Figure 2: the non-scalable GPU programs — binomial
//! option pricing (a), Black-Scholes (b), prefix sum (c), SpMV (d).
//! Speedups below 1 mean the CPU wins, as the paper reports for these
//! applications at the explored sizes.

fn main() {
    println!("Figure 2 — non-scalable GPU programs (speedup = CPU time / GPU time)\n");
    match brook_bench::fig2() {
        Ok(series) => print!("{}", brook_bench::render_speedup_table(&series)),
        Err(e) => {
            eprintln!("fig2 failed: {e}");
            std::process::exit(1);
        }
    }
}
