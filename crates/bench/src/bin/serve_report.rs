//! CI `service-smoke` gate: multi-tenant service load test.
//!
//! Spins up a `brook-serve` instance, drives it with 4 tenants × 8
//! concurrent clients, prints the latency summary, writes the
//! `BENCH_service.json` trajectory file, and exits nonzero if any gate
//! fails: results must be bit-exact with serial single-tenant
//! execution, the server must catch zero panics, and p99 request
//! latency must stay under the smoke ceiling.

use brook_bench::serve::{render_service_table, service_json, service_load};

/// Generous CPU-backend ceiling for one saxpy request over localhost;
/// a p99 above this means the service is queueing pathologically.
const P99_CEILING_NS: u64 = 250_000_000;

fn main() {
    let report = service_load(4, 8, 200, 256).unwrap_or_else(|e| {
        eprintln!("service load failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_service_table(&report));
    let json = service_json(&report);
    let path = std::path::Path::new("BENCH_service.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());

    let mut ok = true;
    if !report.bit_exact {
        eprintln!("GATE FAILED: service results diverged from serial single-tenant execution");
        ok = false;
    }
    if report.panics != 0 {
        eprintln!("GATE FAILED: server caught {} panics (must be 0)", report.panics);
        ok = false;
    }
    if report.p99_ns > P99_CEILING_NS {
        eprintln!(
            "GATE FAILED: p99 latency {} ns exceeds the {} ns smoke ceiling",
            report.p99_ns, P99_CEILING_NS
        );
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "Service gates passed: bit-exact, zero panics, p99 {:.1} us <= ceiling.",
        report.p99_ns as f64 / 1e3
    );
}
