//! CI perf-smoke gate: scalar BrookIR interpreter vs lane engine.
//!
//! Prints the per-app comparison table, writes the `BENCH_lanes.json`
//! trajectory file, and exits nonzero if the lane engine is not
//! strictly faster than the scalar IR interpreter on every vectorizable
//! benched app — the lane-execution performance claim, enforced in CI.

use brook_bench::lanes::{compare_lanes, lanes_json, render_lanes_table};

fn main() {
    let rows = compare_lanes().unwrap_or_else(|e| {
        eprintln!("lane comparison failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_lanes_table(&rows));
    let json = lanes_json(&rows);
    let path = std::path::Path::new("BENCH_lanes.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());
    let mut ok = true;
    for r in &rows {
        if r.lane_ns >= r.scalar_ns {
            eprintln!(
                "PERF REGRESSION: {}: lane engine ({} ns) is not faster than the scalar IR \
                 interpreter ({} ns)",
                r.app, r.lane_ns, r.scalar_ns
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("Lane engine strictly faster on all {} apps.", rows.len());
}
