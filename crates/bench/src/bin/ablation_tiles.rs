//! Ablation: tile/unroll factor of the hand-written sgemm.
//!
//! The paper reports Figure 4 "for the optimal tile size for each
//! version (16x16 for Brook Auto and 8x8 for the hand-written one)".
//! This sweep regenerates the tile-size exploration a hand-optimizing
//! engineer would run: per-iteration loop overhead falls as the unroll
//! factor grows, with diminishing returns.

use brook_apps::framework::gen_values;
use gles2_handwritten::sgemm_with_tile;
use gles2_sim::{DeviceProfile, DrawMode};
use perf_model::Platform;

fn main() {
    let n = 256usize;
    let platform = Platform::target();
    let a = gen_values(1, n * n, -1.0, 1.0);
    let b = gen_values(2, n * n, -1.0, 1.0);
    println!("Ablation — hand-written sgemm tile factor (n = {n})\n");
    println!(
        "{:>6} {:>16} {:>14} {:>14}",
        "tile", "ALU/iteration", "modeled time", "vs tile=1"
    );
    let mut base = None;
    for tile in [1usize, 2, 4, 8, 16] {
        let run = sgemm_with_tile(
            &a,
            &b,
            n,
            DeviceProfile::videocore_iv(),
            DrawMode::Sampled { stride: 16 },
            tile,
        )
        .expect("run");
        let per_iter = run.gpu.alu_ops as f64 / (n as f64).powi(3);
        let t = platform.gpu_time(&run.gpu);
        let speedup = match base {
            None => {
                base = Some(t);
                1.0
            }
            Some(b0) => b0 / t,
        };
        println!("{:>6} {:>16.1} {:>13.4}s {:>13.2}x", tile, per_iter, t, speedup);
    }
    println!("\nReading: unrolling amortizes the loop's condition/step overhead; the\npaper's hand-written optimum (8) sits where returns flatten.");
}
