//! CI perf-smoke gate: lane engine vs Tier-2 closure chains.
//!
//! Prints the per-app comparison table, writes the `BENCH_tier.json`
//! trajectory file, and exits nonzero if Tier-2 is not strictly faster
//! than the lane engine on every benched app — the closure-threading
//! performance claim, enforced in CI. Both engines are measured in the
//! same process on the same machine, warm (compile/plan/tier-compile
//! excluded), so the gate compares steady-state dispatch cost only.

use brook_bench::tier::{compare_tiers, render_tier_table, tier_json};

fn main() {
    let rows = compare_tiers().unwrap_or_else(|e| {
        eprintln!("tier comparison failed: {e}");
        std::process::exit(2);
    });
    print!("{}", render_tier_table(&rows));
    let json = tier_json(&rows);
    let path = std::path::Path::new("BENCH_tier.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\ntrajectory written to {}", path.display());
    let mut ok = true;
    for r in &rows {
        if r.tier_ns >= r.lane_ns {
            eprintln!(
                "PERF REGRESSION: {}: Tier-2 ({} ns) is not faster than the lane engine ({} ns)",
                r.app, r.tier_ns, r.lane_ns
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("Tier-2 strictly faster on all {} apps.", rows.len());
}
