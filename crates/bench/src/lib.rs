//! # brook-bench — regenerates every table and figure of the paper
//!
//! One harness per figure of the evaluation section (§6):
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Figure 1 (GPU/CPU capability, flops) | [`figures::fig1`] | `fig1_flops` |
//! | Figure 2 (non-scalable programs) | [`figures::fig2`] | `fig2_nonscalable` |
//! | Figure 3 (scalable programs) | [`figures::fig3`] | `fig3_scalable` |
//! | Figure 4 + §6.3 (hand-written comparison, productivity) | [`figures::fig4`] | `fig4_handwritten` |
//! | AST-walk vs BrookIR interpreter (perf-smoke) | [`interp::compare_interpreters`] | `interp_report` |
//!
//! Run all of them with `cargo run --release -p brook-bench --bin <name>`.
//! Criterion benches in `benches/` wall-clock the substrate itself
//! (compiler, simulator, reductions) as a regression harness.

pub mod analysis;
pub mod figures;
pub mod fusion;
pub mod interp;
pub mod lanes;
pub mod render;
pub mod resilience;
pub mod serve;
pub mod simd;
pub mod tier;

pub use analysis::{analysis_json, analyze_apps, render_analysis_table, run_apps_once, KernelRow};
pub use figures::{fig1, fig2, fig3, fig4, Fig4Point, FigureSeries};
pub use fusion::{chains, run_chain, ChainComparison};
pub use interp::{compare_interpreters, interp_json, render_interp_table, InterpComparison};
pub use render::{render_series, render_speedup_table};
pub use resilience::{measure_hook_overhead, overhead_json, render_overhead_table, HookOverheadRow};
pub use serve::{render_service_table, service_json, service_load, ServiceLoadReport};
pub use simd::{compare_simd, render_simd_table, simd_json, SimdComparison};
pub use tier::{compare_tiers, render_tier_table, tier_json, TierComparison};
