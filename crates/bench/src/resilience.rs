//! Injection-hook overhead: what the resilience machinery costs when
//! nothing is injected.
//!
//! Arming a context with an **empty** [`FaultPlan`] installs the fault
//! injector on the dispatch path — every launch consults the schedule
//! (and finds nothing) — without changing a single computed bit. That
//! is exactly the configuration a production deployment pays for when
//! fault injection is compiled in but idle, so the gate here bounds it:
//! the armed context must dispatch within [`MAX_OVERHEAD_PCT`] of the
//! plain context on every `BENCH_simd` workload, modulo an absolute
//! per-dispatch noise floor ([`NOISE_FLOOR_NS`]) that keeps the 2%
//! criterion meaningful on dispatches where timing jitter on a shared
//! box exceeds any real hook cost.
//!
//! ## Estimator
//!
//! A shared host drifts by tens of percent over a sampling window
//! (frequency scaling, noisy neighbors), which would drown a 2% signal
//! if each side were timed in its own block. The two contexts are
//! therefore sampled as **interleaved pairs** — plain and armed
//! dispatches alternating, with the in-pair order flipped every round
//! to cancel order bias — and the gate statistic is the **median of
//! the paired deltas** `armed − plain`: burst noise lands on both
//! sides of a pair and cancels; a real per-launch hook cost survives
//! in every pair. The budget additionally tolerates a median delta
//! within 3× the deltas' own median absolute deviation: a shift that
//! does not stand out of the run's measured noise is noise, while a
//! real regression (a constant per-launch cost) moves the median
//! without widening the spread and still fails. Outputs are
//! cross-checked bitwise before timing, so a hook that perturbed
//! results would fail before any timing happened.

use crate::lanes::{dispatch, prepare, workloads};
use brook_auto::{BrookContext, BrookError, FaultPlan};
use std::time::Instant;

/// Relative overhead budget for the armed-but-idle injection hook.
pub const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Absolute per-dispatch noise floor (ns). Below this delta the two
/// timings are indistinguishable on a busy host, whatever the ratio
/// says: 2% of a 100 µs dispatch is 2 µs, well under scheduler jitter.
pub const NOISE_FLOOR_NS: i128 = 25_000;

/// One workload's plain-vs-armed timing.
#[derive(Debug, Clone)]
pub struct HookOverheadRow {
    /// App name (the `BENCH_simd` workload suite).
    pub app: &'static str,
    /// Output elements per dispatch.
    pub elements: usize,
    /// Median ns per dispatch, no fault plan installed.
    pub plain_ns: u128,
    /// Median ns per dispatch, empty fault plan armed.
    pub armed_ns: u128,
    /// Median of the paired deltas `armed − plain` (ns; negative means
    /// the armed side measured faster, i.e. the difference is noise).
    pub delta_ns: i128,
    /// Median absolute deviation of the paired deltas (ns) — the run's
    /// own noise yardstick.
    pub mad_ns: i128,
}

impl HookOverheadRow {
    /// The median paired delta as a percentage of the plain median.
    pub fn overhead_pct(&self) -> f64 {
        self.delta_ns as f64 / self.plain_ns as f64 * 100.0
    }

    /// Whether this row passes the gate: the median paired delta is
    /// within [`MAX_OVERHEAD_PCT`] of the plain median, under the
    /// absolute [`NOISE_FLOOR_NS`], or within 3× the deltas' own
    /// median absolute deviation (statistically indistinguishable from
    /// this run's noise).
    pub fn within_budget(&self) -> bool {
        let slack = (self.plain_ns as f64 * (MAX_OVERHEAD_PCT / 100.0)) as i128;
        self.delta_ns <= slack.max(NOISE_FLOOR_NS).max(3 * self.mad_ns)
    }
}

fn median<T: Copy + Ord>(samples: &mut [T]) -> T {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times every `BENCH_simd` workload on two identical CPU contexts —
/// one plain, one with an empty [`FaultPlan`] armed — after a bitwise
/// cross-check proving the idle hook changes nothing. `reps` is the
/// number of interleaved sample pairs per workload (odd keeps the
/// median a real sample).
///
/// # Errors
/// Compile/run failures, or any bitwise disagreement between the plain
/// and armed contexts (which would mean the "idle" hook is not idle).
pub fn measure_hook_overhead(reps: usize) -> Result<Vec<HookOverheadRow>, BrookError> {
    let mut rows = Vec::new();
    for w in workloads() {
        let mut plain = prepare(&w, BrookContext::cpu())?;
        let mut armed_ctx = BrookContext::cpu();
        // An empty plan: the injector is installed and consulted on
        // every launch, and never fires.
        armed_ctx.set_fault_plan(FaultPlan::new());
        let mut armed = prepare(&w, armed_ctx)?;
        // Correctness first (doubles as the first warm-up round).
        dispatch(&mut plain, &w)?;
        dispatch(&mut armed, &w)?;
        let a = plain.ctx.read(&plain.out)?;
        let b = armed.ctx.read(&armed.out)?;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(BrookError::Usage(format!(
                    "{}: the idle injection hook changed element {i}: {x} vs {y}",
                    w.app
                )));
            }
        }
        // One more warm-up so the timed pairs see steady state only.
        dispatch(&mut plain, &w)?;
        dispatch(&mut armed, &w)?;
        let mut plain_samples = Vec::with_capacity(reps);
        let mut armed_samples = Vec::with_capacity(reps);
        let mut deltas = Vec::with_capacity(reps);
        let time_one = |p: &mut crate::lanes::Prepared, w| -> Result<u128, BrookError> {
            let t = Instant::now();
            dispatch(p, w)?;
            Ok(t.elapsed().as_nanos())
        };
        for round in 0..reps.max(1) {
            // Flip the in-pair order every round to cancel order bias.
            let (p_ns, a_ns) = if round % 2 == 0 {
                let p = time_one(&mut plain, &w)?;
                let a = time_one(&mut armed, &w)?;
                (p, a)
            } else {
                let a = time_one(&mut armed, &w)?;
                let p = time_one(&mut plain, &w)?;
                (p, a)
            };
            plain_samples.push(p_ns);
            armed_samples.push(a_ns);
            deltas.push(a_ns as i128 - p_ns as i128);
        }
        let delta_ns = median(&mut deltas);
        let mut abs_dev: Vec<i128> = deltas.iter().map(|d| (d - delta_ns).abs()).collect();
        rows.push(HookOverheadRow {
            app: w.app,
            elements: w.out_shape.iter().product(),
            plain_ns: median(&mut plain_samples),
            armed_ns: median(&mut armed_samples),
            delta_ns,
            mad_ns: median(&mut abs_dev),
        });
    }
    Ok(rows)
}

/// Renders the overhead table.
pub fn render_overhead_table(rows: &[HookOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Injection-hook overhead, fault-free (budget {MAX_OVERHEAD_PCT}% of the plain median \
         or <{} µs paired delta)\n",
        NOISE_FLOOR_NS / 1_000
    ));
    out.push_str(&format!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>10} {:>10}\n",
        "app", "elements", "plain ns", "armed ns", "Δ median", "Δ MAD", "overhead"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>14} {:>14} {:>12} {:>10} {:>9.2}%\n",
            r.app,
            r.elements,
            r.plain_ns,
            r.armed_ns,
            r.delta_ns,
            r.mad_ns,
            r.overhead_pct()
        ));
    }
    out
}

/// Serializes the rows as the `BENCH_fault.json` trajectory document.
pub fn overhead_json(rows: &[HookOverheadRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fault_hook_overhead\",\n  \"unit\": \"ns/dispatch\",\n");
    out.push_str(&format!(
        "  \"budget_pct\": {MAX_OVERHEAD_PCT},\n  \"noise_floor_ns\": {NOISE_FLOOR_NS},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"elements\": {}, \"plain_ns\": {}, \"armed_ns\": {}, \
             \"delta_ns\": {}, \"mad_ns\": {}, \"overhead_pct\": {:.4}}}{}\n",
            r.app,
            r.elements,
            r.plain_ns,
            r.armed_ns,
            r.delta_ns,
            r.mad_ns,
            r.overhead_pct(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_hook_is_bit_transparent_and_rows_cover_the_suite() {
        // One pair per row: this test asserts transparency and shape,
        // not timing — the release-mode gate lives in `fault_report`.
        let rows = measure_hook_overhead(1).expect("measurement");
        assert_eq!(rows.len(), 4);
        let json = overhead_json(&rows);
        assert!(json.contains("\"bench\": \"fault_hook_overhead\""));
        assert!(json.contains("\"app\": \"sgemm\""));
        let table = render_overhead_table(&rows);
        assert!(table.contains("mandelbrot"));
        assert!(table.contains("overhead"));
    }

    #[test]
    fn budget_check_honors_floor_percentage_and_noise() {
        let row = |plain_ns: u128, delta_ns: i128, mad_ns: i128| HookOverheadRow {
            app: "x",
            elements: 1,
            plain_ns,
            armed_ns: (plain_ns as i128 + delta_ns) as u128,
            delta_ns,
            mad_ns,
        };
        assert!(
            row(100_000, NOISE_FLOOR_NS, 0).within_budget(),
            "delta at the floor passes"
        );
        assert!(
            !row(100_000, NOISE_FLOOR_NS + 1, 0).within_budget(),
            "tiny dispatch, over floor"
        );
        assert!(
            !row(10_000_000, 300_000, 10_000).within_budget(),
            "3% of 10 ms, quiet run fails"
        );
        assert!(
            row(10_000_000, 150_000, 0).within_budget(),
            "1.5% of 10 ms passes"
        );
        assert!(
            row(10_000_000, -50_000, 0).within_budget(),
            "armed faster is always noise"
        );
        assert!(
            row(10_000_000, 300_000, 150_000).within_budget(),
            "3% within 3x the run's own MAD is not a detectable shift"
        );
        assert!(
            !row(10_000_000, 5_000_000, 200_000).within_budget(),
            "a 50% shift stands out of any plausible noise"
        );
    }

    #[test]
    fn median_is_robust_to_burst_outliers() {
        let mut deltas: Vec<i128> = vec![1_000, 2_000, 1_500, 9_000_000, 800];
        assert_eq!(median(&mut deltas), 1_500);
    }
}
