//! Lane engine vs Tier-2 closure-threaded engine — the perf headline
//! of the closure-threading work, measured, not asserted.
//!
//! The same four paper apps as `lanes` run identical workloads on two
//! CPU contexts: the lane engine alone (a `cpu` context with
//! `tier_execution = false`: blocks of `LANES` elements, but a full
//! decoded-op dispatch per op per block) and the Tier-2 closure chains
//! (the default `cpu` backend: pre-compiled monomorphized closures,
//! superword-fused pairs, hoisted uniform subchains). Results are
//! cross-checked bit-exactly while timing, and every workload's kernel
//! is asserted to be tier-admitted — a compiler regression that
//! silently sent an app back to the lane engine would fail the bench,
//! not flatter it.
//!
//! One-time compile/plan/tier-compile cost is **excluded** from the
//! per-dispatch numbers: compilation happens once in `prepare`, the
//! bit-exact cross-check plus an explicit warm-up dispatch run before
//! any timing, and best-of-N then times steady-state executions only.
//!
//! `tier_report` renders the table, writes the `BENCH_tier.json`
//! trajectory file and **fails** if Tier-2 is not strictly faster than
//! the lane engine on every benched app — the CI perf-smoke gate
//! against tier-engine regressions.

use crate::lanes::{best_of, dispatch, prepare, workloads, Workload};
use brook_auto::{BrookContext, BrookError};

/// One app's timing comparison.
#[derive(Debug, Clone)]
pub struct TierComparison {
    /// App name.
    pub app: &'static str,
    /// Output elements per dispatch.
    pub elements: usize,
    /// Best-of-N wall time per dispatch, lane engine (tier off), ns.
    pub lane_ns: u128,
    /// Best-of-N wall time per dispatch, Tier-2 closure chains, ns.
    pub tier_ns: u128,
}

impl TierComparison {
    /// Lane time over tier time (>1 means Tier-2 is faster).
    pub fn speedup(&self) -> f64 {
        self.lane_ns as f64 / self.tier_ns as f64
    }
}

fn lane_only_context() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.tier_execution = false;
    ctx.simd_mode = brook_ir::simd::SimdMode::Off;
    ctx
}

/// Tier-2 closures with explicit SIMD forced off: this bench measures
/// the closure-threading win in isolation, so BENCH_tier.json keeps
/// its lanes-vs-tier meaning now that a SIMD layer exists underneath
/// (that delta is BENCH_simd.json's job, in the `simd` module).
fn tier_scalar_context() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.simd_mode = brook_ir::simd::SimdMode::Off;
    ctx
}

/// Asserts a workload's kernel was tier-admitted and returns the
/// recorded compile summary.
fn require_tier_plan(w: &Workload, module: &brook_auto::BrookModule) -> Result<(), BrookError> {
    let plan = module
        .report
        .tier_plans
        .iter()
        .find(|p| p.kernel == w.kernel)
        .ok_or_else(|| BrookError::Usage(format!("{}: no tier plan recorded", w.app)))?;
    if !plan.compiled {
        return Err(BrookError::Usage(format!(
            "{}: tier compiler rejected the kernel ({}) — the bench would compare lanes to lanes",
            w.app, plan.detail
        )));
    }
    Ok(())
}

/// Runs the comparison. Each workload executes on both engines, the
/// tier compiler is asserted to have admitted the kernel, results are
/// cross-checked bit-exactly, both sides are warmed up, then each side
/// is timed best-of-5 (steady-state dispatches only; compile and tier
/// compilation happened once, before timing).
///
/// # Errors
/// Compile/run failures, a tier rejection of a bench app, or an engine
/// disagreement (which would invalidate the comparison).
pub fn compare_tiers() -> Result<Vec<TierComparison>, BrookError> {
    let mut rows = Vec::new();
    for w in workloads() {
        let mut lane = prepare(&w, lane_only_context())?;
        let mut tier = prepare(&w, tier_scalar_context())?;
        // Every bench app must actually take the Tier-2 path (and the
        // lane-only context must really have it disabled).
        require_tier_plan(&w, &tier.module)?;
        if tier
            .module
            .report
            .lane_plans
            .iter()
            .any(|p| p.kernel == w.kernel && !p.vectorized)
        {
            return Err(BrookError::Usage(format!(
                "{}: lane planner rejected the kernel under the tier context",
                w.app
            )));
        }
        // Correctness first: both engines must agree bitwise. These
        // dispatches double as the first warm-up round.
        dispatch(&mut lane, &w)?;
        dispatch(&mut tier, &w)?;
        let a = lane.ctx.read(&lane.out)?;
        let b = tier.ctx.read(&tier.out)?;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(BrookError::Usage(format!(
                    "{}: lane and tier engines disagree at element {i}: {x} vs {y}",
                    w.app
                )));
            }
        }
        // Explicit warm-up so the timed reps see steady state only.
        dispatch(&mut lane, &w)?;
        dispatch(&mut tier, &w)?;
        let reps = 5;
        let lane_ns = best_of(reps, || {
            dispatch(&mut lane, &w).expect("lane dispatch");
        });
        let tier_ns = best_of(reps, || {
            dispatch(&mut tier, &w).expect("tier dispatch");
        });
        rows.push(TierComparison {
            app: w.app,
            elements: w.out_shape.iter().product(),
            lane_ns,
            tier_ns,
        });
    }
    Ok(rows)
}

/// Renders the comparison table.
pub fn render_tier_table(rows: &[TierComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Lane engine vs Tier-2 closure chains (L={}, best-of-5 per dispatch, warm)\n",
        brook_ir::lanes::LANES
    ));
    out.push_str(&format!(
        "{:<14} {:>10} {:>14} {:>14} {:>9}\n",
        "app", "elements", "lane ns", "tier ns", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>14} {:>14} {:>8.2}x\n",
            r.app,
            r.elements,
            r.lane_ns,
            r.tier_ns,
            r.speedup()
        ));
    }
    let geo: f64 = rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len().max(1) as f64;
    out.push_str(&format!("geomean speedup: {:.2}x\n", geo.exp()));
    out
}

/// Serializes the rows as the `BENCH_tier.json` trajectory document.
pub fn tier_json(rows: &[TierComparison]) -> String {
    let mut out = String::from("{\n  \"bench\": \"tier\",\n  \"unit\": \"ns/dispatch\",\n");
    out.push_str(&format!(
        "  \"lanes\": {},\n  \"rows\": [\n",
        brook_ir::lanes::LANES
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"elements\": {}, \"lane_ns\": {}, \"tier_ns\": {}, \"speedup\": {:.4}}}{}\n",
            r.app,
            r.elements,
            r.lane_ns,
            r.tier_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_json_is_well_formed() {
        let rows = compare_tiers().expect("comparison");
        assert_eq!(rows.len(), 4);
        let json = tier_json(&rows);
        assert!(json.contains("\"app\": \"mandelbrot\""));
        assert!(json.contains("\"app\": \"image_filter\""));
        assert!(json.contains("\"bench\": \"tier\""));
        let table = render_tier_table(&rows);
        assert!(table.contains("sgemm"));
        assert!(table.contains("geomean"));
    }
}
