//! AST-walk vs flat-IR interpreter comparison — the perf headline of
//! the BrookIR refactor, measured, not asserted.
//!
//! Three paper apps with very different hot-loop shapes run identical
//! workloads on two CPU contexts: the legacy AST tree walker
//! ([`brook_auto::BrookContext::cpu_ast_oracle`], hash-map scopes and
//! `Box`-chasing per node) and the flat IR interpreter (the default
//! `cpu` backend: preallocated register frame, direct `pc` dispatch).
//! Results are cross-checked bit-exactly while timing, so the
//! comparison can never quietly measure two different computations.
//!
//! `interp_report` renders the table, writes the `BENCH_interp.json`
//! trajectory file and **fails** if the IR interpreter is not strictly
//! faster on every app — the CI perf-smoke gate against interpreter
//! regressions.

use brook_apps::{flops::Flops, mandelbrot, sgemm};
use brook_auto::{Arg, BrookContext, BrookError};
use std::time::Instant;

/// One app's timing comparison.
#[derive(Debug, Clone)]
pub struct InterpComparison {
    /// App name.
    pub app: &'static str,
    /// Output elements per dispatch.
    pub elements: usize,
    /// Best-of-N wall time per dispatch, AST tree walker, nanoseconds.
    pub ast_ns: u128,
    /// Best-of-N wall time per dispatch, flat IR interpreter,
    /// nanoseconds.
    pub ir_ns: u128,
}

impl InterpComparison {
    /// AST time over IR time (>1 means the IR interpreter is faster).
    pub fn speedup(&self) -> f64 {
        self.ast_ns as f64 / self.ir_ns as f64
    }
}

/// A timed workload: kernel source plus a launch recipe.
struct Workload {
    app: &'static str,
    source: String,
    /// (shape, per-stream data) for the elementwise inputs.
    inputs: Vec<(Vec<usize>, Vec<f32>)>,
    /// Gather tables (shape, data).
    gathers: Vec<(Vec<usize>, Vec<f32>)>,
    scalars: Vec<f32>,
    kernel: &'static str,
    out_shape: Vec<usize>,
}

fn workloads() -> Vec<Workload> {
    let mb = 48usize;
    let (x0, y0, x1, y1) = mandelbrot::REGION;
    let (dx, dy) = ((x1 - x0) / mb as f32, (y1 - y0) / mb as f32);
    let n = 24usize; // sgemm matrix dimension
    let ramp = |len: usize, k: f32| (0..len).map(|i| (i as f32 * k).sin() + 1.5).collect::<Vec<f32>>();
    vec![
        Workload {
            app: "mandelbrot",
            source: mandelbrot::kernel_source(),
            inputs: vec![],
            gathers: vec![],
            scalars: vec![x0, y0, dx, dy],
            kernel: "mandelbrot",
            out_shape: vec![mb, mb],
        },
        Workload {
            app: "sgemm",
            source: sgemm::kernel_source(n),
            inputs: vec![],
            gathers: vec![(vec![n, n], ramp(n * n, 0.37)), (vec![n, n], ramp(n * n, 0.11))],
            scalars: vec![],
            kernel: "sgemm",
            out_shape: vec![n, n],
        },
        Workload {
            app: "flops",
            source: Flops { iters: 96 }.kernel_source(),
            inputs: vec![
                (vec![64, 64], ramp(64 * 64, 0.13)),
                (vec![64, 64], ramp(64 * 64, 0.29)),
            ],
            gathers: vec![],
            scalars: vec![],
            kernel: "flops",
            out_shape: vec![64, 64],
        },
    ]
}

struct Prepared {
    ctx: BrookContext,
    module: brook_auto::BrookModule,
    args_spec: ArgsSpec,
    out: brook_auto::Stream,
}

/// Ordered argument recipe (streams held by the context).
struct ArgsSpec {
    inputs: Vec<brook_auto::Stream>,
    gathers: Vec<brook_auto::Stream>,
    scalars: Vec<f32>,
}

fn prepare(w: &Workload, mut ctx: BrookContext) -> Result<Prepared, BrookError> {
    let module = ctx.compile(&w.source)?;
    let mut inputs = Vec::new();
    for (shape, data) in &w.inputs {
        let s = ctx.stream(shape)?;
        ctx.write(&s, data)?;
        inputs.push(s);
    }
    let mut gathers = Vec::new();
    for (shape, data) in &w.gathers {
        let s = ctx.stream(shape)?;
        ctx.write(&s, data)?;
        gathers.push(s);
    }
    let out = ctx.stream(&w.out_shape)?;
    Ok(Prepared {
        ctx,
        module,
        args_spec: ArgsSpec {
            inputs,
            gathers,
            scalars: w.scalars.clone(),
        },
        out,
    })
}

/// One dispatch of the prepared workload.
fn dispatch(p: &mut Prepared, kernel: &str) -> Result<(), BrookError> {
    // Canonical parameter order matches the workload sources: gathers,
    // then elementwise inputs, then scalars, then the output.
    let mut args: Vec<Arg<'_>> = Vec::new();
    for g in &p.args_spec.gathers {
        args.push(Arg::Stream(g));
    }
    for s in &p.args_spec.inputs {
        args.push(Arg::Stream(s));
    }
    for v in &p.args_spec.scalars {
        args.push(Arg::Float(*v));
    }
    args.push(Arg::Stream(&p.out));
    p.ctx.run(&p.module, kernel, &args)
}

fn best_of(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// Runs the comparison. Each workload executes on both interpreters,
/// results are cross-checked bit-exactly, then each side is timed
/// best-of-5.
///
/// # Errors
/// Compile/run failures, or an interpreter disagreement (which would
/// invalidate the comparison).
pub fn compare_interpreters() -> Result<Vec<InterpComparison>, BrookError> {
    let mut rows = Vec::new();
    for w in workloads() {
        let mut ast = prepare(&w, BrookContext::cpu_ast_oracle())?;
        let mut ir = prepare(&w, BrookContext::cpu())?;
        // Correctness first: both engines must agree bitwise.
        dispatch(&mut ast, w.kernel)?;
        dispatch(&mut ir, w.kernel)?;
        let a = ast.ctx.read(&ast.out)?;
        let b = ir.ctx.read(&ir.out)?;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(BrookError::Usage(format!(
                    "{}: AST and IR interpreters disagree at element {i}: {x} vs {y}",
                    w.app
                )));
            }
        }
        let reps = 5;
        let ast_ns = best_of(reps, || {
            dispatch(&mut ast, w.kernel).expect("ast dispatch");
        });
        let ir_ns = best_of(reps, || {
            dispatch(&mut ir, w.kernel).expect("ir dispatch");
        });
        rows.push(InterpComparison {
            app: w.app,
            elements: w.out_shape.iter().product(),
            ast_ns,
            ir_ns,
        });
    }
    Ok(rows)
}

/// Renders the comparison table.
pub fn render_interp_table(rows: &[InterpComparison]) -> String {
    let mut out = String::new();
    out.push_str("AST tree walker vs flat BrookIR interpreter (best-of-5 per dispatch)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>14} {:>14} {:>9}\n",
        "app", "elements", "ast ns", "ir ns", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>10} {:>14} {:>14} {:>8.2}x\n",
            r.app,
            r.elements,
            r.ast_ns,
            r.ir_ns,
            r.speedup()
        ));
    }
    out
}

/// Serializes the rows as the `BENCH_interp.json` trajectory document.
pub fn interp_json(rows: &[InterpComparison]) -> String {
    let mut out = String::from("{\n  \"bench\": \"interp\",\n  \"unit\": \"ns/dispatch\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"elements\": {}, \"ast_ns\": {}, \"ir_ns\": {}, \"speedup\": {:.4}}}{}\n",
            r.app,
            r.elements,
            r.ast_ns,
            r.ir_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreters_agree_and_json_is_well_formed() {
        let rows = compare_interpreters().expect("comparison");
        assert_eq!(rows.len(), 3);
        let json = interp_json(&rows);
        assert!(json.contains("\"app\": \"mandelbrot\""));
        assert!(json.contains("\"bench\": \"interp\""));
        let table = render_interp_table(&rows);
        assert!(table.contains("sgemm"));
    }
}
