//! Tier-2 closure chains with explicit SIMD vs the same chains forced
//! scalar — the perf claim of the `std::arch` execution layer,
//! measured, not asserted.
//!
//! The same four paper apps as `tier` run identical workloads on two
//! CPU contexts: Tier-2 with `SimdMode::Off` (the exact configuration
//! `BENCH_tier.json` measures — every block step a scalar lane loop)
//! and the default context, where `SimdMode::Auto` resolves to the
//! best `std::arch` level the host supports and the hot block steps
//! run as SSE2/AVX2 kernels. Results are cross-checked bitwise — the
//! SIMD kernels are bit-exact by construction (no FMA contraction,
//! operand order preserved), so a single differing bit fails the bench
//! before any timing happens.
//!
//! A fifth row measures the vectorized reduce path: a `min` reduce
//! whose combine operand the abstract interpreter proves NaN-free
//! (`clamp(a, 0.5, 2.0)`), admitted to per-lane partials + SIMD fold,
//! against the serial scalar interpreter fold the `Off` context keeps.
//! The row doubles as the admission evidence: the SIMD module must
//! record the kernel as admitted in `ComplianceReport::simd_reduces`,
//! the forced-scalar module must not, and an `f32` sum compiled next
//! to it must be *rejected* (reassociation-unsafe) even with SIMD on.
//!
//! `simd_report` renders the table, writes the `BENCH_simd.json`
//! trajectory file and **fails** unless SIMD is strictly faster than
//! forced-scalar Tier-2 on every row — the CI perf-smoke gate for the
//! explicit-SIMD layer. On a host with no SSE2 (detection says
//! scalar), the bin degrades to a warning instead of a fake gate.

use crate::lanes::{best_of, dispatch, prepare, workloads, Workload};
use brook_auto::{BrookContext, BrookError};
use brook_ir::simd::{detect, SimdLevel, SimdMode};

/// One row's timing comparison.
#[derive(Debug, Clone)]
pub struct SimdComparison {
    /// App name (`reduce_min` for the vectorized-reduce row).
    pub app: &'static str,
    /// Elements per dispatch (output elements, or reduce input length).
    pub elements: usize,
    /// Best-of-N wall time per dispatch, Tier-2 forced scalar, ns.
    pub tier_ns: u128,
    /// Best-of-N wall time per dispatch, Tier-2 with SIMD, ns.
    pub simd_ns: u128,
}

impl SimdComparison {
    /// Scalar tier time over SIMD time (>1 means SIMD is faster).
    pub fn speedup(&self) -> f64 {
        self.tier_ns as f64 / self.simd_ns as f64
    }
}

/// Input length for the reduce row.
const REDUCE_N: usize = 1 << 16;

/// The admitted reduce: `clamp` bounds the combine operand to
/// [0.5, 2.0], so the analyzer proves it NaN-free and sign-definite
/// and the planner opens the lattice-`min` fold to SIMD partials.
const REDUCE_MIN_SRC: &str =
    "reduce void rmin(float a<>, reduce float r<>) { r = min(r, clamp(a, 0.5, 2.0)); }";

/// The control: an `f32` sum is never reassociation-safe, so the
/// planner must keep it on the serial scalar fold even with SIMD on.
const REDUCE_SUM_SRC: &str = "reduce void rsum(float a<>, reduce float r<>) { r = r + a; }";

fn scalar_context() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.simd_mode = SimdMode::Off;
    ctx
}

/// Asserts a workload's kernel took the Tier-2 path on both sides and
/// that the SIMD side actually compiled non-scalar block steps (when
/// the host supports any SIMD level at all).
fn require_simd_plan(w: &Workload, module: &brook_auto::BrookModule) -> Result<(), BrookError> {
    let plan = module
        .report
        .tier_plans
        .iter()
        .find(|p| p.kernel == w.kernel)
        .ok_or_else(|| BrookError::Usage(format!("{}: no tier plan recorded", w.app)))?;
    if !plan.compiled {
        return Err(BrookError::Usage(format!(
            "{}: tier compiler rejected the kernel ({}) — nothing would run SIMD",
            w.app, plan.detail
        )));
    }
    if detect() != SimdLevel::Scalar && plan.detail.contains("simd scalar") {
        return Err(BrookError::Usage(format!(
            "{}: SIMD context compiled scalar block steps ({}) — the bench would compare tier to tier",
            w.app, plan.detail
        )));
    }
    Ok(())
}

/// Looks up a kernel's vectorized-reduce admission record.
fn reduce_admitted(module: &brook_auto::BrookModule, kernel: &str) -> Option<bool> {
    module
        .report
        .simd_reduces
        .iter()
        .find(|r| r.kernel == kernel)
        .map(|r| r.admitted)
}

/// Runs the comparison: the four map apps, then the reduce row. Every
/// row is cross-checked bitwise and timed best-of-5 after a warm-up;
/// compile/plan cost is excluded (it happens once, before timing).
///
/// # Errors
/// Compile/run failures, a tier or reduce-planner admission regression
/// on either side, or any bitwise disagreement between the SIMD and
/// forced-scalar engines.
pub fn compare_simd() -> Result<Vec<SimdComparison>, BrookError> {
    let mut rows = Vec::new();
    for w in workloads() {
        let mut scalar = prepare(&w, scalar_context())?;
        let mut simd = prepare(&w, BrookContext::cpu())?;
        require_simd_plan(&w, &simd.module)?;
        // The scalar side must really be scalar, or the gate is void.
        if let Some(p) = scalar
            .module
            .report
            .tier_plans
            .iter()
            .find(|p| p.kernel == w.kernel)
        {
            if p.compiled && !p.detail.contains("simd scalar") {
                return Err(BrookError::Usage(format!(
                    "{}: forced-scalar context compiled SIMD block steps ({})",
                    w.app, p.detail
                )));
            }
        }
        // Correctness first: bitwise agreement. These dispatches double
        // as the first warm-up round.
        dispatch(&mut scalar, &w)?;
        dispatch(&mut simd, &w)?;
        let a = scalar.ctx.read(&scalar.out)?;
        let b = simd.ctx.read(&simd.out)?;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(BrookError::Usage(format!(
                    "{}: SIMD and scalar tier engines disagree at element {i}: {x} vs {y}",
                    w.app
                )));
            }
        }
        // Explicit warm-up so the timed reps see steady state only.
        dispatch(&mut scalar, &w)?;
        dispatch(&mut simd, &w)?;
        let reps = 5;
        let tier_ns = best_of(reps, || {
            dispatch(&mut scalar, &w).expect("scalar tier dispatch");
        });
        let simd_ns = best_of(reps, || {
            dispatch(&mut simd, &w).expect("simd dispatch");
        });
        rows.push(SimdComparison {
            app: w.app,
            elements: w.out_shape.iter().product(),
            tier_ns,
            simd_ns,
        });
    }
    rows.push(compare_reduce()?);
    Ok(rows)
}

/// The vectorized-reduce row: serial interpreter fold vs admitted
/// per-lane partials + SIMD combine, bitwise-checked, plus the
/// admission assertions described in the module docs.
fn compare_reduce() -> Result<SimdComparison, BrookError> {
    let mut scalar_ctx = scalar_context();
    let mut simd_ctx = BrookContext::cpu();
    let scalar_mod = scalar_ctx.compile(REDUCE_MIN_SRC)?;
    let simd_mod = simd_ctx.compile(REDUCE_MIN_SRC)?;
    // Admission evidence: SIMD module admitted, forced-scalar not,
    // f32 sum rejected even with SIMD on.
    if detect() != SimdLevel::Scalar && reduce_admitted(&simd_mod, "rmin") != Some(true) {
        return Err(BrookError::Usage(
            "reduce_min: planner did not admit the NaN-free min fold to the vectorized reduce".into(),
        ));
    }
    if reduce_admitted(&scalar_mod, "rmin") == Some(true) {
        return Err(BrookError::Usage(
            "reduce_min: forced-scalar context admitted a vectorized reduce".into(),
        ));
    }
    let sum_mod = simd_ctx.compile(REDUCE_SUM_SRC)?;
    if reduce_admitted(&sum_mod, "rsum") == Some(true) {
        return Err(BrookError::Usage(
            "reduce_sum: planner admitted an f32 sum — floating-point addition is not \
             reassociation-safe"
                .into(),
        ));
    }
    // Deterministic input ramp; clamp bounds the fold operand, the raw
    // data can range freely.
    let data: Vec<f32> = (0..REDUCE_N).map(|i| (i % 977) as f32 * 0.013 - 4.0).collect();
    let s_scalar = scalar_ctx.stream(&[REDUCE_N])?;
    scalar_ctx.write(&s_scalar, &data)?;
    let s_simd = simd_ctx.stream(&[REDUCE_N])?;
    simd_ctx.write(&s_simd, &data)?;
    // Correctness + warm-up round.
    let a = scalar_ctx.reduce(&scalar_mod, "rmin", &s_scalar)?;
    let b = simd_ctx.reduce(&simd_mod, "rmin", &s_simd)?;
    if a.to_bits() != b.to_bits() {
        return Err(BrookError::Usage(format!(
            "reduce_min: serial and vectorized folds disagree: {a} vs {b}"
        )));
    }
    let reps = 5;
    let tier_ns = best_of(reps, || {
        scalar_ctx
            .reduce(&scalar_mod, "rmin", &s_scalar)
            .expect("serial reduce");
    });
    let simd_ns = best_of(reps, || {
        simd_ctx
            .reduce(&simd_mod, "rmin", &s_simd)
            .expect("vectorized reduce");
    });
    Ok(SimdComparison {
        app: "reduce_min",
        elements: REDUCE_N,
        tier_ns,
        simd_ns,
    })
}

/// Renders the comparison table.
pub fn render_simd_table(rows: &[SimdComparison]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Tier-2 forced scalar vs explicit SIMD (level {}, L={}, best-of-5 per dispatch, warm)\n",
        detect(),
        brook_ir::lanes::LANES
    ));
    out.push_str(&format!(
        "{:<14} {:>10} {:>14} {:>14} {:>9}\n",
        "app", "elements", "tier ns", "simd ns", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>14} {:>14} {:>8.2}x\n",
            r.app,
            r.elements,
            r.tier_ns,
            r.simd_ns,
            r.speedup()
        ));
    }
    let geo: f64 = rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len().max(1) as f64;
    out.push_str(&format!("geomean speedup: {:.2}x\n", geo.exp()));
    out
}

/// Serializes the rows as the `BENCH_simd.json` trajectory document.
pub fn simd_json(rows: &[SimdComparison]) -> String {
    let mut out = String::from("{\n  \"bench\": \"simd\",\n  \"unit\": \"ns/dispatch\",\n");
    out.push_str(&format!(
        "  \"level\": \"{}\",\n  \"lanes\": {},\n  \"rows\": [\n",
        detect(),
        brook_ir::lanes::LANES
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"elements\": {}, \"tier_ns\": {}, \"simd_ns\": {}, \"speedup\": {:.4}}}{}\n",
            r.app,
            r.elements,
            r.tier_ns,
            r.simd_ns,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_json_is_well_formed() {
        let rows = compare_simd().expect("comparison");
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].app, "reduce_min");
        let json = simd_json(&rows);
        assert!(json.contains("\"app\": \"mandelbrot\""));
        assert!(json.contains("\"app\": \"reduce_min\""));
        assert!(json.contains("\"bench\": \"simd\""));
        let table = render_simd_table(&rows);
        assert!(table.contains("sgemm"));
        assert!(table.contains("geomean"));
    }
}
