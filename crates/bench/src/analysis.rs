//! Static-analysis smoke over the paper suite — the CI gate for the
//! abstract interpreter (`brook_cert::absint`).
//!
//! All eleven applications are the *legal-program corpus*: every kernel
//! in the suite is certifiable, so a certification rejection here is by
//! definition a spurious one — an unsound widening, a lost NaN flag, a
//! fault rule firing on a runtime-dependent value. The smoke:
//!
//! 1. compiles every app kernel on the full pipeline and **fails on any
//!    rejection**;
//! 2. checks the refined (post-pass) admission estimate never exceeds
//!    the AST-level one, kernel by kernel, as a hard error rather than
//!    a `debug_assert`;
//! 3. runs every app end-to-end on the CPU backend at its differential
//!    size — in a debug build this drives the elided gather paths under
//!    their per-lane `debug_assert` cross-checks, so a wrong bounds
//!    proof aborts instead of silently reading clamped;
//! 4. renders every kernel's analysis facts for the uploaded artifact,
//!    so a reviewer can read *what the analyzer proved* for the whole
//!    suite in one place.

use brook_apps::all_apps;
use brook_auto::BrookContext;

/// One kernel's analysis summary.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Application the kernel belongs to.
    pub app: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Gathers the analyzer proved in bounds.
    pub proven_gathers: usize,
    /// All gathers in the optimized IR.
    pub total_gathers: usize,
    /// Instructions proven unreachable.
    pub unreachable_insts: usize,
    /// AST-level (pre-pass) per-element instruction estimate.
    pub ast_estimate: Option<u64>,
    /// Refined (post-pass, reachability-pruned) estimate.
    pub refined_estimate: Option<u64>,
    /// Rendered span-attributed facts (`pc @ line:col: fact`).
    pub facts: Vec<String>,
}

/// Kernel sources of all eleven applications, named as in the figures.
pub fn app_sources() -> Vec<(&'static str, String)> {
    vec![
        ("flops", brook_apps::flops::Flops::default().kernel_source()),
        ("binomial", brook_apps::binomial::kernel_source()),
        ("black_scholes", brook_apps::black_scholes::KERNEL.to_string()),
        ("prefix_sum", brook_apps::prefix_sum::KERNEL.to_string()),
        ("spmv", brook_apps::spmv::kernel_source()),
        ("binary_search", brook_apps::binary_search::KERNEL.to_string()),
        ("bitonic_sort", brook_apps::bitonic_sort::KERNEL.to_string()),
        ("floyd_warshall", brook_apps::floyd_warshall::KERNEL.to_string()),
        ("image_filter", brook_apps::image_filter::KERNEL.to_string()),
        ("mandelbrot", brook_apps::mandelbrot::kernel_source()),
        ("sgemm", brook_apps::sgemm::kernel_source(8)),
    ]
}

/// Compiles every app kernel and collects the analyzer's verdicts.
///
/// # Errors
/// A certification rejection of any suite kernel (spurious by
/// definition), or a refined estimate above the AST one.
pub fn analyze_apps() -> Result<Vec<KernelRow>, String> {
    let mut rows = Vec::new();
    for (app, source) in app_sources() {
        let mut ctx = BrookContext::cpu();
        let module = ctx
            .compile(&source)
            .map_err(|e| format!("SPURIOUS REJECTION: `{app}` is a certifiable suite kernel, got: {e}"))?;
        for ka in &module.report.analysis.kernels {
            let kr = module.report.kernel(&ka.kernel);
            let ast = kr.and_then(|k| k.instruction_estimate);
            let refined = kr.and_then(|k| k.refined_estimate);
            if let (Some(r), Some(a)) = (refined, ast) {
                if r > a {
                    return Err(format!(
                        "`{app}`/{}: refined estimate {r} above the AST estimate {a}",
                        ka.kernel
                    ));
                }
            }
            if !ka.faults.is_empty() {
                return Err(format!("SPURIOUS FAULT: `{app}`/{}: {:?}", ka.kernel, ka.faults));
            }
            rows.push(KernelRow {
                app,
                kernel: ka.kernel.clone(),
                proven_gathers: ka.proven_gathers,
                total_gathers: ka.total_gathers,
                unreachable_insts: ka.unreachable_insts,
                ast_estimate: ast,
                refined_estimate: refined,
                facts: ka
                    .facts
                    .iter()
                    .map(|f| format!("pc {} @ {}: {}", f.pc, f.span, f.fact))
                    .collect(),
            });
        }
    }
    Ok(rows)
}

/// Runs every app end-to-end on the CPU backend at its differential
/// size. In a debug build this executes elided gathers under their
/// per-element `debug_assert` cross-checks.
///
/// # Errors
/// Any compile/dispatch failure, tagged with the app name.
pub fn run_apps_once() -> Result<(), String> {
    for app in all_apps() {
        let size = app.matrix_size();
        let mut ctx = BrookContext::cpu();
        app.run_gpu(&mut ctx, size, 0xA11A)
            .map_err(|e| format!("`{}` at size {size}: {e}", app.name()))?;
    }
    Ok(())
}

/// Renders the per-kernel summary table.
pub fn render_analysis_table(rows: &[KernelRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "app              kernel             gathers proven  unreachable  estimate (AST -> refined)\n",
    );
    out.push_str(
        "---------------- ------------------ --------------  -----------  -------------------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<18} {:>6}/{:<7} {:>11}  {} -> {}\n",
            r.app,
            r.kernel,
            r.proven_gathers,
            r.total_gathers,
            r.unreachable_insts,
            r.ast_estimate.map_or("-".into(), |v| v.to_string()),
            r.refined_estimate.map_or("-".into(), |v| v.to_string()),
        ));
    }
    out
}

/// Serializes the rows (facts included) as the uploaded artifact.
pub fn analysis_json(rows: &[KernelRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"analysis\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let facts: Vec<String> = r
            .facts
            .iter()
            .map(|f| format!("\"{}\"", f.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"kernel\": \"{}\", \"proven_gathers\": {}, \
             \"total_gathers\": {}, \"unreachable_insts\": {}, \"ast_estimate\": {}, \
             \"refined_estimate\": {}, \"facts\": [{}]}}{}\n",
            r.app,
            r.kernel,
            r.proven_gathers,
            r.total_gathers,
            r.unreachable_insts,
            r.ast_estimate.map_or("null".into(), |v| v.to_string()),
            r.refined_estimate.map_or("null".into(), |v| v.to_string()),
            facts.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_analyzes_with_zero_spurious_rejections() {
        let rows = analyze_apps().unwrap_or_else(|e| panic!("{e}"));
        assert!(rows.len() >= 11, "one row per kernel, all apps covered");
        // The gather flagships keep their full proofs.
        for flagship in ["sgemm", "image_filter"] {
            let total: usize = rows
                .iter()
                .filter(|r| r.app == flagship)
                .map(|r| r.total_gathers)
                .sum();
            let proven: usize = rows
                .iter()
                .filter(|r| r.app == flagship)
                .map(|r| r.proven_gathers)
                .sum();
            assert!(total > 0, "{flagship}: no gathers seen");
            assert_eq!(proven, total, "{flagship}: lost a bounds proof");
        }
    }

    #[test]
    fn apps_run_end_to_end_under_debug_asserts() {
        run_apps_once().unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn json_is_shaped_like_the_other_trajectories() {
        let rows = analyze_apps().unwrap_or_else(|e| panic!("{e}"));
        let json = analysis_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"bench\": \"analysis\""));
    }
}
