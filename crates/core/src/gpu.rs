//! The OpenGL ES 2.0 backend: streams as textures, kernels as
//! full-screen passes, reductions as ping-pong ladders.

use crate::backend::{BackendExecutor, KernelLaunch};
use crate::error::{BrookError, Result};
use crate::stream::{layout_for, StreamDesc, StreamLayout};
use brook_codegen::{
    generate_ir_kernel_shader, generate_kernel_shader, names, reduce_pass_shader, KernelShapes, ReduceAxis,
    StorageMode, StreamRank,
};
use brook_lang::{CheckedProgram, ReduceOp};
use gles2_sim::{DeviceProfile, DrawMode, FramebufferId, Gl, ProgramId, TexFormat, TextureId, Value};
use perf_model::GpuRun;
use std::collections::HashMap;

pub(crate) struct GpuStream {
    pub desc: StreamDesc,
    pub layout: StreamLayout,
    pub tex: TextureId,
}

pub(crate) struct GpuState {
    pub gl: Gl,
    pub storage: StorageMode,
    pub streams: Vec<GpuStream>,
    fbo: FramebufferId,
    programs: HashMap<String, (ProgramId, brook_codegen::GeneratedShader)>,
    reduce_programs: HashMap<(ReduceOp, ReduceAxis), ProgramId>,
    mask_programs: HashMap<ReduceOp, ProgramId>,
    copy_program: Option<ProgramId>,
    pub readbacks: u64,
    pub dispatch_mode: DrawMode,
}

impl GpuState {
    pub fn new(profile: DeviceProfile) -> Self {
        let storage = if profile.float_textures && profile.float_render_targets {
            StorageMode::Native
        } else {
            StorageMode::Packed
        };
        let mut gl = Gl::new(profile);
        let fbo = gl.create_framebuffer();
        GpuState {
            gl,
            storage,
            streams: Vec::new(),
            fbo,
            programs: HashMap::new(),
            reduce_programs: HashMap::new(),
            mask_programs: HashMap::new(),
            copy_program: None,
            readbacks: 0,
            dispatch_mode: DrawMode::Full,
        }
    }

    /// Texel format for a stream of the given element width.
    fn format_for(&self, width: u8) -> TexFormat {
        match self.storage {
            StorageMode::Packed => TexFormat::Rgba8,
            StorageMode::Native if width == 1 => TexFormat::R32F,
            StorageMode::Native => TexFormat::Rgba32F,
        }
    }

    pub fn create_stream(&mut self, desc: StreamDesc) -> Result<usize> {
        if self.storage == StorageMode::Packed && desc.width > 1 {
            return Err(BrookError::Usage(format!(
                "this device stores streams in RGBA8 textures; float{} elements are not \
                 representable — use scalar streams (paper §6)",
                desc.width
            )));
        }
        let profile = self.gl.profile().clone();
        let layout = layout_for(&desc.shape, !profile.npot_textures, profile.max_texture_size)
            .map_err(BrookError::Usage)?;
        let tex = self
            .gl
            .create_texture(layout.alloc_w, layout.alloc_h, self.format_for(desc.width))?;
        self.streams.push(GpuStream { desc, layout, tex });
        Ok(self.streams.len() - 1)
    }

    fn to_texels(&self, values: &[f32], width: u8) -> Vec<[f32; 4]> {
        match self.storage {
            StorageMode::Packed => brook_numfmt::floats_to_texels(values),
            StorageMode::Native => values
                .chunks(width as usize)
                .map(|c| {
                    let mut t = [0.0f32; 4];
                    t[..c.len()].copy_from_slice(c);
                    t
                })
                .collect(),
        }
    }

    fn decode_texels(&self, texels: &[[f32; 4]], width: u8) -> Vec<f32> {
        match self.storage {
            StorageMode::Packed => brook_numfmt::texels_to_floats(texels),
            StorageMode::Native => texels.iter().flat_map(|t| t[..width as usize].to_vec()).collect(),
        }
    }

    pub fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()> {
        let (tex, layout, width, len) = {
            let s = &self.streams[index];
            (s.tex, s.layout.clone(), s.desc.width, s.desc.len())
        };
        if values.len() != len * width as usize {
            return Err(BrookError::Usage(format!(
                "stream expects {} values, got {}",
                len * width as usize,
                values.len()
            )));
        }
        let texels = self.to_texels(values, width);
        match layout.rank {
            StreamRank::Grid => {
                let (cols, rows) = (layout.logical_x, layout.logical_y);
                self.gl.upload_texture_sub(tex, 0, 0, cols, rows, &texels)?;
            }
            StreamRank::Linear => {
                let stride = layout.alloc_w as usize;
                let full_rows = texels.len() / stride;
                let tail = texels.len() % stride;
                if full_rows > 0 {
                    self.gl.upload_texture_sub(
                        tex,
                        0,
                        0,
                        stride as u32,
                        full_rows as u32,
                        &texels[..full_rows * stride],
                    )?;
                }
                if tail > 0 {
                    self.gl.upload_texture_sub(
                        tex,
                        0,
                        full_rows as u32,
                        tail as u32,
                        1,
                        &texels[full_rows * stride..],
                    )?;
                }
            }
        }
        Ok(())
    }

    pub fn read_stream(&mut self, index: usize) -> Result<Vec<f32>> {
        let (tex, layout, width, len) = {
            let s = &self.streams[index];
            (s.tex, s.layout.clone(), s.desc.width, s.desc.len())
        };
        self.gl.attach_texture(self.fbo, tex)?;
        self.gl.bind_framebuffer(self.fbo)?;
        self.readbacks += 1;
        let texels = match layout.rank {
            StreamRank::Grid => self
                .gl
                .read_pixels_region(0, 0, layout.logical_x, layout.logical_y)?,
            StreamRank::Linear => {
                let stride = layout.alloc_w as usize;
                let full_rows = len / stride;
                let tail = len % stride;
                let mut t = if full_rows > 0 {
                    self.gl
                        .read_pixels_region(0, 0, stride as u32, full_rows as u32)?
                } else {
                    Vec::new()
                };
                if tail > 0 {
                    t.extend(self.gl.read_pixels_region(0, full_rows as u32, tail as u32, 1)?);
                }
                t
            }
        };
        Ok(self.decode_texels(&texels, width))
    }

    /// Builds the shape-class table for a dispatch from actual layouts.
    fn shapes_for(&self, params: &[(String, Option<usize>)]) -> KernelShapes {
        let mut shapes = KernelShapes::default();
        for (name, stream_idx) in params {
            if let Some(i) = stream_idx {
                shapes.ranks.insert(name.clone(), self.streams[*i].layout.rank);
            }
        }
        shapes
    }

    /// Marks gather parameters whose clamp the shader may skip for this
    /// dispatch: every gather on the parameter carries an
    /// analyzer-proven range and the proof fits the bound stream's
    /// logical shape under this launch domain
    /// ([`brook_ir::eval::proven_fits_dyn`] — the same launch-time
    /// check the CPU engines perform per block).
    fn elidable_gathers(
        &self,
        ir: &brook_ir::IrProgram,
        kernel: &str,
        output: &str,
        stream_args: &[(String, Option<usize>)],
        shapes: &mut KernelShapes,
    ) {
        let Some(k) = ir.kernel(kernel) else { return };
        let stream_of = |name: &str| stream_args.iter().find(|(n, _)| n == name).and_then(|(_, i)| *i);
        let Some(out_idx) = stream_of(output) else { return };
        let dshape = &self.streams[out_idx].desc.shape;
        let (dx, dy, linear) = brook_ir::interp::domain_extents(dshape);
        let comp_max = brook_ir::eval::indexof_comp_max((dx, dy), linear);
        for (pi, p) in k.params.iter().enumerate() {
            if !matches!(p.kind, brook_lang::ast::ParamKind::Gather { .. }) {
                continue;
            }
            let Some(si) = stream_of(&p.name) else { continue };
            let pshape = &self.streams[si].desc.shape;
            let mut gathers = k.insts.iter().filter_map(|inst| match inst {
                brook_ir::Inst::Gather { param, proven, .. } if *param as usize == pi => Some(proven),
                _ => None,
            });
            let mut any = false;
            let all_fit = gathers.all(|pr| {
                any = true;
                pr.as_ref()
                    .is_some_and(|p| brook_ir::eval::proven_fits_dyn(p, pshape, comp_max))
            });
            if any && all_fit {
                shapes.elide_gathers.insert(p.name.clone());
            }
        }
    }

    /// Runs one pass of `kernel` writing `output`.
    ///
    /// `stream_args`: (param name, stream index) for every stream/gather
    /// param including outputs; `scalar_args`: (param name, value).
    #[allow(clippy::too_many_arguments)]
    pub fn run_pass(
        &mut self,
        checked: &CheckedProgram,
        ir: &brook_ir::IrProgram,
        module_key: u64,
        kernel: &str,
        output: &str,
        stream_args: &[(String, Option<usize>)],
        scalar_args: &[(String, Value)],
    ) -> Result<()> {
        let mut shapes = self.shapes_for(stream_args);
        self.elidable_gathers(ir, kernel, output, stream_args, &mut shapes);
        let mut key = format!("{module_key}:{kernel}:{output}:{:?}", self.storage);
        let mut rank_names: Vec<_> = shapes.ranks.iter().collect();
        rank_names.sort();
        for (n, r) in rank_names {
            key.push_str(&format!(":{n}={r:?}"));
        }
        for n in &shapes.elide_gathers {
            key.push_str(&format!(":elide={n}"));
        }
        let (program, generated) = match self.programs.get(&key) {
            Some(entry) => entry.clone(),
            None => {
                // The live path generates GLSL from the optimized,
                // re-certified BrookIR; kernels absent from the IR (only
                // possible past a disabled certification gate) fall back
                // to the legacy AST generator. The cache entry is
                // inserted only once both generation and program
                // creation succeed, so a failed compile leaves no trace
                // and a corrected module under the same key compiles
                // fresh.
                let generated = if ir.kernel(kernel).is_some() {
                    generate_ir_kernel_shader(ir, kernel, output, &shapes, self.storage)?
                } else {
                    generate_kernel_shader(checked, kernel, output, &shapes, self.storage)?
                };
                let p = self.gl.create_program(&generated.glsl)?;
                self.programs.insert(key.clone(), (p, generated.clone()));
                (p, generated)
            }
        };
        self.gl.use_program(program)?;
        let stream_of = |name: &str| -> Result<usize> {
            stream_args
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, i)| *i)
                .ok_or_else(|| BrookError::Usage(format!("parameter `{name}` is not bound to a stream")))
        };
        // Texture units in sampler order.
        for (unit, name) in generated.samplers.iter().enumerate() {
            let idx = stream_of(name)?;
            let out_idx = stream_of(output)?;
            if idx == out_idx {
                return Err(BrookError::Usage(format!(
                    "stream bound to `{name}` is also the output `{output}`: Brook kernels \
                     cannot read their own output (use ping-pong streams)"
                )));
            }
            self.gl.bind_texture(unit as u32, self.streams[idx].tex)?;
            self.gl
                .set_uniform(program, &names::tex_uniform(name), Value::Int(unit as i32))?;
        }
        for name in &generated.metas {
            let idx = stream_of(name)?;
            let m = self.streams[idx].layout.meta();
            self.gl
                .set_uniform(program, &names::meta_uniform(name), Value::Vec4(m))?;
        }
        for name in &generated.shapes_needed {
            let idx = stream_of(name)?;
            let shape = &self.streams[idx].desc.shape;
            let mut s = [1.0f32; 4];
            for (i, d) in shape.iter().enumerate() {
                s[i] = *d as f32;
            }
            self.gl
                .set_uniform(program, &names::shape_uniform(name), Value::Vec4(s))?;
        }
        for (name, value) in scalar_args {
            self.gl
                .set_uniform(program, &names::scalar_uniform(name), *value)?;
        }
        let out_idx = stream_of(output)?;
        let (vw, vh) = self.streams[out_idx].layout.viewport;
        self.gl.set_uniform(
            program,
            names::VIEWPORT_UNIFORM,
            Value::Vec2([vw as f32, vh as f32]),
        )?;
        self.gl.attach_texture(self.fbo, self.streams[out_idx].tex)?;
        self.gl.bind_framebuffer(self.fbo)?;
        self.gl.viewport(vw, vh);
        self.gl.draw_fullscreen_quad(self.dispatch_mode)?;
        Ok(())
    }

    /// Multi-pass reduction of a stream to a single scalar (paper §5.5).
    pub fn reduce_stream(&mut self, op: ReduceOp, input: usize) -> Result<f32> {
        let (in_tex, layout, len) = {
            let s = &self.streams[input];
            (s.tex, s.layout.clone(), s.desc.len())
        };
        let (aw, ah) = (layout.alloc_w, layout.alloc_h);
        // Ping-pong intermediates, reused across passes (paper §5.5: "the
        // same textures are reused for the reduction steps").
        let ping = self.gl.create_texture(aw, ah, self.format_for(1))?;
        let pong = match self.gl.create_texture(aw, ah, self.format_for(1)) {
            Ok(t) => t,
            Err(e) => {
                self.gl.delete_texture(ping);
                return Err(e.into());
            }
        };
        // The ladder runs in a helper so every `?` exit still releases
        // the intermediates — a long-running host would otherwise leak
        // device memory (and budget headroom) on each failed reduce.
        let result = self.reduce_ladder(op, in_tex, &layout, len, ping, pong);
        self.gl.delete_texture(ping);
        self.gl.delete_texture(pong);
        result
    }

    /// The reduction passes proper; intermediates are owned (and always
    /// released) by `reduce_stream`.
    fn reduce_ladder(
        &mut self,
        op: ReduceOp,
        in_tex: TextureId,
        layout: &StreamLayout,
        len: usize,
        ping: TextureId,
        pong: TextureId,
    ) -> Result<f32> {
        let (aw, ah) = (layout.alloc_w, layout.alloc_h);
        // Pass 0: masked copy establishing a rectangular extent with
        // identity padding (needed for linear streams whose tail row is
        // partial).
        let (mut w, mut h) = match layout.rank {
            StreamRank::Grid => (layout.logical_x, layout.logical_y),
            StreamRank::Linear => (layout.alloc_w.min(len as u32), layout.logical_y),
        };
        let needs_mask = layout.rank == StreamRank::Linear
            && !(len as u32).is_multiple_of(layout.alloc_w)
            && layout.logical_y > 1;
        let copy_prog = if needs_mask {
            self.mask_program(op)?
        } else {
            self.copy_program()?
        };
        self.gl.use_program(copy_prog)?;
        self.gl.bind_texture(0, in_tex)?;
        self.gl.set_uniform(copy_prog, "_tex_src", Value::Int(0))?;
        self.gl
            .set_uniform(copy_prog, "_meta_src", Value::Vec4(layout.meta()))?;
        if needs_mask {
            w = layout.alloc_w;
            self.gl
                .set_uniform(copy_prog, "_p_len", Value::Float(len as f32))?;
        }
        self.gl.set_uniform(
            copy_prog,
            names::VIEWPORT_UNIFORM,
            Value::Vec2([w as f32, h as f32]),
        )?;
        self.gl.attach_texture(self.fbo, ping)?;
        self.gl.bind_framebuffer(self.fbo)?;
        self.gl.viewport(w, h);
        self.gl.draw_fullscreen_quad(self.dispatch_mode)?;
        let mut current = ping;
        let mut other = pong;
        // X ladder then Y ladder.
        for axis in [ReduceAxis::X, ReduceAxis::Y] {
            loop {
                let cur = match axis {
                    ReduceAxis::X => w,
                    ReduceAxis::Y => h,
                };
                if cur <= 1 {
                    break;
                }
                let next = cur.div_ceil(2);
                let (nw, nh) = match axis {
                    ReduceAxis::X => (next, h),
                    ReduceAxis::Y => (w, next),
                };
                let prog = self.reduce_program(op, axis)?;
                self.gl.use_program(prog)?;
                self.gl.bind_texture(0, current)?;
                self.gl.set_uniform(prog, "_tex_src", Value::Int(0))?;
                self.gl.set_uniform(
                    prog,
                    "_meta_src",
                    Value::Vec4([aw as f32, ah as f32, w as f32, h as f32]),
                )?;
                self.gl
                    .set_uniform(prog, names::VIEWPORT_UNIFORM, Value::Vec2([nw as f32, nh as f32]))?;
                self.gl.attach_texture(self.fbo, other)?;
                self.gl.bind_framebuffer(self.fbo)?;
                self.gl.viewport(nw, nh);
                self.gl.draw_fullscreen_quad(self.dispatch_mode)?;
                std::mem::swap(&mut current, &mut other);
                match axis {
                    ReduceAxis::X => w = next,
                    ReduceAxis::Y => h = next,
                }
            }
        }
        // Read the single remaining element.
        self.gl.attach_texture(self.fbo, current)?;
        self.gl.bind_framebuffer(self.fbo)?;
        self.readbacks += 1;
        let texel = self.gl.read_pixels_region(0, 0, 1, 1)?;
        Ok(self.decode_texels(&texel, 1)[0])
    }

    fn reduce_program(&mut self, op: ReduceOp, axis: ReduceAxis) -> Result<ProgramId> {
        if let Some(p) = self.reduce_programs.get(&(op, axis)) {
            return Ok(*p);
        }
        let src = reduce_pass_shader(op, axis, self.storage);
        let p = self.gl.create_program(&src)?;
        self.reduce_programs.insert((op, axis), p);
        Ok(p)
    }

    /// Raw channel-preserving copy (no decode/encode needed: texel bits
    /// pass through untouched).
    fn copy_program(&mut self) -> Result<ProgramId> {
        if let Some(p) = self.copy_program {
            return Ok(p);
        }
        let src = format!(
            "precision highp float;\nvarying vec2 v_texcoord;\nuniform vec2 {vp};\n\
             uniform sampler2D _tex_src;\nuniform vec4 _meta_src;\n\
             void main() {{\n    vec2 _pc = floor(v_texcoord * {vp});\n    \
             gl_FragColor = texture2D(_tex_src, (_pc + 0.5) / _meta_src.xy);\n}}\n",
            vp = names::VIEWPORT_UNIFORM
        );
        let p = self.gl.create_program(&src)?;
        self.copy_program = Some(p);
        Ok(p)
    }

    /// Copy with identity masking beyond the logical length (linear
    /// streams with a partial tail row).
    fn mask_program(&mut self, op: ReduceOp) -> Result<ProgramId> {
        if let Some(p) = self.mask_programs.get(&op) {
            return Ok(*p);
        }
        let identity = match op {
            ReduceOp::Add => "0.0",
            ReduceOp::Mul => "1.0",
            ReduceOp::Min => "3.0e38",
            ReduceOp::Max => "-3.0e38",
        };
        let encode_identity = match self.storage {
            StorageMode::Packed => {
                format!("{}{}", brook_numfmt::GLSL_ENCODE, "")
            }
            StorageMode::Native => String::new(),
        };
        let identity_expr = match self.storage {
            StorageMode::Packed => format!("ba_encode({identity})"),
            StorageMode::Native => format!("vec4({identity}, 0.0, 0.0, 0.0)"),
        };
        let src = format!(
            "precision highp float;\nvarying vec2 v_texcoord;\nuniform vec2 {vp};\n\
             uniform sampler2D _tex_src;\nuniform vec4 _meta_src;\nuniform float _p_len;\n{encode_identity}\
             void main() {{\n    vec2 _pc = floor(v_texcoord * {vp});\n    \
             float _l = _pc.y * {vp}.x + _pc.x;\n    \
             vec4 _v = texture2D(_tex_src, (_pc + 0.5) / _meta_src.xy);\n    \
             gl_FragColor = (_l < _p_len) ? _v : {identity_expr};\n}}\n",
            vp = names::VIEWPORT_UNIFORM
        );
        let p = self.gl.create_program(&src)?;
        self.mask_programs.insert(op, p);
        Ok(p)
    }
}

impl BackendExecutor for GpuState {
    fn name(&self) -> &'static str {
        match self.storage {
            StorageMode::Native => "gles2-native",
            StorageMode::Packed => "gles2-packed",
        }
    }

    fn create_stream(&mut self, desc: crate::stream::StreamDesc) -> Result<usize> {
        GpuState::create_stream(self, desc)
    }

    fn stream_desc(&self, index: usize) -> &crate::stream::StreamDesc {
        &self.streams[index].desc
    }

    fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()> {
        GpuState::write_stream(self, index, values)
    }

    fn read_stream(&mut self, index: usize) -> Result<Vec<f32>> {
        GpuState::read_stream(self, index)
    }

    fn dispatch(&mut self, launch: &KernelLaunch<'_>) -> Result<()> {
        // Multi-output kernels execute one pass per output — the kernel
        // splitting of paper §6 (core GL ES 2.0 has a single render
        // target).
        let stream_args = launch.stream_args();
        let scalar_args = launch.scalar_args();
        for (out_name, _) in &launch.outputs {
            self.run_pass(
                launch.checked,
                launch.ir,
                launch.module_id,
                launch.kernel,
                out_name,
                &stream_args,
                &scalar_args,
            )?;
        }
        Ok(())
    }

    fn reduce(
        &mut self,
        _checked: &CheckedProgram,
        _ir: &brook_ir::IrProgram,
        _kernel: &str,
        op: ReduceOp,
        _simd: Option<&brook_ir::simd::ReduceKernel>,
        input: usize,
    ) -> Result<f32> {
        // The ladder implements the *canonical* operation certification
        // extracted from the kernel body (paper §5.5); the body itself is
        // not re-interpreted on the GPU.
        self.reduce_stream(op, input)
    }

    fn set_dispatch_mode(&mut self, mode: DrawMode) {
        self.dispatch_mode = mode;
    }

    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.gl.set_vram_budget(bytes);
    }

    fn set_device_lost(&mut self, lost: bool) {
        if lost {
            self.gl.lose_context();
        } else {
            self.gl.restore_context();
        }
    }

    fn counters(&self) -> GpuRun {
        let s = self.gl.stats();
        GpuRun {
            alu_ops: s.alu_ops,
            tex_fetches: s.tex_fetches,
            fragments: s.fragments_shaded,
            draw_calls: s.draw_calls,
            readbacks: self.readbacks,
            bytes_uploaded: s.bytes_uploaded,
            bytes_downloaded: s.bytes_downloaded,
        }
    }

    fn reset_counters(&mut self) {
        self.gl.reset_stats();
        self.readbacks = 0;
    }

    fn memory_used(&self) -> usize {
        self.gl.vram_used()
    }

    fn memory_peak(&self) -> usize {
        self.gl.vram_peak()
    }
}
