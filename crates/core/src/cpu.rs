//! The CPU backend: a direct interpreter for Brook Auto kernels.
//!
//! Brook has always shipped a CPU backend (the paper lists it among the
//! four original backends); it serves as the reference semantics every
//! GPU backend must match, and the evaluation validates every GPU result
//! against it (§6: "the correctness of the GPU implementation is
//! retained by validating it with the CPU output").
//!
//! Out-of-range gather indices clamp to the nearest valid element,
//! mirroring the texture-unit semantics of the OpenGL ES 2.0 backend so
//! both backends compute identical results even for sloppy kernels.

use crate::backend::{BackendExecutor, BoundArg, KernelLaunch};
use crate::error::{BrookError, Result};
use crate::stream::StreamDesc;
use brook_ir::eval::{
    apply_assign, brook_bin_op, brook_to_glsl_type, coerce_to, eval_brook_builtin, gather_clamped,
    lane_index, swizzle, value_from_slice,
};
use brook_ir::interp as ir_interp;
use brook_lang::ast::*;
use brook_lang::{CheckedProgram, ReduceOp};
use glsl_es::Value;
use std::collections::HashMap;
use std::ops::Range;

/// Iteration budget per element, defending against runaway loops that
/// slipped past certification (e.g. `compile_unchecked`).
const MAX_ITERATIONS: u64 = 1 << 22;

/// A parameter binding for a CPU kernel run.
pub enum CpuBinding<'a> {
    /// Elementwise input stream.
    Elem {
        /// Backing values (`width` floats per element).
        data: &'a [f32],
        /// Logical shape.
        shape: &'a [usize],
        /// Element width.
        width: u8,
    },
    /// Random-access gather.
    Gather {
        /// Backing values.
        data: &'a [f32],
        /// Logical shape.
        shape: &'a [usize],
        /// Element width.
        width: u8,
    },
    /// Scalar argument.
    Scalar(Value),
    /// Output stream (index into the output buffer list).
    Out(usize),
}

struct Interp<'a, 'b> {
    checked: &'a CheckedProgram,
    bindings: &'a HashMap<String, CpuBinding<'a>>,
    /// Output buffers — possibly *partitions* of the full domain when
    /// running a chunk of a parallel dispatch (see [`run_kernel_range`]).
    outputs: &'a mut [&'b mut [f32]],
    out_shapes: Vec<(String, Vec<usize>, u8)>,
    /// First domain element the output slices cover (0 for full runs).
    out_start: usize,
    /// Current output element index: (x = innermost/linear, y = row).
    pos: (usize, usize),
    /// Output domain extents (innermost, rows).
    domain: (usize, usize),
    /// Whether the domain is linear (rank != 2).
    linear: bool,
    scopes: Vec<HashMap<String, Value>>,
    iterations: u64,
}

enum Flow {
    Normal,
    Return(Option<Value>),
}

/// Runs a (non-reduce) kernel on the CPU over the full output domain.
///
/// `bindings` maps every kernel parameter name to its binding; `outputs`
/// holds one preallocated buffer per `Out` binding index.
///
/// # Errors
/// Reports usage errors (missing bindings, shape mismatches) and
/// evaluation faults (type confusion in unchecked programs).
pub fn run_kernel(
    checked: &CheckedProgram,
    kernel: &str,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [Vec<f32>],
) -> Result<()> {
    let kdef = checked
        .program
        .kernel(kernel)
        .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
    for p in &kdef.params {
        if !bindings.contains_key(&p.name) {
            return Err(BrookError::Usage(format!(
                "missing binding for parameter `{}`",
                p.name
            )));
        }
    }
    // Outputs share the domain of the inputs; kernels without any
    // elementwise input must state the domain via `run_kernel_shaped`.
    let mut out_shapes = Vec::new();
    let domain_shape = bindings
        .iter()
        .find_map(|(_, b)| match b {
            CpuBinding::Elem { shape, .. } => Some(shape.to_vec()),
            _ => None,
        })
        .ok_or_else(|| {
            BrookError::Usage(
                "CPU kernels need at least one elementwise input to infer the domain; use run_kernel_shaped"
                    .into(),
            )
        })?;
    for p in &kdef.params {
        if let Some(CpuBinding::Out(idx)) = bindings.get(&p.name) {
            out_shapes.push((p.name.clone(), domain_shape.clone(), p.ty.width));
            let want: usize = domain_shape.iter().product::<usize>() * p.ty.width as usize;
            if outputs[*idx].len() != want {
                return Err(BrookError::Usage(format!(
                    "output buffer for `{}` has {} values, expected {want}",
                    p.name,
                    outputs[*idx].len()
                )));
            }
        }
    }
    run_domain(checked, kdef, bindings, outputs, out_shapes, &domain_shape)
}

/// Like [`run_kernel`] but with an explicit output domain shape (needed
/// when the kernel has no elementwise inputs, e.g. Mandelbrot, which
/// only uses `indexof`).
///
/// # Errors
/// Same as [`run_kernel`].
pub fn run_kernel_shaped(
    checked: &CheckedProgram,
    kernel: &str,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [Vec<f32>],
    domain_shape: &[usize],
) -> Result<()> {
    let kdef = checked
        .program
        .kernel(kernel)
        .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
    let mut out_shapes = Vec::new();
    for p in &kdef.params {
        if let Some(CpuBinding::Out(_)) = bindings.get(&p.name) {
            out_shapes.push((p.name.clone(), domain_shape.to_vec(), p.ty.width));
        }
    }
    run_domain(checked, kdef, bindings, outputs, out_shapes, domain_shape)
}

fn run_domain(
    checked: &CheckedProgram,
    kdef: &KernelDef,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [Vec<f32>],
    out_shapes: Vec<(String, Vec<usize>, u8)>,
    domain_shape: &[usize],
) -> Result<()> {
    let (dx, dy, _) = domain_extents(domain_shape);
    let mut slices: Vec<&mut [f32]> = outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
    run_domain_range(
        checked,
        kdef,
        bindings,
        &mut slices,
        out_shapes,
        domain_shape,
        0..dx * dy,
    )
}

/// Runs a contiguous *partition* of a kernel's output domain: elements
/// `range` (in row-major domain order), writing into output slices that
/// cover exactly that partition. This is the primitive the data-parallel
/// CPU backend fans out across worker threads — each worker gets a
/// disjoint range and disjoint slices, so results are bit-identical to a
/// serial full-domain run regardless of the partitioning.
///
/// Every output stream must have the domain shape (the context
/// guarantees this for the first output; callers partitioning
/// multi-output kernels must check the rest).
///
/// # Errors
/// As [`run_kernel`], plus slice-length mismatches against `range`.
pub fn run_kernel_range(
    checked: &CheckedProgram,
    kernel: &str,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [&mut [f32]],
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<()> {
    let kdef = checked
        .program
        .kernel(kernel)
        .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
    let mut out_shapes = Vec::new();
    for p in &kdef.params {
        if let Some(CpuBinding::Out(idx)) = bindings.get(&p.name) {
            let want = range.len() * p.ty.width as usize;
            if outputs[*idx].len() != want {
                return Err(BrookError::Usage(format!(
                    "output slice for `{}` has {} values, expected {want} for domain range {range:?}",
                    p.name,
                    outputs[*idx].len()
                )));
            }
            out_shapes.push((p.name.clone(), domain_shape.to_vec(), p.ty.width));
        }
    }
    run_domain_range(checked, kdef, bindings, outputs, out_shapes, domain_shape, range)
}

fn run_domain_range(
    checked: &CheckedProgram,
    kdef: &KernelDef,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [&mut [f32]],
    out_shapes: Vec<(String, Vec<usize>, u8)>,
    domain_shape: &[usize],
    range: Range<usize>,
) -> Result<()> {
    let (dx, dy, linear) = domain_extents(domain_shape);
    debug_assert!(range.end <= dx * dy, "domain range exceeds the domain");
    let mut interp = Interp {
        checked,
        bindings,
        outputs,
        out_shapes,
        out_start: range.start,
        pos: (0, 0),
        domain: (dx, dy),
        linear,
        scopes: Vec::new(),
        iterations: 0,
    };
    for p in range {
        interp.pos = (p % dx, p / dx);
        interp.scopes.clear();
        interp.scopes.push(HashMap::new());
        interp.iterations = 0;
        interp.exec_block(&kdef.body)?;
    }
    Ok(())
}

/// Serial CPU reduction: folds the kernel body over every input element.
///
/// # Errors
/// Usage errors for non-reduce kernels or missing bindings.
pub fn run_reduce(checked: &CheckedProgram, kernel: &str, data: &[f32]) -> Result<f32> {
    let kdef = checked
        .program
        .kernel(kernel)
        .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
    if !kdef.is_reduce {
        return Err(BrookError::Usage(format!(
            "kernel `{kernel}` is not a reduce kernel"
        )));
    }
    let summary = checked
        .summary(kernel)
        .ok_or_else(|| BrookError::Usage("missing kernel summary".into()))?;
    let op = summary
        .reduce_op
        .ok_or_else(|| BrookError::Usage("reduce kernel without a detected operation".into()))?;
    let input_name = kdef
        .params
        .iter()
        .find(|p| p.kind == ParamKind::Stream)
        .map(|p| p.name.clone())
        .ok_or_else(|| BrookError::Usage("reduce kernel without an input stream".into()))?;
    let acc_name = kdef
        .params
        .iter()
        .find(|p| p.kind == ParamKind::ReduceOut)
        .map(|p| p.name.clone())
        .ok_or_else(|| BrookError::Usage("reduce kernel without an accumulator".into()))?;
    let mut acc = op.identity();
    let shape = [data.len()];
    for (i, v) in data.iter().enumerate() {
        // Execute the actual kernel body so user-written reduction bodies
        // (not just the canonical ops) behave as written.
        let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
        let elem = [*v];
        bindings.insert(
            input_name.clone(),
            CpuBinding::Elem {
                data: &elem,
                shape: &[1],
                width: 1,
            },
        );
        bindings.insert(acc_name.clone(), CpuBinding::Scalar(Value::Float(acc)));
        let mut interp = Interp {
            checked,
            bindings: &bindings,
            outputs: &mut [],
            out_shapes: vec![],
            out_start: 0,
            pos: (i % shape[0], 0),
            domain: (1, 1),
            linear: true,
            scopes: vec![HashMap::new()],
            iterations: 0,
        };
        // Seed the accumulator as a mutable local so assignments to it
        // work, then read it back.
        interp.scopes[0].insert(acc_name.clone(), Value::Float(acc));
        interp.exec_block(&kdef.body)?;
        let result = interp.scopes[0]
            .get(&acc_name)
            .and_then(|v| v.as_float())
            .ok_or_else(|| BrookError::Usage("reduce accumulator lost its value".into()))?;
        acc = result;
    }
    Ok(acc)
}

pub(crate) fn domain_extents(shape: &[usize]) -> (usize, usize, bool) {
    if shape.len() == 2 {
        (shape[1], shape[0], false)
    } else {
        (shape.iter().product(), 1, true)
    }
}

impl Interp<'_, '_> {
    fn err(&self, msg: impl Into<String>) -> BrookError {
        BrookError::Usage(msg.into())
    }

    /// Scalar offset of the current position inside the (possibly
    /// partitioned) output buffers for an output of shape `shape`.
    fn out_offset(&self, shape: &[usize], width: u8) -> usize {
        let (x, y) = self.pos;
        let elem = if shape.len() == 2 {
            y * shape[1] + x
        } else {
            y * self.domain.0 + x
        };
        (elem - self.out_start) * width as usize
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for s in self.scopes.iter().rev() {
            if let Some(v) = s.get(name) {
                return Some(*v);
            }
        }
        None
    }

    fn set_var(&mut self, name: &str, v: Value) -> bool {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }

    /// Proportional element index of input stream `shape` for the current
    /// output position — identical arithmetic to the generated GLSL.
    fn elem_value(&self, data: &[f32], shape: &[usize], width: u8) -> Value {
        let (ix, iy) = self.input_index(shape);
        let cols = if shape.len() == 2 {
            shape[1]
        } else {
            shape.iter().product()
        };
        let idx = (iy * cols + ix) * width as usize;
        value_from_slice(&data[idx..idx + width as usize])
    }

    fn input_index(&self, shape: &[usize]) -> (usize, usize) {
        let (dx, dy) = self.domain;
        let (x, y) = self.pos;
        if shape.len() == 2 {
            let (rows, cols) = (shape[0], shape[1]);
            let ix = ((x as f32 + 0.5) / dx as f32 * cols as f32).floor() as usize;
            let iy = ((y as f32 + 0.5) / dy as f32 * rows as f32).floor() as usize;
            (ix.min(cols - 1), iy.min(rows - 1))
        } else {
            let len: usize = shape.iter().product();
            let l = y * dx + x;
            (l.min(len - 1), 0)
        }
    }

    fn exec_block(&mut self, b: &Block) -> Result<Flow> {
        self.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                ret => {
                    flow = ret;
                    break;
                }
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow> {
        match s {
            Stmt::Decl { name, ty, init, .. } => {
                let v = match init {
                    Some(e) => coerce_to(self.eval(e)?, *ty),
                    None => Value::zero(brook_to_glsl_type(*ty)),
                };
                let scope = self
                    .scopes
                    .last_mut()
                    .ok_or_else(|| BrookError::Internal("declaration executed outside any scope".into()))?;
                scope.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                let rhs = self.eval(value)?;
                self.assign(target, *op, rhs)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| self.err("if condition is not a bool"))?;
                if c {
                    self.exec_block(then_block)
                } else if let Some(e) = else_block {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.exec_stmt(i)?;
                }
                loop {
                    if let Some(c) = cond {
                        let cv = self
                            .eval(c)?
                            .as_bool()
                            .ok_or_else(|| self.err("for condition is not a bool"))?;
                        if !cv {
                            break;
                        }
                    }
                    self.iterations += 1;
                    if self.iterations > MAX_ITERATIONS {
                        self.scopes.pop();
                        return Err(self.err("iteration budget exceeded (unbounded loop)"));
                    }
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        ret => {
                            self.scopes.pop();
                            return Ok(ret);
                        }
                    }
                    if let Some(st) = step {
                        self.exec_stmt(st)?;
                    }
                }
                self.scopes.pop();
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => loop {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| self.err("while condition is not a bool"))?;
                if !c {
                    return Ok(Flow::Normal);
                }
                self.iterations += 1;
                if self.iterations > MAX_ITERATIONS {
                    return Err(self.err("iteration budget exceeded (unbounded loop)"));
                }
                match self.exec_block(body)? {
                    Flow::Normal => {}
                    ret => return Ok(ret),
                }
            },
            Stmt::DoWhile { body, cond, .. } => loop {
                self.iterations += 1;
                if self.iterations > MAX_ITERATIONS {
                    return Err(self.err("iteration budget exceeded (unbounded loop)"));
                }
                match self.exec_block(body)? {
                    Flow::Normal => {}
                    ret => return Ok(ret),
                }
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| self.err("do/while condition is not a bool"))?;
                if !c {
                    return Ok(Flow::Normal);
                }
            },
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr { expr, .. } => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.exec_block(b),
        }
    }

    fn assign(&mut self, target: &Expr, op: AssignOp, rhs: Value) -> Result<()> {
        match &target.kind {
            ExprKind::Var(name) => {
                // Output stream parameter?
                if let Some(CpuBinding::Out(idx)) = self.bindings.get(name.as_str()) {
                    let (shape, width) = self
                        .out_shapes
                        .iter()
                        .find(|(n, _, _)| n == name)
                        .map(|(_, s, w)| (s.clone(), *w))
                        .ok_or_else(|| self.err("unknown output shape"))?;
                    let base = self.out_offset(&shape, width);
                    let idx = *idx;
                    let current = value_from_slice(&self.outputs[idx][base..base + width as usize]);
                    let combined = apply_assign(current, op, rhs).map_err(|m| self.err(m))?;
                    let lanes = combined.to_vec4();
                    for (i, slot) in self.outputs[idx][base..base + width as usize]
                        .iter_mut()
                        .enumerate()
                    {
                        *slot = lanes[i];
                    }
                    return Ok(());
                }
                let current = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                let combined = apply_assign(current, op, rhs).map_err(|m| self.err(m))?;
                if !self.set_var(name, combined) {
                    return Err(self.err(format!("cannot assign `{name}`")));
                }
                Ok(())
            }
            ExprKind::Swizzle { base, components } => {
                let ExprKind::Var(name) = &base.kind else {
                    return Err(self.err("swizzled assignment target must be a variable"));
                };
                let current = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                let mut lanes: Vec<f32> = current.lanes().to_vec();
                if lanes.is_empty() {
                    return Err(self.err("cannot swizzle a non-float value"));
                }
                let view = swizzle(&current, components).map_err(|m| self.err(m))?;
                let combined = apply_assign(view, op, rhs).map_err(|m| self.err(m))?;
                let src = combined.lanes();
                for (i, c) in components.bytes().enumerate() {
                    let li = lane_index(c);
                    if li >= lanes.len() || i >= src.len() {
                        return Err(self.err("swizzle assignment out of range"));
                    }
                    lanes[li] = src[i];
                }
                let v = value_from_slice(&lanes);
                if !self.set_var(name, v) {
                    return Err(self.err(format!("cannot assign `{name}`")));
                }
                Ok(())
            }
            _ => Err(self.err("assignment target is not an lvalue")),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        Ok(match &e.kind {
            ExprKind::FloatLit(v) => Value::Float(*v),
            ExprKind::IntLit(v) => Value::Int(*v as i32),
            ExprKind::BoolLit(v) => Value::Bool(*v),
            ExprKind::Var(name) => {
                if let Some(v) = self.lookup(name) {
                    return Ok(v);
                }
                match self.bindings.get(name.as_str()) {
                    Some(CpuBinding::Elem { data, shape, width }) => self.elem_value(data, shape, *width),
                    Some(CpuBinding::Scalar(v)) => *v,
                    Some(CpuBinding::Out(idx)) => {
                        // Reading an output returns its current value.
                        let (shape, width) = self
                            .out_shapes
                            .iter()
                            .find(|(n, _, _)| n == name)
                            .map(|(_, s, w)| (s.clone(), *w))
                            .ok_or_else(|| self.err("unknown output shape"))?;
                        let base = self.out_offset(&shape, width);
                        value_from_slice(&self.outputs[*idx][base..base + width as usize])
                    }
                    Some(CpuBinding::Gather { .. }) => {
                        return Err(self.err(format!("gather `{name}` used without an index")))
                    }
                    None => return Err(self.err(format!("unknown identifier `{name}`"))),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                brook_bin_op(*op, l, r).map_err(|m| self.err(m))?
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        other => other
                            .map(|f| -f)
                            .ok_or_else(|| self.err("cannot negate a bool"))?,
                    },
                    UnOp::Not => Value::Bool(!v.as_bool().ok_or_else(|| self.err("`!` needs a bool"))?),
                }
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self
                    .eval(cond)?
                    .as_bool()
                    .ok_or_else(|| self.err("ternary condition is not a bool"))?;
                if c {
                    self.eval(then_expr)?
                } else {
                    self.eval(else_expr)?
                }
            }
            ExprKind::Call { callee, args } => self.eval_call(callee, args)?,
            ExprKind::Index { base, indices } => {
                let ExprKind::Var(name) = &base.kind else {
                    return Err(self.err("indexed expression is not a gather"));
                };
                let Some(CpuBinding::Gather { data, shape, width }) = self.bindings.get(name.as_str()) else {
                    return Err(self.err(format!("`{name}` is not a gather parameter")));
                };
                let mut idx = Vec::with_capacity(indices.len());
                for ix in indices {
                    let v = self.eval(ix)?;
                    let i = match v {
                        Value::Int(i) => i as i64,
                        // Matches the GPU path: (i + 0.5) texel centering
                        // rounds half-up.
                        Value::Float(f) => (f + 0.5).floor() as i64,
                        _ => return Err(self.err("gather index must be scalar")),
                    };
                    idx.push(i);
                }
                gather_clamped(data, shape, *width, &idx)
            }
            ExprKind::Swizzle { base, components } => {
                let v = self.eval(base)?;
                swizzle(&v, components).map_err(|m| self.err(m))?
            }
            ExprKind::Indexof { stream } => {
                // Index in the stream's own space.
                match self.bindings.get(stream.as_str()) {
                    Some(CpuBinding::Elem { shape, .. }) => {
                        let (ix, iy) = self.input_index(shape);
                        if shape.len() == 2 {
                            Value::Vec2([ix as f32, iy as f32])
                        } else {
                            Value::Vec2([(iy * self.domain.0 + ix) as f32, 0.0])
                        }
                    }
                    Some(CpuBinding::Out(_)) | Some(CpuBinding::Scalar(_)) => {
                        let (x, y) = self.pos;
                        if self.linear {
                            Value::Vec2([(y * self.domain.0 + x) as f32, 0.0])
                        } else {
                            Value::Vec2([x as f32, y as f32])
                        }
                    }
                    _ => return Err(self.err(format!("indexof on non-stream `{stream}`"))),
                }
            }
        })
    }

    fn eval_call(&mut self, callee: &str, args: &[Expr]) -> Result<Value> {
        // Constructors / casts.
        if let Some(width) = match callee {
            "float" => Some(1usize),
            "float2" => Some(2),
            "float3" => Some(3),
            "float4" => Some(4),
            _ => None,
        } {
            let mut lanes = Vec::new();
            for a in args {
                let v = self.eval(a)?;
                match v {
                    Value::Int(i) => lanes.push(i as f32),
                    other => lanes.extend_from_slice(other.lanes()),
                }
            }
            if lanes.len() == 1 && width > 1 {
                return Ok(value_from_slice(&vec![lanes[0]; width]));
            }
            if lanes.len() < width {
                return Err(self.err(format!("`{callee}` constructor needs {width} components")));
            }
            lanes.truncate(width);
            return Ok(value_from_slice(&lanes));
        }
        if callee == "int" {
            let v = self.eval(&args[0])?;
            return Ok(Value::Int(match v {
                Value::Float(f) => f as i32,
                Value::Int(i) => i,
                _ => return Err(self.err("int() needs a scalar")),
            }));
        }
        if brook_lang::builtins::builtin(callee).is_some() {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                let v = self.eval(a)?;
                vals.push(match v {
                    Value::Int(i) => Value::Float(i as f32),
                    other => other,
                });
            }
            return eval_brook_builtin(callee, &vals).map_err(|m| self.err(m));
        }
        // Helper function.
        let Some(f) = self.checked.program.function(callee) else {
            return Err(self.err(format!("unknown function `{callee}`")));
        };
        if self.scopes.len() > 128 {
            return Err(self.err("call depth exceeded"));
        }
        let mut frame = HashMap::new();
        for (a, (pname, pty)) in args.iter().zip(&f.params) {
            let v = coerce_to(self.eval(a)?, *pty);
            frame.insert(pname.clone(), v);
        }
        let f = f.clone();
        let saved = std::mem::take(&mut self.scopes);
        self.scopes = vec![frame];
        let flow = self.exec_block(&f.body)?;
        self.scopes = saved;
        match flow {
            Flow::Return(Some(v)) => Ok(v),
            Flow::Return(None) | Flow::Normal => {
                if f.return_ty.is_none() {
                    Ok(Value::Float(0.0))
                } else {
                    Err(self.err(format!("function `{callee}` did not return a value")))
                }
            }
        }
    }
}

// The scalar semantics (binary ops, builtins, swizzles, gather
// clamping, implicit conversions) moved to `brook_ir::eval` so the flat
// IR interpreter and this tree walker execute the same functions —
// bit-exactness between the oracle and the IR path is a property of
// construction. The imports above keep the walker's call sites
// unchanged.

// ---------------------------------------------------------------------------
// Host-side stream storage and the serial CPU backend.
// ---------------------------------------------------------------------------

/// Validates a host stream shape and allocates its zero-filled buffer.
pub(crate) fn host_create_stream(
    streams: &mut Vec<(StreamDesc, Vec<f32>)>,
    desc: StreamDesc,
) -> Result<usize> {
    if desc.shape.is_empty() || desc.shape.len() > 4 || desc.shape.contains(&0) {
        return Err(BrookError::Usage(
            "streams have 1 to 4 positive dimensions".into(),
        ));
    }
    let len = desc.scalar_len();
    streams.push((desc, vec![0.0; len]));
    Ok(streams.len() - 1)
}

/// Size-checked host stream write.
pub(crate) fn host_write_stream(
    streams: &mut [(StreamDesc, Vec<f32>)],
    index: usize,
    values: &[f32],
) -> Result<()> {
    let (desc, buf) = &mut streams[index];
    if values.len() != desc.scalar_len() {
        return Err(BrookError::Usage(format!(
            "stream expects {} values, got {}",
            desc.scalar_len(),
            values.len()
        )));
    }
    buf.copy_from_slice(values);
    Ok(())
}

/// Builds the [`CpuBinding`] map for a launch over host streams, hands
/// the taken-out output buffers to `runner`, and restores them afterwards
/// (whether or not the run succeeded).
///
/// `runner` receives `(program, kernel, bindings, output buffers, domain
/// shape)`; the output domain is the first output stream's shape, as on
/// the GPU path.
pub(crate) fn dispatch_on_host<F>(
    streams: &mut [(StreamDesc, Vec<f32>)],
    launch: &KernelLaunch<'_>,
    runner: F,
) -> Result<()>
where
    F: FnOnce(
        &CheckedProgram,
        &str,
        &HashMap<String, CpuBinding<'_>>,
        &mut [Vec<f32>],
        &[usize],
    ) -> Result<()>,
{
    // Move output buffers out so the binding map can borrow the
    // remaining streams immutably.
    let mut out_bufs: Vec<Vec<f32>> = Vec::with_capacity(launch.outputs.len());
    let mut out_index_of: HashMap<&str, usize> = HashMap::new();
    for (name, idx) in &launch.outputs {
        out_index_of.insert(name.as_str(), out_bufs.len());
        out_bufs.push(std::mem::take(&mut streams[*idx].1));
    }
    let domain_shape = streams
        .get(launch.outputs[0].1)
        .map(|(desc, _)| desc.shape.clone())
        .ok_or_else(|| BrookError::Internal("launch output index out of range of the stream table".into()))?;
    let result = {
        let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
        for (name, arg) in &launch.args {
            let binding = match arg {
                BoundArg::Elem(i) => {
                    let (desc, data) = &streams[*i];
                    CpuBinding::Elem {
                        data,
                        shape: &desc.shape,
                        width: desc.width,
                    }
                }
                BoundArg::Gather(i) => {
                    let (desc, data) = &streams[*i];
                    CpuBinding::Gather {
                        data,
                        shape: &desc.shape,
                        width: desc.width,
                    }
                }
                BoundArg::Scalar(v) => CpuBinding::Scalar(*v),
                BoundArg::Out(_) => CpuBinding::Out(out_index_of[name.as_str()]),
            };
            bindings.insert(name.clone(), binding);
        }
        runner(
            launch.checked,
            launch.kernel,
            &bindings,
            &mut out_bufs,
            &domain_shape,
        )
    };
    for ((_, idx), buf) in launch.outputs.iter().zip(out_bufs) {
        streams[*idx].1 = buf;
    }
    result
}

/// Serial CPU reduction over a host stream.
pub(crate) fn reduce_on_host(
    streams: &[(StreamDesc, Vec<f32>)],
    checked: &CheckedProgram,
    kernel: &str,
    input: usize,
) -> Result<f32> {
    run_reduce(checked, kernel, &streams[input].1)
}

// ---------------------------------------------------------------------------
// The flat-IR execution path (the default since BrookIR).
// ---------------------------------------------------------------------------

/// Converts an IR interpreter fault into the runtime's error type,
/// keeping the source provenance the IR threads through.
pub(crate) fn exec_err(e: ir_interp::ExecError) -> BrookError {
    BrookError::Usage(e.render())
}

/// Builds the *positional* binding vector for an IR kernel launch.
/// `launch.args` pairs every parameter in declaration order, which is
/// exactly the IR's parameter order, so the translation is index-wise.
pub(crate) fn ir_bindings<'a>(
    streams: &'a [(StreamDesc, Vec<f32>)],
    launch_args: &[(String, BoundArg)],
    out_index_of: &HashMap<&str, usize>,
) -> Vec<ir_interp::Binding<'a>> {
    launch_args
        .iter()
        .map(|(name, arg)| match arg {
            BoundArg::Elem(i) => {
                let (desc, data) = &streams[*i];
                ir_interp::Binding::Elem {
                    data,
                    shape: &desc.shape,
                    width: desc.width,
                }
            }
            BoundArg::Gather(i) => {
                let (desc, data) = &streams[*i];
                ir_interp::Binding::Gather {
                    data,
                    shape: &desc.shape,
                    width: desc.width,
                }
            }
            BoundArg::Scalar(v) => ir_interp::Binding::Scalar(*v),
            BoundArg::Out(_) => ir_interp::Binding::Out(out_index_of[name.as_str()]),
        })
        .collect()
}

/// Dispatches a launch through the flat IR interpreter. `run_range`
/// receives `(kernel, bindings, output buffers, domain shape)` and
/// partitions the domain however it likes (serially here; the parallel
/// backend fans chunks out to workers).
pub(crate) fn dispatch_ir_on_host<F>(
    streams: &mut [(StreamDesc, Vec<f32>)],
    launch: &KernelLaunch<'_>,
    kernel: &brook_ir::IrKernel,
    runner: F,
) -> Result<()>
where
    F: FnOnce(&brook_ir::IrKernel, &[ir_interp::Binding<'_>], &mut [Vec<f32>], &[usize]) -> Result<()>,
{
    // Move output buffers out so the binding vector can borrow the
    // remaining streams immutably.
    let mut out_bufs: Vec<Vec<f32>> = Vec::with_capacity(launch.outputs.len());
    let mut out_index_of: HashMap<&str, usize> = HashMap::new();
    for (name, idx) in &launch.outputs {
        out_index_of.insert(name.as_str(), out_bufs.len());
        out_bufs.push(std::mem::take(&mut streams[*idx].1));
    }
    let domain_shape = streams
        .get(launch.outputs[0].1)
        .map(|(desc, _)| desc.shape.clone())
        .ok_or_else(|| BrookError::Internal("launch output index out of range of the stream table".into()))?;
    let result = {
        let bindings = ir_bindings(streams, &launch.args, &out_index_of);
        runner(kernel, &bindings, &mut out_bufs, &domain_shape)
    };
    for ((_, idx), buf) in launch.outputs.iter().zip(out_bufs) {
        streams[*idx].1 = buf;
    }
    result
}

/// Serial full-domain IR run (the default `runner` for
/// [`dispatch_ir_on_host`]): the Tier-2 closure chain when the compiler
/// admitted the kernel, the lane engine in element blocks when only the
/// lane planner did, the scalar interpreter otherwise — bit-identical
/// every way, by the engines' fallback guarantees.
pub(crate) fn ir_run_full(
    kernel: &brook_ir::IrKernel,
    lane: Option<&brook_ir::lanes::LaneKernel>,
    tier: Option<&brook_ir::tier::TierKernel>,
    bindings: &[ir_interp::Binding<'_>],
    outputs: &mut [Vec<f32>],
    domain_shape: &[usize],
) -> Result<()> {
    let (dx, dy, _) = ir_interp::domain_extents(domain_shape);
    let mut slices: Vec<&mut [f32]> = outputs.iter_mut().map(|v| v.as_mut_slice()).collect();
    match (tier, lane) {
        (Some(tk), Some(lk)) => {
            brook_ir::tier::run_kernel_range(tk, lk, kernel, bindings, &mut slices, domain_shape, 0..dx * dy)
                .map_err(exec_err)
        }
        (None, Some(lk)) => {
            brook_ir::lanes::run_kernel_range(lk, kernel, bindings, &mut slices, domain_shape, 0..dx * dy)
                .map_err(exec_err)
        }
        _ => ir_interp::run_kernel_range(kernel, bindings, &mut slices, domain_shape, 0..dx * dy)
            .map_err(exec_err),
    }
}

/// The serial CPU backend — the reference semantics every other backend
/// is validated against (paper §6).
///
/// Since BrookIR, the default execution engine is the flat IR
/// interpreter (`brook_ir::interp`): a preallocated register frame, no
/// tree walk. The AST tree walker in this module is retained as the
/// *differential oracle* — [`CpuBackend::ast_walker`] builds a backend
/// that still executes it, and the fuzz campaigns assert bit-exactness
/// between the two on every generated kernel. Kernels absent from a
/// module's IR (possible only past a disabled certification gate, e.g.
/// recursive helpers) transparently fall back to the walker.
#[derive(Default)]
pub struct CpuBackend {
    streams: Vec<(StreamDesc, Vec<f32>)>,
    use_ast_walker: bool,
}

impl CpuBackend {
    /// A backend with no streams, executing the flat IR.
    pub fn new() -> Self {
        CpuBackend::default()
    }

    /// A backend executing the legacy AST tree walker — the
    /// differential oracle the IR interpreter is validated against.
    pub fn ast_walker() -> Self {
        CpuBackend {
            streams: Vec::new(),
            use_ast_walker: true,
        }
    }
}

impl BackendExecutor for CpuBackend {
    fn name(&self) -> &'static str {
        if self.use_ast_walker {
            "cpu-ast"
        } else {
            "cpu"
        }
    }

    fn create_stream(&mut self, desc: StreamDesc) -> Result<usize> {
        host_create_stream(&mut self.streams, desc)
    }

    fn stream_desc(&self, index: usize) -> &StreamDesc {
        &self.streams[index].0
    }

    fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()> {
        host_write_stream(&mut self.streams, index, values)
    }

    fn read_stream(&mut self, index: usize) -> Result<Vec<f32>> {
        Ok(self.streams[index].1.clone())
    }

    fn dispatch(&mut self, launch: &KernelLaunch<'_>) -> Result<()> {
        // The walker itself can only execute kernels present in the
        // checked AST; synthetic kernels (the fusion planner's) exist
        // only in IR form, so even the oracle backend runs those
        // through the IR interpreter.
        let ast_has_kernel = launch.checked.program.kernel(launch.kernel).is_some();
        if !self.use_ast_walker || !ast_has_kernel {
            if let Some(kernel) = launch.ir.kernel(launch.kernel) {
                let (lane, tier) = if self.use_ast_walker {
                    (None, None)
                } else {
                    (
                        launch.lanes.kernel(launch.kernel),
                        launch.tiers.kernel(launch.kernel),
                    )
                };
                return dispatch_ir_on_host(&mut self.streams, launch, kernel, |k, b, outs, domain| {
                    ir_run_full(k, lane, tier, b, outs, domain)
                });
            }
        }
        dispatch_on_host(&mut self.streams, launch, run_kernel_shaped)
    }

    fn reduce(
        &mut self,
        checked: &CheckedProgram,
        ir: &brook_ir::IrProgram,
        kernel: &str,
        _op: ReduceOp,
        simd: Option<&brook_ir::simd::ReduceKernel>,
        input: usize,
    ) -> Result<f32> {
        // The interpreters fold the actual kernel body, so the detected
        // canonical op is only needed by ladder-style backends.
        if !self.use_ast_walker {
            if let Some(k) = ir.kernel(kernel) {
                // Admitted vectorized reduce: SIMD per-lane partials +
                // reassociation-safe combine, proven bit-exact with the
                // serial fold; faults rerun the serial fold for the
                // canonical error surface.
                if let Some(rk) = simd {
                    return brook_ir::simd::run_reduce(rk, k, &self.streams[input].1).map_err(exec_err);
                }
                return ir_interp::run_reduce(k, &self.streams[input].1).map_err(exec_err);
            }
        }
        reduce_on_host(&self.streams, checked, kernel, input)
    }
}
