//! The pluggable execution-backend boundary of the Brook Auto runtime.
//!
//! The paper's central claim is that one certified Brook program runs
//! unchanged on wildly different execution substrates — a low-end
//! OpenGL ES 2.0 GPU or a CPU reference — with equivalent semantics
//! (§6: "the correctness of the GPU implementation is retained by
//! validating it with the CPU output"). This module makes that boundary
//! an explicit, checkable interface instead of a closed enum:
//! [`BackendExecutor`] is everything an execution substrate must provide
//! (stream storage, kernel dispatch, reduction, telemetry), and
//! [`crate::BrookContext`] drives any implementation through it.
//!
//! Three implementations ship in-tree:
//!
//! * [`crate::cpu::CpuBackend`] — the serial reference interpreter;
//! * [`crate::cpu_parallel::ParallelCpuBackend`] — the same element
//!   semantics, with the output domain split across worker threads;
//! * the OpenGL ES 2.0 simulator backend behind
//!   [`crate::BrookContext::gles2`] (native-float or packed-RGBA8
//!   storage, selected by the device profile).
//!
//! [`registered_backends`] enumerates ready-made context factories for
//! every in-tree backend so differential tests (and every future
//! backend) inherit the cross-validation argument for free.

use crate::error::Result;
use crate::stream::StreamDesc;
use brook_lang::{CheckedProgram, ReduceOp};
use gles2_sim::{DeviceProfile, DrawMode, Value};
use perf_model::GpuRun;

/// How one kernel parameter is bound for a dispatch, after the context
/// has validated argument/parameter agreement. Stream bindings carry the
/// backend-local stream index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundArg {
    /// Elementwise input stream (`float a<>`).
    Elem(usize),
    /// Random-access gather stream (`float t[]` / `float t[][]`).
    Gather(usize),
    /// Scalar uniform.
    Scalar(Value),
    /// Output stream (`out float o<>`).
    Out(usize),
}

/// A fully classified, backend-independent kernel launch: the contract
/// between [`crate::BrookContext::run`] and [`BackendExecutor::dispatch`].
///
/// Invariants the context guarantees before dispatch:
///
/// * `args` pairs every kernel parameter (declaration order) with a
///   matching binding;
/// * `outputs` is non-empty and lists the `Out` bindings in order;
/// * no stream index appears both as an input (`Elem`/`Gather`) and as
///   an output — Brook kernels never read their own output.
pub struct KernelLaunch<'a> {
    /// The type-checked translation unit owning the kernel.
    pub checked: &'a CheckedProgram,
    /// The lowered (and optimized, re-certified) BrookIR of the unit —
    /// the form backends execute. Kernels absent from it (possible only
    /// past a disabled certification gate, e.g. recursive helpers) fall
    /// back to the AST tree walker / AST shader generator.
    pub ir: &'a brook_ir::IrProgram,
    /// Lane-vectorization plans for the unit, decided once at compile
    /// time (`brook_ir::lanes::plan`). CPU backends execute kernels
    /// present here through the lane engine in element blocks; rejected
    /// kernels run the scalar IR interpreter.
    pub lanes: &'a brook_ir::lanes::LaneProgram,
    /// Tier-2 closure-chain plans for the unit, compiled once at
    /// compile time (`brook_ir::tier::compile`) from the lane plans.
    /// CPU backends execute kernels present here through the
    /// closure-threaded engine; rejected kernels keep the lane engine
    /// (or the scalar interpreter).
    pub tiers: &'a brook_ir::tier::TierProgram,
    /// Module identity, stable across launches (backends key compiled
    /// artifact caches on it).
    pub module_id: u64,
    /// Kernel name.
    pub kernel: &'a str,
    /// `(parameter name, binding)` in declaration order.
    pub args: Vec<(String, BoundArg)>,
    /// `(parameter name, stream index)` of every output parameter.
    pub outputs: Vec<(String, usize)>,
}

impl KernelLaunch<'_> {
    /// The scalar (uniform) bindings of this launch.
    pub fn scalar_args(&self) -> Vec<(String, Value)> {
        self.args
            .iter()
            .filter_map(|(n, b)| match b {
                BoundArg::Scalar(v) => Some((n.clone(), *v)),
                _ => None,
            })
            .collect()
    }

    /// Every stream binding (inputs, gathers and outputs) as
    /// `(parameter name, stream index)`.
    pub fn stream_args(&self) -> Vec<(String, Option<usize>)> {
        self.args
            .iter()
            .filter_map(|(n, b)| match b {
                BoundArg::Elem(i) | BoundArg::Gather(i) | BoundArg::Out(i) => Some((n.clone(), Some(*i))),
                BoundArg::Scalar(_) => None,
            })
            .collect()
    }
}

/// An execution substrate for certified Brook Auto programs.
///
/// The contract every implementation must honour, because the
/// differential-test layer asserts it across all registered backends:
///
/// * streams are dense `f32` buffers addressed by the index returned
///   from [`create_stream`](Self::create_stream); `write` then `read`
///   roundtrips values bit-exactly (modulo the device's storage format
///   canonicalization);
/// * [`dispatch`](Self::dispatch) computes every output element from the
///   same inputs independently — the Brook streaming model — and agrees
///   with the CPU reference interpreter within the storage format's
///   tolerance;
/// * [`reduce`](Self::reduce) folds a stream to one scalar with the
///   kernel's reduction semantics.
///
/// The telemetry hooks ([`counters`](Self::counters),
/// [`memory_used`](Self::memory_used), …) have no-op defaults so pure
/// CPU backends only implement the execution core.
pub trait BackendExecutor {
    /// Stable backend identifier (used in test reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Allocates a stream, returning its backend-local index.
    ///
    /// # Errors
    /// Shape violations and device capacity limits.
    fn create_stream(&mut self, desc: StreamDesc) -> Result<usize>;

    /// Static description of a stream created earlier.
    fn stream_desc(&self, index: usize) -> &StreamDesc;

    /// Copies host values into a stream (`streamRead`).
    ///
    /// # Errors
    /// Size mismatches and device transfer failures.
    fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()>;

    /// Copies a stream back to the host (`streamWrite`).
    ///
    /// # Errors
    /// Device transfer failures.
    fn read_stream(&mut self, index: usize) -> Result<Vec<f32>>;

    /// Executes one kernel launch over the full output domain.
    ///
    /// # Errors
    /// Code generation, device and evaluation failures.
    fn dispatch(&mut self, launch: &KernelLaunch<'_>) -> Result<()>;

    /// Folds `input` to a scalar with a reduce kernel. `ir` is the
    /// module's lowered program (host backends fold its flat form; the
    /// device ladder only needs the canonical `op`). `simd` is the
    /// module's vectorized-reduce plan when the planner admitted the
    /// kernel — CPU backends may fold through it (bit-exact with the
    /// serial fold by the admission proof); other backends ignore it.
    ///
    /// # Errors
    /// Evaluation and device failures.
    fn reduce(
        &mut self,
        checked: &CheckedProgram,
        ir: &brook_ir::IrProgram,
        kernel: &str,
        op: ReduceOp,
        simd: Option<&brook_ir::simd::ReduceKernel>,
        input: usize,
    ) -> Result<f32>;

    /// Switches between full execution and sampled cost estimation
    /// (meaningful for device-model backends; no-op elsewhere).
    fn set_dispatch_mode(&mut self, _mode: DrawMode) {}

    /// Installs (or clears) a device memory budget in bytes.
    fn set_memory_budget(&mut self, _bytes: Option<usize>) {}

    /// Marks the device lost (or restores it) — the hook deterministic
    /// fault injection drives. Backends with a real device model fail
    /// every subsequent transfer and draw until restored; pure host
    /// backends have no device to lose and ignore it (the recovery
    /// ladder synthesizes their loss errors before dispatch instead).
    fn set_device_lost(&mut self, _lost: bool) {}

    /// Execution counters for the performance model (zeros for backends
    /// without a device cost model).
    fn counters(&self) -> GpuRun {
        GpuRun::default()
    }

    /// Resets [`counters`](Self::counters) (e.g. to exclude warm-up from
    /// a measurement window).
    fn reset_counters(&mut self) {}

    /// Bytes of device memory currently allocated (0 for host backends).
    fn memory_used(&self) -> usize {
        0
    }

    /// High-water mark of device memory over the backend's lifetime (0
    /// for host backends) — the figure a static memory plan (BA002)
    /// must upper-bound.
    fn memory_peak(&self) -> usize {
        0
    }
}

/// A named factory for a ready-to-use [`crate::BrookContext`] — the unit
/// the differential-test matrix enumerates.
#[derive(Clone, Copy)]
pub struct BackendSpec {
    /// Backend identifier, matching [`BackendExecutor::name`].
    pub name: &'static str,
    /// Builds a fresh context on this backend.
    pub make: fn() -> crate::BrookContext,
}

impl std::fmt::Debug for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendSpec").field("name", &self.name).finish()
    }
}

/// Every in-tree backend, in reference-first order: the serial CPU
/// interpreter (the semantics oracle), the data-parallel CPU backend,
/// and the GL ES 2.0 simulator in both storage modes (native float on
/// the desktop-class profile, packed RGBA8 on the embedded target).
pub fn registered_backends() -> Vec<BackendSpec> {
    vec![
        BackendSpec {
            name: "cpu",
            make: crate::BrookContext::cpu,
        },
        BackendSpec {
            name: "cpu-parallel",
            make: crate::BrookContext::cpu_parallel,
        },
        BackendSpec {
            name: "gles2-native",
            make: || crate::BrookContext::gles2(DeviceProfile::radeon_hd3400()),
        },
        BackendSpec {
            name: "gles2-packed",
            make: || crate::BrookContext::gles2(DeviceProfile::videocore_iv()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arg;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<_> = registered_backends().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["cpu", "cpu-parallel", "gles2-native", "gles2-packed"]);
    }

    #[test]
    fn registry_factories_report_their_own_name() {
        for spec in registered_backends() {
            let ctx = (spec.make)();
            assert_eq!(ctx.backend_name(), spec.name);
        }
    }

    #[test]
    fn every_registered_backend_runs_saxpy() {
        for spec in registered_backends() {
            let mut ctx = (spec.make)();
            let module = ctx
                .compile("kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }")
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let x = ctx.stream(&[4]).expect("x");
            let y = ctx.stream(&[4]).expect("y");
            let r = ctx.stream(&[4]).expect("r");
            ctx.write(&x, &[1.0, 2.0, 3.0, 4.0]).expect("write x");
            ctx.write(&y, &[10.0, 10.0, 10.0, 10.0]).expect("write y");
            ctx.run(
                &module,
                "saxpy",
                &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)],
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(
                ctx.read(&r).expect("read"),
                vec![12.0, 14.0, 16.0, 18.0],
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn launch_accessors_partition_bindings() {
        let checked = brook_lang::parse_and_check(
            "kernel void f(float a<>, float t[], float k, out float o<>) { o = a + t[0] + k; }",
        )
        .expect("check");
        let ir = {
            let (p, errs) = brook_ir::lower::lower_program(&checked);
            assert!(errs.is_empty(), "{errs:?}");
            p
        };
        let lanes = brook_ir::lanes::LaneProgram::plan_program(&ir);
        let tiers = brook_ir::tier::TierProgram::compile_program(&ir, &lanes);
        let launch = KernelLaunch {
            checked: &checked,
            ir: &ir,
            lanes: &lanes,
            tiers: &tiers,
            module_id: 1,
            kernel: "f",
            args: vec![
                ("a".into(), BoundArg::Elem(0)),
                ("t".into(), BoundArg::Gather(1)),
                ("k".into(), BoundArg::Scalar(Value::Float(2.0))),
                ("o".into(), BoundArg::Out(2)),
            ],
            outputs: vec![("o".into(), 2)],
        };
        assert_eq!(launch.scalar_args(), vec![("k".to_string(), Value::Float(2.0))]);
        let streams = launch.stream_args();
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|(_, i)| i.is_some()));
    }
}
