//! `brookc` — the Brook Auto compiler driver.
//!
//! Mirrors the workflow of the paper's modified Brook compiler (§5.1):
//! parse + type-check a `.br` translation unit, run the ISO 26262
//! certification rules, and emit the generated GLSL ES 1.00 shaders.
//!
//! ```sh
//! brookc kernel.br                  # certify, list kernels
//! brookc kernel.br --report         # full compliance report
//! brookc kernel.br --emit-glsl      # print generated shaders (packed storage)
//! brookc kernel.br --emit-glsl --native
//! brookc kernel.br --matrix         # rule x kernel pass/fail matrix
//! echo 'kernel ...' | brookc -      # read from stdin
//! ```
//!
//! Exit status: 0 when compliant, 1 on any violation or error — suitable
//! for CI gates in a certification workflow.

use brook_cert::{certify, render_matrix, render_report, CertConfig};
use brook_codegen::{generate_kernel_shader, KernelShapes, StorageMode};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    input: String,
    report: bool,
    matrix: bool,
    emit_glsl: bool,
    native: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: brookc <file.br | -> [--report] [--matrix] [--emit-glsl] [--native]\n\
         \n\
         Certifies a Brook Auto translation unit against the ISO 26262 rule\n\
         catalogue (BA001..BA012) and optionally emits the OpenGL ES 2.0\n\
         shader code the backend generates."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut input = None;
    let mut opts = Options {
        input: String::new(),
        report: false,
        matrix: false,
        emit_glsl: false,
        native: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--report" => opts.report = true,
            "--matrix" => opts.matrix = true,
            "--emit-glsl" => opts.emit_glsl = true,
            "--native" => opts.native = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            path => {
                if input.replace(path.to_owned()).is_some() {
                    eprintln!("multiple input files given");
                    usage();
                }
            }
        }
    }
    match input {
        Some(i) => opts.input = i,
        None => usage(),
    }
    opts
}

fn read_source(input: &str) -> Result<String, String> {
    if input == "-" {
        let mut src = String::new();
        std::io::stdin()
            .read_to_string(&mut src)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(src)
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("reading `{input}`: {e}"))
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let src = match read_source(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("brookc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let checked = match brook_lang::parse_and_check(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("brookc: compilation failed");
            for d in &e.diagnostics {
                eprintln!("  {d}");
            }
            return ExitCode::FAILURE;
        }
    };
    let config = CertConfig::default();
    let mut report = certify(&checked, &config);
    // The AST-level gate alone is not the full certification: the
    // provable-fault rules (BA013 out-of-bounds gather, BA014 division
    // by zero) come from the abstract interpreter over the *optimized*
    // IR. Run the same lower → optimize → analyze pipeline `compile()`
    // runs and merge its findings, so a CLI pass is the same pass every
    // backend enforces.
    if report.is_compliant() {
        let (mut ir, lower_errors) = brook_ir::lower::lower_program(&checked);
        if lower_errors.is_empty() {
            report.passes =
                brook_cert::ir_check::optimize_program(&mut ir, &config, &brook_ir::passes::default_passes());
            let (analysis, _facts) = brook_cert::absint::analyze_and_annotate_program(&mut ir, true);
            for ka in &analysis.kernels {
                let Some(kr) = report.kernels.iter_mut().find(|r| r.kernel == ka.kernel) else {
                    continue;
                };
                kr.findings.extend(ka.faults.iter().cloned());
                kr.refined_estimate = match (ka.pruned_estimate, kr.instruction_estimate) {
                    (Some(p), Some(a)) => Some(p.min(a)),
                    (p, a) => p.or(a),
                };
            }
            report.analysis = analysis;
        }
    }
    if opts.report {
        print!("{}", render_report(&report));
    }
    if opts.matrix {
        print!("{}", render_matrix(&report));
    }
    if !opts.report && !opts.matrix {
        for k in &report.kernels {
            let summary = checked.summary(&k.kernel);
            let kind = match summary {
                Some(s) if s.is_reduce => "reduce kernel",
                _ => "kernel",
            };
            println!(
                "{kind} `{}`: {} ({} pass(es), worst-case {} instruction(s))",
                k.kernel,
                if k.is_compliant() {
                    "compliant"
                } else {
                    "NOT COMPLIANT"
                },
                k.passes_required,
                k.instruction_estimate
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "unbounded".into()),
            );
        }
    }
    if opts.emit_glsl {
        let storage = if opts.native {
            StorageMode::Native
        } else {
            StorageMode::Packed
        };
        for summary in &checked.kernels {
            if summary.is_reduce {
                if let Some(op) = summary.reduce_op {
                    println!("// ---- reduce kernel `{}` (X-axis pass) ----", summary.name);
                    print!(
                        "{}",
                        brook_codegen::reduce_pass_shader(op, brook_codegen::ReduceAxis::X, storage)
                    );
                }
                continue;
            }
            for output in &summary.outputs {
                match generate_kernel_shader(
                    &checked,
                    &summary.name,
                    output,
                    &KernelShapes::default(),
                    storage,
                ) {
                    Ok(generated) => {
                        println!("// ---- kernel `{}`, output `{output}` ----", summary.name);
                        print!("{}", generated.glsl);
                    }
                    Err(e) => {
                        eprintln!("brookc: codegen for `{}`/{output} failed: {e}", summary.name);
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if report.is_compliant() {
        ExitCode::SUCCESS
    } else {
        eprintln!("brookc: {} certification violation(s)", report.violation_count());
        ExitCode::FAILURE
    }
}
