//! Deferred stream-graph execution: record kernel launches, fuse
//! producer→consumer chains into single passes, elide the intermediates.
//!
//! Eager execution pays the paper's pass-count economics in full: §6
//! *splits* multi-output kernels into one GL pass per output, and every
//! pass costs a texture round-trip. This module implements the converse
//! transform. A [`BrookGraph`] opened with [`crate::BrookContext::graph`]
//! records the same `run`/`reduce` calls the eager API takes, as a
//! dataflow DAG over streams; `execute()` then runs a planner that
//!
//! 1. **fuses** chains of elementwise kernels — a producer whose single
//!    output feeds exactly one consumer elementwise — into one synthetic
//!    kernel, built with [`brook_lang::build::AstBuilder`] by inlining
//!    the producer's body as a let-bound local ahead of the consumer's
//!    body, and
//! 2. **elides** the fused-away intermediates entirely: virtual streams
//!    created with [`BrookGraph::stream`] that no surviving launch
//!    touches are never allocated — no texture, no round-trip.
//!
//! Fusion can never bypass certification: every fused kernel is
//! pretty-printed, re-parsed, re-type-checked and pushed through the
//! same [`crate::BrookContext::compile`] gate as user code, under the
//! executing context's own limits. A fusion the gate rejects (too many
//! merged inputs, blown instruction budget) is silently skipped and the
//! original launches run unchanged — the planner is an optimizer, not a
//! loophole. [`brook_cert::CertPredicates`] provides the cheap forward
//! filter so hopeless fusions never reach the gate.
//!
//! ## Fusability rules
//!
//! A producer P feeding a consumer C over stream `s` is fused only when:
//!
//! * `s` is **virtual** (graph-created, so no host handle can observe
//!   it) and is referenced exactly once — C's elementwise binding;
//! * P has exactly one output, written once (by P);
//! * every elementwise input and every output of both kernels shares
//!   `s`'s shape (so `indexof` is interchangeable across them); gather
//!   tables are exempt — random access inlines soundly;
//! * neither kernel calls helper functions or takes `indexof` of a
//!   gather (both inline unsoundly without more bookkeeping);
//! * no launch between P and C writes any stream P reads (fusion moves
//!   P's reads to C's position);
//! * the merged parameter lists pass
//!   [`CertPredicates::fusion_io_within_limits`], and the fused program
//!   passes the full gate.
//!
//! Execution itself is backend-agnostic: fused launches are ordinary
//! [`KernelLaunch`]es dispatched through the same
//! [`crate::backend::BackendExecutor`]
//! every eager launch uses, so all registered backends inherit fusion
//! for free — on the GL backend the fused GLSL falls out of codegen.
//!
//! ```
//! use brook_auto::{Arg, BrookContext};
//! let mut ctx = BrookContext::cpu();
//! let module = ctx.compile(
//!     "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
//!      kernel void inc(float a<>, out float o<>) { o = a + 1.0; }",
//! )?;
//! let a = ctx.stream(&[4])?;
//! let out = ctx.stream(&[4])?;
//! ctx.write(&a, &[1.0, 2.0, 3.0, 4.0])?;
//! let mut g = ctx.graph();
//! let tmp = g.stream(&[4])?; // virtual: never allocated when fused away
//! g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])?;
//! g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])?;
//! let report = g.execute()?;
//! assert_eq!(report.eager_passes, 2);
//! assert_eq!(report.executed_passes, 1);
//! assert_eq!(report.elided_streams, 1);
//! assert_eq!(ctx.read(&out)?, vec![3.0, 5.0, 7.0, 9.0]);
//! # Ok::<(), brook_auto::BrookError>(())
//! ```

use crate::backend::KernelLaunch;
use crate::context::{classify_call, fresh_owner_id, Arg, BrookContext, BrookModule, HandleArg};
use crate::error::{BrookError, Result};
use crate::stream::{Stream, StreamDesc};
use brook_cert::CertPredicates;
use brook_lang::ast::{Block, Expr, ExprKind, KernelDef, ParamKind, ScalarKind, Stmt, Type};
use brook_lang::build::{declared_locals, AstBuilder, RenameMap};
use brook_lang::pretty::print_program;
use brook_lang::ReduceOp;
use std::collections::{HashMap, HashSet};

/// Ticket for a recorded `reduce`; redeem it against the issuing
/// graph's [`GraphReport`] after `execute()`. Like streams and modules,
/// the handle is stamped with its owner — redeeming it against another
/// graph's report is rejected instead of silently returning that
/// graph's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceHandle {
    slot: usize,
    graph_id: u64,
}

/// One synthetic kernel the planner created.
#[derive(Debug, Clone)]
pub struct FusedKernel {
    /// Name of the fused kernel (derived from its constituents).
    pub name: String,
    /// Kernel names folded into it, producer first.
    pub replaced: Vec<String>,
    /// Canonical Brook source of the fused program — the exact text that
    /// went back through the certification gate.
    pub source: String,
}

/// What `execute()` did: the launch plan it ran and what fusion saved.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// Passes the recording would have cost eagerly (one per output per
    /// launch, one per reduce).
    pub eager_passes: usize,
    /// Passes actually executed after fusion.
    pub executed_passes: usize,
    /// Virtual intermediates fused away — never allocated on the
    /// backend.
    pub elided_streams: usize,
    /// Bytes of device traffic the elided intermediates would have cost
    /// (one texture write plus one texture read each).
    pub intermediate_bytes_elided: usize,
    /// The synthetic kernels the planner built, in creation order.
    pub fused: Vec<FusedKernel>,
    reduce_values: Vec<f32>,
    graph_id: u64,
}

impl GraphReport {
    /// The scalar a recorded `reduce` produced.
    ///
    /// # Panics
    /// Panics when the handle was issued by a different graph — a caller
    /// bug (mixed-up recordings), not a runtime condition, so it is not
    /// a recoverable error.
    pub fn reduce_value(&self, handle: ReduceHandle) -> f32 {
        assert_eq!(
            handle.graph_id, self.graph_id,
            "ReduceHandle redeemed against a different graph's report"
        );
        self.reduce_values[handle.slot]
    }
}

enum OpKind {
    Launch {
        module: BrookModule,
        kernel: String,
        args: Vec<(String, HandleArg)>,
        outputs: Vec<(String, Stream)>,
        /// Kernel names this launch stands for (len > 1 after fusion).
        replaced: Vec<String>,
    },
    Reduce {
        module: BrookModule,
        kernel: String,
        op: ReduceOp,
        input: Stream,
        slot: usize,
    },
}

struct Op {
    /// Stable identity across plan rewrites (indices shift when ops
    /// merge; the planner's no-retry set is keyed on uids).
    uid: usize,
    kind: OpKind,
}

/// A deferred recording of kernel launches on one context.
///
/// Obtained from [`crate::BrookContext::graph`]; borrows the context
/// exclusively until [`BrookGraph::execute`] consumes the recording, so
/// the captured dataflow cannot be invalidated mid-recording.
pub struct BrookGraph<'ctx> {
    ctx: &'ctx mut BrookContext,
    graph_id: u64,
    virtuals: Vec<StreamDesc>,
    ops: Vec<Op>,
    next_uid: usize,
    n_reduces: usize,
}

impl<'ctx> BrookGraph<'ctx> {
    pub(crate) fn new(ctx: &'ctx mut BrookContext) -> Self {
        BrookGraph {
            ctx,
            graph_id: fresh_owner_id(),
            virtuals: Vec::new(),
            ops: Vec::new(),
            next_uid: 0,
            n_reduces: 0,
        }
    }

    fn uid(&mut self) -> usize {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// Creates a *virtual* scalar `float` stream: a handle usable only
    /// inside this recording. If fusion elides it, it is never allocated
    /// on the backend; otherwise it is materialized at execute time.
    ///
    /// # Errors
    /// Shape violations (same rules as [`crate::BrookContext::stream`]).
    pub fn stream(&mut self, shape: &[usize]) -> Result<Stream> {
        self.stream_with_width(shape, 1)
    }

    /// Creates a virtual stream of `floatN` elements (`width` in 1..=4).
    ///
    /// # Errors
    /// As [`BrookGraph::stream`].
    pub fn stream_with_width(&mut self, shape: &[usize], width: u8) -> Result<Stream> {
        crate::stream::validate_stream_params(shape, width).map_err(BrookError::Usage)?;
        let index = self.virtuals.len();
        self.virtuals.push(StreamDesc {
            shape: shape.to_vec(),
            width,
        });
        Ok(Stream {
            index,
            context_id: self.graph_id,
        })
    }

    fn lookup_desc(&self, s: &Stream) -> Result<StreamDesc> {
        lookup_stream_desc(self.ctx, self.graph_id, &self.virtuals, s)
    }

    /// Compiles and certifies Brook source on the underlying context —
    /// a passthrough so recording code that owns the graph (which holds
    /// the context borrow) can still compile modules.
    ///
    /// # Errors
    /// As [`crate::BrookContext::compile`].
    pub fn compile(&mut self, source: &str) -> Result<BrookModule> {
        self.ctx.compile(source)
    }

    /// Records a kernel launch — same signature, same validation and
    /// same error surface as [`crate::BrookContext::run`], but nothing
    /// executes until [`BrookGraph::execute`].
    ///
    /// # Errors
    /// Exactly the eager path's: argument/parameter mismatches, foreign
    /// streams and foreign modules.
    pub fn run(&mut self, module: &BrookModule, kernel: &str, args: &[Arg<'_>]) -> Result<()> {
        self.ctx.check_module(module)?;
        let kdef = module
            .checked
            .program
            .kernel(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?
            .clone();
        let graph_id = self.graph_id;
        let (args, outputs) = {
            let ctx = &*self.ctx;
            let virtuals = &self.virtuals;
            classify_call(&kdef, kernel, args, &mut |s: &Stream| {
                lookup_stream_desc(ctx, graph_id, virtuals, s)
            })?
        };
        let uid = self.uid();
        self.ops.push(Op {
            uid,
            kind: OpKind::Launch {
                module: module.clone(),
                kernel: kernel.to_owned(),
                args,
                outputs,
                replaced: vec![kernel.to_owned()],
            },
        });
        Ok(())
    }

    /// Records a reduction; the scalar becomes available on the report
    /// via the returned handle after `execute()`.
    ///
    /// # Errors
    /// As [`crate::BrookContext::reduce`] (unknown/non-reduce kernels,
    /// foreign streams/modules).
    pub fn reduce(&mut self, module: &BrookModule, kernel: &str, input: &Stream) -> Result<ReduceHandle> {
        self.ctx.check_module(module)?;
        self.lookup_desc(input)?;
        let summary = module
            .checked
            .summary(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
        if !summary.is_reduce {
            return Err(BrookError::Usage(format!(
                "kernel `{kernel}` is not a reduce kernel"
            )));
        }
        let op = summary
            .reduce_op
            .ok_or_else(|| BrookError::Usage("reduce kernel without a detected operation".into()))?;
        let slot = self.n_reduces;
        self.n_reduces += 1;
        let uid = self.uid();
        self.ops.push(Op {
            uid,
            kind: OpKind::Reduce {
                module: module.clone(),
                kernel: kernel.to_owned(),
                op,
                input: *input,
                slot,
            },
        });
        Ok(ReduceHandle {
            slot,
            graph_id: self.graph_id,
        })
    }

    /// Pass cost of the current plan: one per output per launch (the §6
    /// splitting), one per reduce.
    fn passes(&self) -> usize {
        self.ops
            .iter()
            .map(|o| match &o.kind {
                OpKind::Launch { outputs, .. } => outputs.len(),
                OpKind::Reduce { .. } => 1,
            })
            .sum()
    }

    /// Optimizes the recorded graph, materializes surviving virtual
    /// streams, runs every planned launch on the context's backend and
    /// returns the report.
    ///
    /// # Errors
    /// Backend failures during materialization or dispatch. Planning
    /// itself never fails a recording the eager path would have run:
    /// unfusable or gate-rejected chains simply execute unfused.
    pub fn execute(mut self) -> Result<GraphReport> {
        let eager_passes = self.passes();
        let (elided, fused) = self.fuse_pass();
        let executed_passes = self.passes();
        let intermediate_bytes_elided = elided.iter().map(|d| d.scalar_len() * 4 * 2).sum();

        // Materialize every virtual stream a surviving launch touches.
        let mut needed: Vec<usize> = Vec::new();
        for op in &self.ops {
            let streams: Vec<Stream> = match &op.kind {
                OpKind::Launch { args, .. } => args.iter().filter_map(|(_, h)| h.stream()).collect(),
                OpKind::Reduce { input, .. } => vec![*input],
            };
            for s in streams {
                if s.context_id == self.graph_id && !needed.contains(&s.index) {
                    needed.push(s.index);
                }
            }
        }
        let mut materialized: HashMap<usize, Stream> = HashMap::new();
        for v in needed {
            let desc = self.virtuals[v].clone();
            let real = self.ctx.stream_with_width(&desc.shape, desc.width)?;
            materialized.insert(v, real);
        }
        let graph_id = self.graph_id;
        let resolve = |s: Stream| -> Stream {
            if s.context_id == graph_id {
                materialized[&s.index]
            } else {
                s
            }
        };

        let mut reduce_values = vec![0.0f32; self.n_reduces];
        for op in &self.ops {
            match &op.kind {
                OpKind::Launch {
                    module,
                    kernel,
                    args,
                    outputs,
                    ..
                } => {
                    let bound = args
                        .iter()
                        .map(|(n, h)| {
                            let h = match h {
                                HandleArg::Elem(s) => HandleArg::Elem(resolve(*s)),
                                HandleArg::Gather(s) => HandleArg::Gather(resolve(*s)),
                                HandleArg::Out(s) => HandleArg::Out(resolve(*s)),
                                HandleArg::Scalar(v) => HandleArg::Scalar(*v),
                            };
                            (n.clone(), h.to_bound())
                        })
                        .collect();
                    let launch = KernelLaunch {
                        checked: &module.checked,
                        module_id: module.id,
                        kernel,
                        args: bound,
                        outputs: outputs
                            .iter()
                            .map(|(n, s)| (n.clone(), resolve(*s).index))
                            .collect(),
                    };
                    self.ctx.backend.dispatch(&launch)?;
                }
                OpKind::Reduce {
                    module,
                    kernel,
                    op,
                    input,
                    slot,
                } => {
                    reduce_values[*slot] =
                        self.ctx
                            .backend
                            .reduce(&module.checked, kernel, *op, resolve(*input).index)?;
                }
            }
        }
        Ok(GraphReport {
            eager_passes,
            executed_passes,
            elided_streams: elided.len(),
            intermediate_bytes_elided,
            fused,
            reduce_values,
            graph_id,
        })
    }

    // -- planner -------------------------------------------------------------

    /// Repeatedly fuses the first admissible producer→consumer pair
    /// until none remains. Returns the elided intermediates' descriptors
    /// and the fused-kernel records.
    fn fuse_pass(&mut self) -> (Vec<StreamDesc>, Vec<FusedKernel>) {
        let mut elided = Vec::new();
        let mut fused = Vec::new();
        // Pairs the gate (or construction) already rejected, by op uid —
        // never retried, so the scan terminates.
        let mut rejected: HashSet<(usize, usize)> = HashSet::new();
        while let Some((i, j, inter)) = self.find_candidate(&rejected) {
            let pair = (self.ops[i].uid, self.ops[j].uid);
            match self.try_fuse(i, j, inter) {
                Some((kind, record)) => {
                    elided.push(self.virtuals[inter.index].clone());
                    fused.push(record);
                    let uid = self.uid();
                    self.ops[j] = Op { uid, kind };
                    self.ops.remove(i);
                }
                None => {
                    rejected.insert(pair);
                }
            }
        }
        (elided, fused)
    }

    /// Finds the first fusable (producer index, consumer index,
    /// intermediate) triple the cheap rules admit and `rejected` does
    /// not veto. The expensive check — the certification gate on the
    /// fused program — happens in `try_fuse`.
    fn find_candidate(&self, rejected: &HashSet<(usize, usize)>) -> Option<(usize, usize, Stream)> {
        for j in 0..self.ops.len() {
            let OpKind::Launch {
                module: c_module,
                kernel: c_kernel,
                args: c_args,
                outputs: c_outputs,
                ..
            } = &self.ops[j].kind
            else {
                continue;
            };
            for (_, h) in c_args {
                let HandleArg::Elem(s) = h else { continue };
                if s.context_id != self.graph_id {
                    continue; // only virtual intermediates are elidable
                }
                // Exactly one writer, before the consumer.
                let writers: Vec<usize> = (0..self.ops.len())
                    .filter(|&k| self.writes(&self.ops[k].kind, *s))
                    .collect();
                let [i] = writers[..] else { continue };
                if i >= j {
                    continue;
                }
                if rejected.contains(&(self.ops[i].uid, self.ops[j].uid)) {
                    continue;
                }
                // Exactly one reader anywhere: this binding.
                if self.read_count(*s) != 1 {
                    continue;
                }
                let OpKind::Launch {
                    module: p_module,
                    kernel: p_kernel,
                    args: p_args,
                    outputs: p_outputs,
                    ..
                } = &self.ops[i].kind
                else {
                    continue;
                };
                if p_outputs.len() != 1 {
                    continue;
                }
                let p_kdef = p_module
                    .checked
                    .program
                    .kernel(p_kernel)
                    .expect("recorded kernel");
                let c_kdef = c_module
                    .checked
                    .program
                    .kernel(c_kernel)
                    .expect("recorded kernel");
                if calls_helper(&p_kdef.body, &p_module.checked.program)
                    || calls_helper(&c_kdef.body, &c_module.checked.program)
                {
                    continue;
                }
                // Shape/width uniformity across the chain (gathers exempt).
                let inter_desc = &self.virtuals[s.index];
                if !self.elementwise_uniform(p_args, p_outputs, inter_desc)
                    || !self.elementwise_uniform(c_args, c_outputs, inter_desc)
                {
                    continue;
                }
                let p_out_ty = p_kdef.params.iter().find(|p| p.kind == ParamKind::OutStream);
                let widths_ok = p_out_ty
                    .is_some_and(|p| p.ty.scalar == ScalarKind::Float && p.ty.width == inter_desc.width);
                if !widths_ok {
                    continue;
                }
                // Fusion moves the producer's reads to the consumer's
                // position; nothing in between may overwrite them.
                let p_reads: Vec<Stream> = p_args
                    .iter()
                    .filter_map(|(_, h)| match h {
                        HandleArg::Elem(s) | HandleArg::Gather(s) => Some(*s),
                        _ => None,
                    })
                    .collect();
                let interference =
                    (i + 1..j).any(|k| p_reads.iter().any(|r| self.writes(&self.ops[k].kind, *r)));
                if interference {
                    continue;
                }
                // The producer's reads must also be disjoint from the
                // consumer's outputs: a read-then-overwrite pipeline
                // (P reads x, C writes x) is legal eagerly, but fused it
                // would become a kernel reading its own output — the
                // exact launch shape `classify_call` forbids.
                if p_reads.iter().any(|r| c_outputs.iter().any(|(_, o)| o == r)) {
                    continue;
                }
                // Cheap gate pre-filter: merged I/O within limits.
                let mut inputs: HashSet<(u64, usize)> = HashSet::new();
                for (_, h) in p_args.iter().chain(c_args) {
                    if let HandleArg::Elem(st) | HandleArg::Gather(st) = h {
                        if st != s {
                            inputs.insert((st.context_id, st.index));
                        }
                    }
                }
                let preds = CertPredicates::new(self.ctx.cert_config());
                if !preds.fusion_io_within_limits(inputs.len() as u32, c_outputs.len() as u32) {
                    continue;
                }
                return Some((i, j, *s));
            }
        }
        None
    }

    fn writes(&self, kind: &OpKind, s: Stream) -> bool {
        match kind {
            OpKind::Launch { outputs, .. } => outputs.iter().any(|(_, o)| *o == s),
            OpKind::Reduce { .. } => false,
        }
    }

    /// How many times `s` is read anywhere in the plan (elementwise,
    /// gather, or as a reduce input).
    fn read_count(&self, s: Stream) -> usize {
        self.ops
            .iter()
            .map(|op| match &op.kind {
                OpKind::Launch { args, .. } => args
                    .iter()
                    .filter(|(_, h)| matches!(h, HandleArg::Elem(x) | HandleArg::Gather(x) if *x == s))
                    .count(),
                OpKind::Reduce { input, .. } => usize::from(*input == s),
            })
            .sum()
    }

    /// True when every elementwise input and every output of a launch
    /// shares `domain`'s shape — the condition under which `indexof` is
    /// interchangeable across the chain.
    fn elementwise_uniform(
        &self,
        args: &[(String, HandleArg)],
        outputs: &[(String, Stream)],
        domain: &StreamDesc,
    ) -> bool {
        let shape_of = |s: &Stream| self.lookup_desc(s).map(|d| d.shape).ok();
        args.iter().all(|(_, h)| match h {
            HandleArg::Elem(s) => shape_of(s).is_some_and(|sh| sh == domain.shape),
            _ => true,
        }) && outputs
            .iter()
            .all(|(_, s)| shape_of(s).is_some_and(|sh| sh == domain.shape))
    }

    /// Builds the fused kernel for `ops[i] → ops[j]` over `inter`,
    /// compiles it through the real certification gate, and returns the
    /// replacement op. `None` means "leave the pair unfused" — the gate
    /// rejected it or construction hit an inlining limitation.
    fn try_fuse(&mut self, i: usize, j: usize, inter: Stream) -> Option<(OpKind, FusedKernel)> {
        let built = {
            let OpKind::Launch {
                module: p_module,
                kernel: p_kernel,
                args: p_args,
                replaced: p_replaced,
                ..
            } = &self.ops[i].kind
            else {
                return None;
            };
            let OpKind::Launch {
                module: c_module,
                kernel: c_kernel,
                args: c_args,
                outputs: c_outputs,
                replaced: c_replaced,
            } = &self.ops[j].kind
            else {
                return None;
            };
            let p_kdef = p_module.checked.program.kernel(p_kernel)?;
            let c_kdef = c_module.checked.program.kernel(c_kernel)?;
            let replaced: Vec<String> = p_replaced.iter().chain(c_replaced).cloned().collect();
            let name = format!("fused_{}", replaced.join("_"));
            build_fused_kernel(&name, p_kdef, p_args, c_kdef, c_args, inter).map(|(source, args, outputs)| {
                (
                    source,
                    args,
                    outputs
                        .into_iter()
                        .zip(c_outputs)
                        .map(|(n, (_, s))| (n, *s))
                        .collect::<Vec<_>>(),
                    replaced,
                    name,
                )
            })
        };
        let (source, args, outputs, replaced, name) = built?;
        // The real gate: parse, type-check and certify the fused program
        // under this context's limits. Any rejection leaves the chain
        // unfused. (`compile` errors when enforcement is on; the
        // explicit compliance check covers contexts that disabled
        // enforcement — fusion never relaxes the gate.)
        let module = match self.ctx.compile(&source) {
            Ok(m) if m.report.is_compliant() => m,
            _ => return None,
        };
        let record = FusedKernel {
            name: name.clone(),
            replaced: replaced.clone(),
            source,
        };
        Some((
            OpKind::Launch {
                module,
                kernel: name,
                args,
                outputs,
                replaced,
            },
            record,
        ))
    }
}

/// The three-way stream-ownership resolution a recording needs: the
/// context's own streams, this graph's virtual streams, anything else
/// foreign. One implementation serves both record-time classification
/// and plan-time shape queries, so the two can never disagree.
fn lookup_stream_desc(
    ctx: &BrookContext,
    graph_id: u64,
    virtuals: &[StreamDesc],
    s: &Stream,
) -> Result<StreamDesc> {
    if s.context_id == ctx.context_id {
        Ok(ctx.backend.stream_desc(s.index).clone())
    } else if s.context_id == graph_id {
        virtuals
            .get(s.index)
            .cloned()
            .ok_or_else(|| BrookError::Usage("unknown virtual stream".into()))
    } else {
        Err(BrookError::Usage("stream belongs to a different context".into()))
    }
}

/// True when the block calls any helper function defined in `program`
/// (builtins and vector constructors are not items, so they never
/// match).
fn calls_helper(body: &Block, program: &brook_lang::ast::Program) -> bool {
    fn expr(e: &Expr, program: &brook_lang::ast::Program) -> bool {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                program.function(callee).is_some() || args.iter().any(|a| expr(a, program))
            }
            ExprKind::Binary { lhs, rhs, .. } => expr(lhs, program) || expr(rhs, program),
            ExprKind::Unary { operand, .. } => expr(operand, program),
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => expr(cond, program) || expr(then_expr, program) || expr(else_expr, program),
            ExprKind::Index { base, indices } => {
                expr(base, program) || indices.iter().any(|i| expr(i, program))
            }
            ExprKind::Swizzle { base, .. } => expr(base, program),
            _ => false,
        }
    }
    fn stmt(s: &Stmt, program: &brook_lang::ast::Program) -> bool {
        match s {
            Stmt::Decl { init, .. } => init.as_ref().is_some_and(|e| expr(e, program)),
            Stmt::Assign { target, value, .. } => expr(target, program) || expr(value, program),
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                expr(cond, program)
                    || block(then_block, program)
                    || else_block.as_ref().is_some_and(|b| block(b, program))
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                init.as_ref().is_some_and(|s| stmt(s, program))
                    || cond.as_ref().is_some_and(|e| expr(e, program))
                    || step.as_ref().is_some_and(|s| stmt(s, program))
                    || block(body, program)
            }
            Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
                expr(cond, program) || block(body, program)
            }
            Stmt::Return { value, .. } => value.as_ref().is_some_and(|e| expr(e, program)),
            Stmt::Expr { expr: e, .. } => expr(e, program),
            Stmt::Block(b) => block(b, program),
        }
    }
    fn block(b: &Block, program: &brook_lang::ast::Program) -> bool {
        b.stmts.iter().any(|s| stmt(s, program))
    }
    block(body, program)
}

/// Constructs the fused kernel source for producer→consumer over
/// `inter`: canonical parameter names (`in*` elementwise, `g*` gathers,
/// `k*` scalars, `o*` outputs), the producer's body inlined first with
/// its output let-bound to the zero-initialized local `t0` (virtual
/// intermediates are zero-filled, so conditional producer writes keep
/// eager semantics), then the consumer's body reading `t0`. Every
/// `indexof` is redirected to the first output — sound because the
/// planner already proved the chain elementwise-uniform.
///
/// Returns `(source, fused bindings, fused output names)`; `None` when
/// an inlining limitation (unmapped name, `indexof` of a gather,
/// non-float intermediate) blocks construction.
#[allow(clippy::type_complexity)]
fn build_fused_kernel(
    name: &str,
    p_kdef: &KernelDef,
    p_args: &[(String, HandleArg)],
    c_kdef: &KernelDef,
    c_args: &[(String, HandleArg)],
    inter: Stream,
) -> Option<(String, Vec<(String, HandleArg)>, Vec<String>)> {
    let mut b = AstBuilder::new();
    let mut params: Vec<brook_lang::ast::Param> = Vec::new();
    let mut out_params: Vec<brook_lang::ast::Param> = Vec::new();
    let mut bindings: Vec<(String, HandleArg)> = Vec::new();
    let mut out_bindings: Vec<(String, HandleArg)> = Vec::new();
    let mut by_stream: HashMap<(u64, usize), String> = HashMap::new();
    let (mut n_in, mut n_g, mut n_k, mut n_out) = (0usize, 0usize, 0usize, 0usize);
    let mut out_names: Vec<String> = Vec::new();

    // The first fused output's name; every indexof redirects to it.
    let indexof_target = "o0".to_owned();
    let local = "t0";

    let mut map_stage = |b: &mut AstBuilder,
                         kdef: &KernelDef,
                         args: &[(String, HandleArg)],
                         is_consumer: bool|
     -> Option<RenameMap> {
        let mut map = RenameMap::default();
        for p in &kdef.params {
            let (_, h) = args.iter().find(|(n, _)| *n == p.name)?;
            let new = match (p.kind, h) {
                (ParamKind::Stream, HandleArg::Elem(s)) if *s == inter => {
                    // The chain edge: reads become the let-bound local.
                    local.to_owned()
                }
                (ParamKind::Stream, HandleArg::Elem(s)) => by_stream
                    .entry((s.context_id, s.index))
                    .or_insert_with(|| {
                        let n = format!("in{n_in}");
                        n_in += 1;
                        params.push(b.param(&n, p.ty, ParamKind::Stream));
                        bindings.push((n.clone(), HandleArg::Elem(*s)));
                        n
                    })
                    .clone(),
                (ParamKind::Gather { rank }, HandleArg::Gather(s)) => by_stream
                    .entry((s.context_id, s.index))
                    .or_insert_with(|| {
                        let n = format!("g{n_g}");
                        n_g += 1;
                        params.push(b.param(&n, p.ty, ParamKind::Gather { rank }));
                        bindings.push((n.clone(), HandleArg::Gather(*s)));
                        n
                    })
                    .clone(),
                (ParamKind::Scalar, HandleArg::Scalar(v)) => {
                    let n = format!("k{n_k}");
                    n_k += 1;
                    params.push(b.param(&n, p.ty, ParamKind::Scalar));
                    bindings.push((n.clone(), HandleArg::Scalar(*v)));
                    n
                }
                (ParamKind::OutStream, HandleArg::Out(s)) => {
                    if is_consumer {
                        let n = format!("o{n_out}");
                        n_out += 1;
                        out_params.push(b.param(&n, p.ty, ParamKind::OutStream));
                        out_bindings.push((n.clone(), HandleArg::Out(*s)));
                        out_names.push(n.clone());
                        n
                    } else {
                        // The producer's single output becomes the local.
                        local.to_owned()
                    }
                }
                _ => return None,
            };
            // indexof of a stream-domain parameter redirects to the
            // fused output; gathers get no entry, so indexof of a
            // gather fails the clone and vetoes the fusion.
            if matches!(p.kind, ParamKind::Stream | ParamKind::OutStream) {
                map.indexof.insert(p.name.clone(), indexof_target.clone());
            }
            map.vars.insert(p.name.clone(), new);
        }
        let prefix = if is_consumer { "c" } else { "p" };
        for l in declared_locals(&kdef.body) {
            map.vars.insert(l.clone(), format!("{prefix}_{l}"));
        }
        Some(map)
    };

    let p_map = map_stage(&mut b, p_kdef, p_args, false)?;
    let c_map = map_stage(&mut b, c_kdef, c_args, true)?;

    // `t0` mirrors the virtual intermediate: zero-filled before the
    // producer runs.
    let p_out = p_kdef.params.iter().find(|p| p.kind == ParamKind::OutStream)?;
    if p_out.ty.scalar != ScalarKind::Float {
        return None;
    }
    let init = if p_out.ty.width == 1 {
        b.float_lit(0.0)
    } else {
        let zeros: Vec<Expr> = (0..p_out.ty.width).map(|_| b.float_lit(0.0)).collect();
        b.call(format!("float{}", p_out.ty.width), zeros)
    };
    let mut body = vec![b.decl(local, Type::float(p_out.ty.width), Some(init))];
    for s in &p_kdef.body.stmts {
        body.push(b.clone_stmt_renamed(s, &p_map).ok()?);
    }
    for s in &c_kdef.body.stmts {
        body.push(b.clone_stmt_renamed(s, &c_map).ok()?);
    }

    params.extend(out_params);
    bindings.extend(out_bindings);
    let kernel = b.kernel(name, params, body);
    let program = b.program(vec![kernel]);
    Some((print_program(&program), bindings, out_names))
}
