//! Deferred stream-graph execution: record kernel launches, fuse
//! producer→consumer chains into single passes, elide the intermediates.
//!
//! Eager execution pays the paper's pass-count economics in full: §6
//! *splits* multi-output kernels into one GL pass per output, and every
//! pass costs a texture round-trip. This module implements the converse
//! transform. A [`BrookGraph`] opened with [`crate::BrookContext::graph`]
//! records the same `run`/`reduce` calls the eager API takes, as a
//! dataflow DAG over streams; `execute()` then runs a planner that
//!
//! 1. **fuses** chains of elementwise kernels — a producer whose single
//!    output feeds exactly one consumer elementwise — into one synthetic
//!    kernel, by inlining the producer's **BrookIR** ahead of the
//!    consumer's: the producer's output writes become register
//!    assignments to a zero-initialized chain register, the consumer's
//!    elementwise reads of the intermediate become reads of that
//!    register, and both instruction streams concatenate with their
//!    structured region trees intact (no AST surgery, no re-parse), and
//! 2. **elides** the fused-away intermediates entirely: virtual streams
//!    created with [`BrookGraph::stream`] that no surviving launch
//!    touches are never allocated — no texture, no round-trip.
//!
//! Fusion can never bypass certification: every fused kernel is pushed
//! through the BrookIR verifier and the IR-level certification re-check
//! (`brook_cert::ir_check`) under the executing context's own limits,
//! then through the cert-gated optimization pipeline — the same
//! lower→check→optimize→re-check spine `compile` applies to user code.
//! A fusion the gate rejects (too many merged inputs, blown instruction
//! budget) is silently skipped and the original launches run unchanged —
//! the planner is an optimizer, not a loophole.
//! [`brook_cert::CertPredicates`] provides the cheap forward filter so
//! hopeless fusions never reach the gate.
//!
//! ## Fusability rules
//!
//! A producer P feeding a consumer C over stream `s` is fused only when:
//!
//! * `s` is **virtual** (graph-created, so no host handle can observe
//!   it) and is referenced exactly once — C's elementwise binding;
//! * P has exactly one output, written once (by P);
//! * every elementwise input and every output of both kernels shares
//!   `s`'s shape (so `indexof` is interchangeable across them); gather
//!   tables are exempt — random access inlines soundly;
//! * helper calls are no obstacle — they were already inlined into the
//!   IR by lowering (the AST-surgery planner had to veto them);
//! * no launch between P and C writes any stream P reads (fusion moves
//!   P's reads to C's position);
//! * the merged parameter lists pass
//!   [`CertPredicates::fusion_io_within_limits`], and the fused program
//!   passes the full gate.
//!
//! Execution itself is backend-agnostic: fused launches are ordinary
//! [`KernelLaunch`]es dispatched through the same
//! [`crate::backend::BackendExecutor`]
//! every eager launch uses, so all registered backends inherit fusion
//! for free — on the GL backend the fused GLSL falls out of codegen.
//!
//! ```
//! use brook_auto::{Arg, BrookContext};
//! let mut ctx = BrookContext::cpu();
//! let module = ctx.compile(
//!     "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
//!      kernel void inc(float a<>, out float o<>) { o = a + 1.0; }",
//! )?;
//! let a = ctx.stream(&[4])?;
//! let out = ctx.stream(&[4])?;
//! ctx.write(&a, &[1.0, 2.0, 3.0, 4.0])?;
//! let mut g = ctx.graph();
//! let tmp = g.stream(&[4])?; // virtual: never allocated when fused away
//! g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])?;
//! g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])?;
//! let report = g.execute()?;
//! assert_eq!(report.eager_passes, 2);
//! assert_eq!(report.executed_passes, 1);
//! assert_eq!(report.elided_streams, 1);
//! assert_eq!(ctx.read(&out)?, vec![3.0, 5.0, 7.0, 9.0]);
//! # Ok::<(), brook_auto::BrookError>(())
//! ```

use crate::backend::KernelLaunch;
use crate::context::{
    classify_call, fresh_owner_id, verify_launch_ir, Arg, BrookContext, BrookModule, HandleArg,
};
use crate::error::{BrookError, Result};
use crate::stream::{Stream, StreamDesc};
use brook_cert::CertPredicates;
use brook_ir::{Inst, IrKernel, IrParam, IrProgram, LoopNode, Node, Reg};
use brook_lang::ast::{ParamKind, ScalarKind, Type};
use brook_lang::ReduceOp;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Ticket for a recorded `reduce`; redeem it against the issuing
/// graph's [`GraphReport`] after `execute()`. Like streams and modules,
/// the handle is stamped with its owner — redeeming it against another
/// graph's report is rejected instead of silently returning that
/// graph's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceHandle {
    slot: usize,
    graph_id: u64,
}

/// One synthetic kernel the planner created.
#[derive(Debug, Clone)]
pub struct FusedKernel {
    /// Name of the fused kernel (derived from its constituents).
    pub name: String,
    /// Kernel names folded into it, producer first.
    pub replaced: Vec<String>,
    /// Canonical BrookIR text of the fused kernel — the exact form that
    /// went through the IR verifier + certification re-check (and the
    /// golden-snapshot anchor).
    pub source: String,
    /// The fused IR itself (what every backend executes / the GL
    /// backend generates GLSL from).
    pub ir: Arc<IrProgram>,
}

/// What `execute()` did: the launch plan it ran and what fusion saved.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// Passes the recording would have cost eagerly (one per output per
    /// launch, one per reduce).
    pub eager_passes: usize,
    /// Passes actually executed after fusion.
    pub executed_passes: usize,
    /// Virtual intermediates fused away — never allocated on the
    /// backend.
    pub elided_streams: usize,
    /// Bytes of device traffic the elided intermediates would have cost
    /// (one texture write plus one texture read each).
    pub intermediate_bytes_elided: usize,
    /// The synthetic kernels the planner built, in creation order.
    pub fused: Vec<FusedKernel>,
    reduce_values: Vec<f32>,
    graph_id: u64,
}

impl GraphReport {
    /// The scalar a recorded `reduce` produced.
    ///
    /// # Panics
    /// Panics when the handle was issued by a different graph — a caller
    /// bug (mixed-up recordings), not a runtime condition, so it is not
    /// a recoverable error.
    pub fn reduce_value(&self, handle: ReduceHandle) -> f32 {
        assert_eq!(
            handle.graph_id, self.graph_id,
            "ReduceHandle redeemed against a different graph's report"
        );
        self.reduce_values[handle.slot]
    }
}

enum OpKind {
    Launch {
        module: BrookModule,
        kernel: String,
        args: Vec<(String, HandleArg)>,
        outputs: Vec<(String, Stream)>,
        /// Kernel names this launch stands for (len > 1 after fusion).
        replaced: Vec<String>,
    },
    Reduce {
        module: BrookModule,
        kernel: String,
        op: ReduceOp,
        input: Stream,
        slot: usize,
    },
}

struct Op {
    /// Stable identity across plan rewrites (indices shift when ops
    /// merge; the planner's no-retry set is keyed on uids).
    uid: usize,
    kind: OpKind,
}

/// A deferred recording of kernel launches on one context.
///
/// Obtained from [`crate::BrookContext::graph`]; borrows the context
/// exclusively until [`BrookGraph::execute`] consumes the recording, so
/// the captured dataflow cannot be invalidated mid-recording.
pub struct BrookGraph<'ctx> {
    ctx: &'ctx mut BrookContext,
    graph_id: u64,
    virtuals: Vec<StreamDesc>,
    ops: Vec<Op>,
    next_uid: usize,
    n_reduces: usize,
}

impl<'ctx> BrookGraph<'ctx> {
    pub(crate) fn new(ctx: &'ctx mut BrookContext) -> Self {
        BrookGraph {
            ctx,
            graph_id: fresh_owner_id(),
            virtuals: Vec::new(),
            ops: Vec::new(),
            next_uid: 0,
            n_reduces: 0,
        }
    }

    fn uid(&mut self) -> usize {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// Creates a *virtual* scalar `float` stream: a handle usable only
    /// inside this recording. If fusion elides it, it is never allocated
    /// on the backend; otherwise it is materialized at execute time.
    ///
    /// # Errors
    /// Shape violations (same rules as [`crate::BrookContext::stream`]).
    pub fn stream(&mut self, shape: &[usize]) -> Result<Stream> {
        self.stream_with_width(shape, 1)
    }

    /// Creates a virtual stream of `floatN` elements (`width` in 1..=4).
    ///
    /// # Errors
    /// As [`BrookGraph::stream`].
    pub fn stream_with_width(&mut self, shape: &[usize], width: u8) -> Result<Stream> {
        crate::stream::validate_stream_params(shape, width).map_err(BrookError::Usage)?;
        let index = self.virtuals.len();
        self.virtuals.push(StreamDesc {
            shape: shape.to_vec(),
            width,
        });
        Ok(Stream {
            index,
            context_id: self.graph_id,
        })
    }

    fn lookup_desc(&self, s: &Stream) -> Result<StreamDesc> {
        lookup_stream_desc(self.ctx, self.graph_id, &self.virtuals, s)
    }

    /// Compiles and certifies Brook source on the underlying context —
    /// a passthrough so recording code that owns the graph (which holds
    /// the context borrow) can still compile modules.
    ///
    /// # Errors
    /// As [`crate::BrookContext::compile`].
    pub fn compile(&mut self, source: &str) -> Result<BrookModule> {
        self.ctx.compile(source)
    }

    /// Records a kernel launch — same signature, same validation and
    /// same error surface as [`crate::BrookContext::run`], but nothing
    /// executes until [`BrookGraph::execute`].
    ///
    /// # Errors
    /// Exactly the eager path's: argument/parameter mismatches, foreign
    /// streams and foreign modules.
    pub fn run(&mut self, module: &BrookModule, kernel: &str, args: &[Arg<'_>]) -> Result<()> {
        self.ctx.check_module(module)?;
        let kdef = module
            .checked
            .program
            .kernel(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?
            .clone();
        let graph_id = self.graph_id;
        let (args, outputs) = {
            let ctx = &*self.ctx;
            let virtuals = &self.virtuals;
            classify_call(&kdef, kernel, args, &mut |s: &Stream| {
                lookup_stream_desc(ctx, graph_id, virtuals, s)
            })?
        };
        let uid = self.uid();
        self.ops.push(Op {
            uid,
            kind: OpKind::Launch {
                module: module.clone(),
                kernel: kernel.to_owned(),
                args,
                outputs,
                replaced: vec![kernel.to_owned()],
            },
        });
        Ok(())
    }

    /// Records a reduction; the scalar becomes available on the report
    /// via the returned handle after `execute()`.
    ///
    /// # Errors
    /// As [`crate::BrookContext::reduce`] (unknown/non-reduce kernels,
    /// foreign streams/modules).
    pub fn reduce(&mut self, module: &BrookModule, kernel: &str, input: &Stream) -> Result<ReduceHandle> {
        self.ctx.check_module(module)?;
        self.lookup_desc(input)?;
        let summary = module
            .checked
            .summary(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
        if !summary.is_reduce {
            return Err(BrookError::Usage(format!(
                "kernel `{kernel}` is not a reduce kernel"
            )));
        }
        let op = summary
            .reduce_op
            .ok_or_else(|| BrookError::Usage("reduce kernel without a detected operation".into()))?;
        let slot = self.n_reduces;
        self.n_reduces += 1;
        let uid = self.uid();
        self.ops.push(Op {
            uid,
            kind: OpKind::Reduce {
                module: module.clone(),
                kernel: kernel.to_owned(),
                op,
                input: *input,
                slot,
            },
        });
        Ok(ReduceHandle {
            slot,
            graph_id: self.graph_id,
        })
    }

    /// Pass cost of the current plan: one per output per launch (the §6
    /// splitting), one per reduce.
    fn passes(&self) -> usize {
        self.ops
            .iter()
            .map(|o| match &o.kind {
                OpKind::Launch { outputs, .. } => outputs.len(),
                OpKind::Reduce { .. } => 1,
            })
            .sum()
    }

    /// Optimizes the recorded graph, materializes surviving virtual
    /// streams, runs every planned launch on the context's backend and
    /// returns the report.
    ///
    /// # Errors
    /// Backend failures during materialization or dispatch. Planning
    /// itself never fails a recording the eager path would have run:
    /// unfusable or gate-rejected chains simply execute unfused.
    pub fn execute(mut self) -> Result<GraphReport> {
        let eager_passes = self.passes();
        let (elided, fused) = self.fuse_pass();
        let executed_passes = self.passes();
        let intermediate_bytes_elided = elided.iter().map(|d| d.scalar_len() * 4 * 2).sum();

        // Materialize every virtual stream a surviving launch touches.
        let mut needed: Vec<usize> = Vec::new();
        for op in &self.ops {
            let streams: Vec<Stream> = match &op.kind {
                OpKind::Launch { args, .. } => args.iter().filter_map(|(_, h)| h.stream()).collect(),
                OpKind::Reduce { input, .. } => vec![*input],
            };
            for s in streams {
                if s.context_id == self.graph_id && !needed.contains(&s.index) {
                    needed.push(s.index);
                }
            }
        }
        let mut materialized: HashMap<usize, Stream> = HashMap::new();
        for v in needed {
            let desc = self.virtuals[v].clone();
            let real = self.ctx.stream_with_width(&desc.shape, desc.width)?;
            materialized.insert(v, real);
        }
        let graph_id = self.graph_id;
        let resolve = |s: Stream| -> Stream {
            if s.context_id == graph_id {
                materialized[&s.index]
            } else {
                s
            }
        };

        let mut reduce_values = vec![0.0f32; self.n_reduces];
        for op in &self.ops {
            match &op.kind {
                OpKind::Launch {
                    module,
                    kernel,
                    args,
                    outputs,
                    ..
                } => {
                    let bound = args
                        .iter()
                        .map(|(n, h)| {
                            let h = match h {
                                HandleArg::Elem(s) => HandleArg::Elem(resolve(*s)),
                                HandleArg::Gather(s) => HandleArg::Gather(resolve(*s)),
                                HandleArg::Out(s) => HandleArg::Out(resolve(*s)),
                                HandleArg::Scalar(v) => HandleArg::Scalar(*v),
                            };
                            (n.clone(), h.to_bound())
                        })
                        .collect();
                    verify_launch_ir(&module.ir, kernel)?;
                    let launch = KernelLaunch {
                        checked: &module.checked,
                        ir: &module.ir,
                        lanes: &module.lanes,
                        tiers: &module.tiers,
                        module_id: module.id,
                        kernel,
                        args: bound,
                        outputs: outputs
                            .iter()
                            .map(|(n, s)| (n.clone(), resolve(*s).index))
                            .collect(),
                    };
                    self.ctx.backend.dispatch(&launch)?;
                }
                OpKind::Reduce {
                    module,
                    kernel,
                    op,
                    input,
                    slot,
                } => {
                    verify_launch_ir(&module.ir, kernel)?;
                    reduce_values[*slot] = self.ctx.backend.reduce(
                        &module.checked,
                        &module.ir,
                        kernel,
                        *op,
                        module.simds.kernel(kernel),
                        resolve(*input).index,
                    )?;
                }
            }
        }
        // Graph execution dispatches directly (no per-launch ladder);
        // bring failover shadows back in sync with device state.
        self.ctx.resilience_sync_shadows()?;
        Ok(GraphReport {
            eager_passes,
            executed_passes,
            elided_streams: elided.len(),
            intermediate_bytes_elided,
            fused,
            reduce_values,
            graph_id,
        })
    }

    // -- planner -------------------------------------------------------------

    /// Repeatedly fuses the first admissible producer→consumer pair
    /// until none remains. Returns the elided intermediates' descriptors
    /// and the fused-kernel records.
    fn fuse_pass(&mut self) -> (Vec<StreamDesc>, Vec<FusedKernel>) {
        let mut elided = Vec::new();
        let mut fused = Vec::new();
        // Pairs the gate (or construction) already rejected, by op uid —
        // never retried, so the scan terminates.
        let mut rejected: HashSet<(usize, usize)> = HashSet::new();
        while let Some((i, j, inter)) = self.find_candidate(&rejected) {
            let pair = (self.ops[i].uid, self.ops[j].uid);
            match self.try_fuse(i, j, inter) {
                Some((kind, record)) => {
                    elided.push(self.virtuals[inter.index].clone());
                    fused.push(record);
                    let uid = self.uid();
                    self.ops[j] = Op { uid, kind };
                    self.ops.remove(i);
                }
                None => {
                    rejected.insert(pair);
                }
            }
        }
        (elided, fused)
    }

    /// Finds the first fusable (producer index, consumer index,
    /// intermediate) triple the cheap rules admit and `rejected` does
    /// not veto. The expensive check — the certification gate on the
    /// fused program — happens in `try_fuse`.
    fn find_candidate(&self, rejected: &HashSet<(usize, usize)>) -> Option<(usize, usize, Stream)> {
        for j in 0..self.ops.len() {
            let OpKind::Launch {
                module: c_module,
                kernel: c_kernel,
                args: c_args,
                outputs: c_outputs,
                ..
            } = &self.ops[j].kind
            else {
                continue;
            };
            for (_, h) in c_args {
                let HandleArg::Elem(s) = h else { continue };
                if s.context_id != self.graph_id {
                    continue; // only virtual intermediates are elidable
                }
                // Exactly one writer, before the consumer.
                let writers: Vec<usize> = (0..self.ops.len())
                    .filter(|&k| self.writes(&self.ops[k].kind, *s))
                    .collect();
                let [i] = writers[..] else { continue };
                if i >= j {
                    continue;
                }
                if rejected.contains(&(self.ops[i].uid, self.ops[j].uid)) {
                    continue;
                }
                // Exactly one reader anywhere: this binding.
                if self.read_count(*s) != 1 {
                    continue;
                }
                let OpKind::Launch {
                    module: p_module,
                    kernel: p_kernel,
                    args: p_args,
                    outputs: p_outputs,
                    ..
                } = &self.ops[i].kind
                else {
                    continue;
                };
                if p_outputs.len() != 1 {
                    continue;
                }
                // Both kernels must have lowered IR (always true behind
                // an enforcing gate); helper calls are already inlined
                // there, so they no longer veto fusion.
                let Some(p_ir) = p_module.ir.kernel(p_kernel) else {
                    continue;
                };
                if c_module.ir.kernel(c_kernel).is_none() {
                    continue;
                }
                // Shape/width uniformity across the chain (gathers exempt).
                let inter_desc = &self.virtuals[s.index];
                if !self.elementwise_uniform(p_args, p_outputs, inter_desc)
                    || !self.elementwise_uniform(c_args, c_outputs, inter_desc)
                {
                    continue;
                }
                let p_out_ty = p_ir.params.iter().find(|p| p.kind == ParamKind::OutStream);
                let widths_ok = p_out_ty
                    .is_some_and(|p| p.ty.scalar == ScalarKind::Float && p.ty.width == inter_desc.width);
                if !widths_ok {
                    continue;
                }
                // Fusion moves the producer's reads to the consumer's
                // position; nothing in between may overwrite them.
                let p_reads: Vec<Stream> = p_args
                    .iter()
                    .filter_map(|(_, h)| match h {
                        HandleArg::Elem(s) | HandleArg::Gather(s) => Some(*s),
                        _ => None,
                    })
                    .collect();
                let interference =
                    (i + 1..j).any(|k| p_reads.iter().any(|r| self.writes(&self.ops[k].kind, *r)));
                if interference {
                    continue;
                }
                // The producer's reads must also be disjoint from the
                // consumer's outputs: a read-then-overwrite pipeline
                // (P reads x, C writes x) is legal eagerly, but fused it
                // would become a kernel reading its own output — the
                // exact launch shape `classify_call` forbids.
                if p_reads.iter().any(|r| c_outputs.iter().any(|(_, o)| o == r)) {
                    continue;
                }
                // Cheap gate pre-filter: merged I/O within limits.
                let mut inputs: HashSet<(u64, usize)> = HashSet::new();
                for (_, h) in p_args.iter().chain(c_args) {
                    if let HandleArg::Elem(st) | HandleArg::Gather(st) = h {
                        if st != s {
                            inputs.insert((st.context_id, st.index));
                        }
                    }
                }
                let preds = CertPredicates::new(self.ctx.cert_config());
                if !preds.fusion_io_within_limits(inputs.len() as u32, c_outputs.len() as u32) {
                    continue;
                }
                return Some((i, j, *s));
            }
        }
        None
    }

    fn writes(&self, kind: &OpKind, s: Stream) -> bool {
        match kind {
            OpKind::Launch { outputs, .. } => outputs.iter().any(|(_, o)| *o == s),
            OpKind::Reduce { .. } => false,
        }
    }

    /// How many times `s` is read anywhere in the plan (elementwise,
    /// gather, or as a reduce input).
    fn read_count(&self, s: Stream) -> usize {
        self.ops
            .iter()
            .map(|op| match &op.kind {
                OpKind::Launch { args, .. } => args
                    .iter()
                    .filter(|(_, h)| matches!(h, HandleArg::Elem(x) | HandleArg::Gather(x) if *x == s))
                    .count(),
                OpKind::Reduce { input, .. } => usize::from(*input == s),
            })
            .sum()
    }

    /// True when every elementwise input and every output of a launch
    /// shares `domain`'s shape — the condition under which `indexof` is
    /// interchangeable across the chain.
    fn elementwise_uniform(
        &self,
        args: &[(String, HandleArg)],
        outputs: &[(String, Stream)],
        domain: &StreamDesc,
    ) -> bool {
        let shape_of = |s: &Stream| self.lookup_desc(s).map(|d| d.shape).ok();
        args.iter().all(|(_, h)| match h {
            HandleArg::Elem(s) => shape_of(s).is_some_and(|sh| sh == domain.shape),
            _ => true,
        }) && outputs
            .iter()
            .all(|(_, s)| shape_of(s).is_some_and(|sh| sh == domain.shape))
    }

    /// Builds the fused IR kernel for `ops[i] → ops[j]` over `inter`,
    /// pushes it through the IR verifier + certification re-check (and
    /// the cert-gated pass pipeline), and returns the replacement op.
    /// `None` means "leave the pair unfused" — the gate rejected it.
    fn try_fuse(&mut self, i: usize, j: usize, inter: Stream) -> Option<(OpKind, FusedKernel)> {
        let built = {
            let OpKind::Launch {
                module: p_module,
                kernel: p_kernel,
                args: p_args,
                replaced: p_replaced,
                ..
            } = &self.ops[i].kind
            else {
                return None;
            };
            let OpKind::Launch {
                module: c_module,
                kernel: c_kernel,
                args: c_args,
                outputs: c_outputs,
                replaced: c_replaced,
            } = &self.ops[j].kind
            else {
                return None;
            };
            let p_ir = p_module.ir.kernel(p_kernel)?;
            let c_ir = c_module.ir.kernel(c_kernel)?;
            let replaced: Vec<String> = p_replaced.iter().chain(c_replaced).cloned().collect();
            let name = format!("fused_{}", replaced.join("_"));
            build_fused_ir(&name, p_ir, p_args, c_ir, c_args, inter).map(|(kernel, args, out_names)| {
                (
                    kernel,
                    args,
                    out_names
                        .into_iter()
                        .zip(c_outputs)
                        .map(|(n, (_, s))| (n, *s))
                        .collect::<Vec<_>>(),
                    replaced,
                    name,
                    c_module.checked.clone(),
                )
            })
        };
        let (kernel, args, outputs, replaced, name, checked) = built?;
        // The real gate: verify the fused IR and re-run the IR-level
        // certification check under this context's limits, then the
        // cert-gated pass pipeline — the same spine `compile` applies.
        // Any rejection leaves the chain unfused.
        brook_ir::verify::verify(&kernel).ok()?;
        if !brook_cert::ir_check::check_kernel(&kernel, self.ctx.cert_config()).is_compliant() {
            return None;
        }
        let mut program = IrProgram {
            kernels: vec![kernel],
        };
        let passes = if self.ctx.ir_optimize {
            brook_cert::ir_check::optimize_program(
                &mut program,
                self.ctx.cert_config(),
                &brook_ir::passes::default_passes(),
            )
        } else {
            Vec::new()
        };
        // Fused kernels take the same post-pass analysis spine as
        // `compile`: provable faults unfuse the chain, gather proofs
        // carry into the fused module, planner facts feed lanes/tier.
        let (analysis, facts) =
            brook_cert::absint::analyze_and_annotate_program(&mut program, self.ctx.clamp_elision);
        if analysis.kernels.iter().any(|k| !k.faults.is_empty()) {
            return None;
        }
        let ir = Arc::new(program);
        // Fused kernels are ordinary IrKernels, so they inherit lane
        // vectorization for free: plan them exactly as `compile` does.
        let lanes = if self.ctx.lane_execution {
            brook_ir::lanes::LaneProgram::plan_program_with(&ir, &facts)
        } else {
            brook_ir::lanes::LaneProgram::default()
        };
        let lane_plans = crate::context::lane_plan_records(&lanes);
        // Fused kernels are tier-compiled at fuse time, exactly like
        // `compile` does: the collapsed producer->consumer chain goes
        // straight to the closure-threaded engine when admitted.
        let tiers = if self.ctx.lane_execution && self.ctx.tier_execution {
            brook_ir::tier::TierProgram::compile_program_with(&ir, &lanes, &facts)
        } else {
            brook_ir::tier::TierProgram::default()
        };
        let tier_plans = crate::context::tier_plan_records(&tiers);
        let source = brook_ir::pretty::print_program(&ir);
        let module = BrookModule {
            checked,
            ir: ir.clone(),
            lanes: Arc::new(lanes),
            tiers: Arc::new(tiers),
            // Fused chains are map kernels, never reductions.
            simds: Arc::new(brook_ir::simd::ReduceProgram::default()),
            report: brook_cert::ComplianceReport {
                kernels: Vec::new(),
                passes,
                lane_plans,
                tier_plans,
                simd_reduces: Vec::new(),
                analysis,
                resilience: Default::default(),
            },
            id: crate::context::fresh_module_id(),
            context_id: self.ctx.context_id,
        };
        let record = FusedKernel {
            name: name.clone(),
            replaced: replaced.clone(),
            source,
            ir,
        };
        Some((
            OpKind::Launch {
                module,
                kernel: name,
                args,
                outputs,
                replaced,
            },
            record,
        ))
    }
}

/// How a stage parameter maps into the fused kernel.
#[derive(Clone, Copy)]
enum PAct {
    /// Becomes fused parameter `fused_param_index`.
    Fused(u16),
    /// The chain edge (the consumer's elementwise read of the
    /// intermediate, or the producer's output): becomes the chain
    /// register.
    Chain,
}

/// Constructs the fused IR kernel for producer→consumer over `inter`:
/// canonical parameter names (`in*` elementwise, `g*` gathers, `k*`
/// scalars, `o*` outputs, streams deduplicated by identity), the
/// producer's instruction stream first with its output stores rewritten
/// to assignments of the zero-initialized chain register `r0` (virtual
/// intermediates are zero-filled, so conditional producer writes keep
/// eager semantics), then the consumer's stream reading `r0` where it
/// read the intermediate. `indexof` of the vanished intermediate (or of
/// the producer's output) is redirected to the first fused output —
/// sound because the planner already proved the chain
/// elementwise-uniform.
///
/// Returns `(fused kernel, fused bindings, fused output names)`.
#[allow(clippy::type_complexity)]
fn build_fused_ir(
    name: &str,
    p_ir: &IrKernel,
    p_args: &[(String, HandleArg)],
    c_ir: &IrKernel,
    c_args: &[(String, HandleArg)],
    inter: Stream,
) -> Option<(IrKernel, Vec<(String, HandleArg)>, Vec<String>)> {
    let mut ins: Vec<(IrParam, HandleArg)> = Vec::new();
    let mut outs: Vec<(IrParam, HandleArg)> = Vec::new();
    let mut by_stream: HashMap<(u64, usize), u16> = HashMap::new();
    let (mut n_in, mut n_g, mut n_k, mut n_out) = (0usize, 0usize, 0usize, 0usize);

    let mut map_stage =
        |ir: &IrKernel, args: &[(String, HandleArg)], is_consumer: bool| -> Option<Vec<PAct>> {
            if ir.params.len() != args.len() {
                return None;
            }
            let mut acts = Vec::with_capacity(ir.params.len());
            for (p, (_, h)) in ir.params.iter().zip(args) {
                let act = match (p.kind, h) {
                    (ParamKind::Stream, HandleArg::Elem(st)) if *st == inter => PAct::Chain,
                    (ParamKind::Stream, HandleArg::Elem(st)) => {
                        let idx = *by_stream.entry((st.context_id, st.index)).or_insert_with(|| {
                            let idx = ins.len() as u16;
                            ins.push((
                                IrParam {
                                    name: format!("in{n_in}"),
                                    ty: p.ty,
                                    kind: ParamKind::Stream,
                                },
                                HandleArg::Elem(*st),
                            ));
                            n_in += 1;
                            idx
                        });
                        PAct::Fused(idx)
                    }
                    (ParamKind::Gather { rank }, HandleArg::Gather(st)) => {
                        let idx = *by_stream.entry((st.context_id, st.index)).or_insert_with(|| {
                            let idx = ins.len() as u16;
                            ins.push((
                                IrParam {
                                    name: format!("g{n_g}"),
                                    ty: p.ty,
                                    kind: ParamKind::Gather { rank },
                                },
                                HandleArg::Gather(*st),
                            ));
                            n_g += 1;
                            idx
                        });
                        PAct::Fused(idx)
                    }
                    (ParamKind::Scalar, HandleArg::Scalar(v)) => {
                        let idx = ins.len() as u16;
                        ins.push((
                            IrParam {
                                name: format!("k{n_k}"),
                                ty: p.ty,
                                kind: ParamKind::Scalar,
                            },
                            HandleArg::Scalar(*v),
                        ));
                        n_k += 1;
                        PAct::Fused(idx)
                    }
                    (ParamKind::OutStream, HandleArg::Out(st)) => {
                        if is_consumer {
                            let idx = outs.len() as u16;
                            outs.push((
                                IrParam {
                                    name: format!("o{n_out}"),
                                    ty: p.ty,
                                    kind: ParamKind::OutStream,
                                },
                                HandleArg::Out(*st),
                            ));
                            n_out += 1;
                            PAct::Fused(idx) // index into `outs`; rebased below
                        } else {
                            PAct::Chain
                        }
                    }
                    _ => return None,
                };
                acts.push(act);
            }
            Some(acts)
        };

    // A producer with a kernel-level `return;` cannot concatenate: its
    // Ret would terminate the *fused* element before the consumer's
    // body runs, silently diverging from eager execution. (A consumer
    // Ret is fine — the producer has already run by then.)
    if p_ir.insts.iter().any(|i| matches!(i, Inst::Ret)) {
        return None;
    }
    let p_acts = map_stage(p_ir, p_args, false)?;
    let c_acts = map_stage(c_ir, c_args, true)?;
    let n_ins = ins.len() as u16;
    // Rebase output actions past the input parameters.
    let rebase = |acts: Vec<PAct>, ir: &IrKernel| -> Vec<PAct> {
        acts.into_iter()
            .zip(&ir.params)
            .map(|(a, p)| match (a, p.kind) {
                (PAct::Fused(i), ParamKind::OutStream) => PAct::Fused(n_ins + i),
                other => other.0,
            })
            .collect()
    };
    let p_acts = rebase(p_acts, p_ir);
    let c_acts = rebase(c_acts, c_ir);
    if outs.is_empty() {
        return None;
    }
    let o0_param = n_ins; // fused param index of the first output

    // The chain register mirrors the virtual intermediate: zero-filled
    // before the producer runs.
    let p_out = p_ir.params.iter().find(|p| p.kind == ParamKind::OutStream)?;
    if p_out.ty.scalar != ScalarKind::Float {
        return None;
    }
    let chain: Reg = 0;
    let mut regs: Vec<Type> = Vec::with_capacity(1 + p_ir.regs.len() + c_ir.regs.len());
    regs.push(p_out.ty);
    regs.extend(p_ir.regs.iter().copied());
    regs.extend(c_ir.regs.iter().copied());

    let mut insts: Vec<Inst> = Vec::with_capacity(1 + p_ir.insts.len() + c_ir.insts.len());
    let mut spans = Vec::with_capacity(insts.capacity());
    insts.push(Inst::Const {
        dst: chain,
        v: glsl_es::Value::zero(brook_ir::eval::brook_to_glsl_type(p_out.ty)),
    });
    spans.push(brook_lang::span::Span::synthetic());

    let append_stage = |insts: &mut Vec<Inst>,
                        spans: &mut Vec<brook_lang::span::Span>,
                        ir: &IrKernel,
                        acts: &[PAct],
                        reg_off: u32,
                        inst_off: u32,
                        is_consumer: bool|
     -> Option<()> {
        for (inst, span) in ir.insts.iter().zip(&ir.spans) {
            let mut inst = inst.clone();
            shift_regs(&mut inst, reg_off);
            let mapped = match inst {
                Inst::ReadElem { dst, param } => match acts[param as usize] {
                    PAct::Fused(fp) => Inst::ReadElem { dst, param: fp },
                    PAct::Chain => Inst::Mov { dst, src: chain },
                },
                Inst::ReadScalar { dst, param } => match acts[param as usize] {
                    PAct::Fused(fp) => Inst::ReadScalar { dst, param: fp },
                    PAct::Chain => return None,
                },
                Inst::Gather {
                    dst,
                    param,
                    idx,
                    proven,
                } => match acts[param as usize] {
                    PAct::Fused(fp) => Inst::Gather {
                        dst,
                        param: fp,
                        idx,
                        proven,
                    },
                    PAct::Chain => return None,
                },
                Inst::Indexof { dst, param } => match acts[param as usize] {
                    PAct::Fused(fp) => Inst::Indexof { dst, param: fp },
                    // indexof of the vanished intermediate / producer
                    // output: the chain is elementwise-uniform, so the
                    // fused output's index space is the same.
                    PAct::Chain => Inst::Indexof { dst, param: o0_param },
                },
                Inst::ReadOut { dst, out } => {
                    if is_consumer {
                        Inst::ReadOut { dst, out }
                    } else {
                        Inst::Mov { dst, src: chain }
                    }
                }
                Inst::WriteOut { out, op, src } => {
                    if is_consumer {
                        Inst::WriteOut { out, op, src }
                    } else {
                        Inst::AssignLocal { dst: chain, op, src }
                    }
                }
                Inst::Jump { target } => Inst::Jump {
                    target: target + inst_off,
                },
                Inst::BranchIfFalse { cond, target } => Inst::BranchIfFalse {
                    cond,
                    target: target + inst_off,
                },
                other => other,
            };
            insts.push(mapped);
            spans.push(*span);
        }
        Some(())
    };

    let p_reg_off = 1u32;
    let c_reg_off = 1 + p_ir.regs.len() as u32;
    let p_inst_off = 1u32;
    let c_inst_off = 1 + p_ir.insts.len() as u32;
    append_stage(
        &mut insts, &mut spans, p_ir, &p_acts, p_reg_off, p_inst_off, false,
    )?;
    append_stage(&mut insts, &mut spans, c_ir, &c_acts, c_reg_off, c_inst_off, true)?;

    let mut body: Vec<Node> = vec![Node::Seq { start: 0, end: 1 }];
    body.extend(p_ir.body.iter().map(|n| shift_node(n, p_inst_off, p_reg_off)));
    body.extend(c_ir.body.iter().map(|n| shift_node(n, c_inst_off, c_reg_off)));

    let params: Vec<IrParam> = ins
        .iter()
        .map(|(p, _)| p.clone())
        .chain(outs.iter().map(|(p, _)| p.clone()))
        .collect();
    let bindings: Vec<(String, HandleArg)> = ins
        .iter()
        .chain(outs.iter())
        .map(|(p, h)| (p.name.clone(), *h))
        .collect();
    let out_names: Vec<String> = outs.iter().map(|(p, _)| p.name.clone()).collect();
    let outputs: Vec<u16> = (0..outs.len() as u16).map(|i| n_ins + i).collect();
    let kernel = IrKernel {
        name: name.to_owned(),
        is_reduce: false,
        reduce_op: None,
        params,
        outputs,
        acc_reg: None,
        regs,
        insts,
        spans,
        body,
        span: brook_lang::span::Span::synthetic(),
        uses_indexof: p_ir.uses_indexof || c_ir.uses_indexof,
    };
    Some((kernel, bindings, out_names))
}

/// Shifts every register mention of an instruction by `off`.
fn shift_regs(inst: &mut Inst, off: u32) {
    match inst {
        Inst::Nop | Inst::Jump { .. } | Inst::Ret | Inst::Fail { .. } => {}
        Inst::Const { dst, .. }
        | Inst::ReadElem { dst, .. }
        | Inst::ReadScalar { dst, .. }
        | Inst::ReadOut { dst, .. }
        | Inst::Indexof { dst, .. } => *dst += off,
        Inst::Mov { dst, src }
        | Inst::DeclInit { dst, src, .. }
        | Inst::AssignLocal { dst, src, .. }
        | Inst::Un { dst, src, .. }
        | Inst::CastInt { dst, src }
        | Inst::Swizzle { dst, src, .. }
        | Inst::SwizzleStore { dst, src, .. } => {
            *dst += off;
            *src += off;
        }
        Inst::Bin { dst, lhs, rhs, .. } => {
            *dst += off;
            *lhs += off;
            *rhs += off;
        }
        Inst::Construct { dst, args, .. } | Inst::Builtin { dst, args, .. } => {
            *dst += off;
            for a in args {
                *a += off;
            }
        }
        Inst::Select { dst, cond, a, b } => {
            *dst += off;
            *cond += off;
            *a += off;
            *b += off;
        }
        Inst::Gather { dst, idx, .. } => {
            *dst += off;
            for i in idx {
                *i += off;
            }
        }
        Inst::WriteOut { src, .. } => *src += off,
        Inst::BranchIfFalse { cond, .. } => *cond += off,
    }
}

/// Clones a region node shifting instruction indices and registers.
fn shift_node(n: &Node, inst_off: u32, reg_off: u32) -> Node {
    match n {
        Node::Seq { start, end } => Node::Seq {
            start: start + inst_off,
            end: end + inst_off,
        },
        Node::If {
            cond,
            branch_at,
            then,
            jump_at,
            els,
        } => Node::If {
            cond: cond + reg_off,
            branch_at: branch_at + inst_off,
            then: then.iter().map(|n| shift_node(n, inst_off, reg_off)).collect(),
            jump_at: jump_at.map(|j| j + inst_off),
            els: els.iter().map(|n| shift_node(n, inst_off, reg_off)).collect(),
        },
        Node::Loop(l) => Node::Loop(Box::new(LoopNode {
            kind: l.kind,
            bound: l.bound.clone(),
            span: l.span,
            header: l
                .header
                .iter()
                .map(|n| shift_node(n, inst_off, reg_off))
                .collect(),
            cond: l.cond + reg_off,
            exit_at: l.exit_at + inst_off,
            body: l.body.iter().map(|n| shift_node(n, inst_off, reg_off)).collect(),
            back_at: l.back_at + inst_off,
        })),
    }
}

/// The three-way stream-ownership resolution a recording needs: the
/// context's own streams, this graph's virtual streams, anything else
/// foreign. One implementation serves both record-time classification
/// and plan-time shape queries, so the two can never disagree.
fn lookup_stream_desc(
    ctx: &BrookContext,
    graph_id: u64,
    virtuals: &[StreamDesc],
    s: &Stream,
) -> Result<StreamDesc> {
    if s.context_id == ctx.context_id {
        Ok(ctx.backend.stream_desc(s.index).clone())
    } else if s.context_id == graph_id {
        virtuals
            .get(s.index)
            .cloned()
            .ok_or_else(|| BrookError::Usage("unknown virtual stream".into()))
    } else {
        Err(BrookError::Usage("stream belongs to a different context".into()))
    }
}
