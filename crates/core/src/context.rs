//! `BrookContext` — the user-facing Brook Auto runtime.
//!
//! The context owns compilation and certification and drives execution
//! through the [`BackendExecutor`] trait: it validates and classifies
//! every call into a backend-independent [`KernelLaunch`], then hands it
//! to whichever substrate the context was built on. There is no
//! per-backend dispatch here — adding a backend never touches this file.

use crate::backend::{BackendExecutor, BoundArg, KernelLaunch};
use crate::cpu::CpuBackend;
use crate::cpu_parallel::ParallelCpuBackend;
use crate::error::{BrookError, Result};
use crate::gpu::GpuState;
use crate::resilience::{ResiliencePolicy, ResilienceReport, ResilienceState, Work};
use crate::stream::{Stream, StreamDesc};
use brook_cert::{certify, CertConfig, ComplianceReport};
use brook_inject::{CancelToken, FaultPlan, LaunchResilience, ResilienceSummary};
use brook_ir::IrProgram;
use brook_lang::ast::{KernelDef, Param, ParamKind};
use brook_lang::CheckedProgram;
use gles2_sim::{DeviceProfile, DrawMode, Value};
use perf_model::GpuRun;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_CONTEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_MODULE_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh identifier from the same namespace contexts draw theirs from.
/// Graph recorders use it to tag virtual streams so a handle can never
/// be mistaken for one owned by any live context.
pub(crate) fn fresh_owner_id() -> u64 {
    NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// A fresh module id for synthetic modules (the fusion planner's fused
/// kernels) — same uniqueness contract as compiled modules, so backend
/// program caches can never alias.
pub(crate) fn fresh_module_id() -> u64 {
    NEXT_MODULE_ID.fetch_add(1, Ordering::Relaxed)
}

/// A compiled, certified Brook Auto translation unit.
#[derive(Debug, Clone)]
pub struct BrookModule {
    /// Shared so cloning a module (the graph recorder stores one clone
    /// per recorded launch) never deep-copies the program AST.
    pub(crate) checked: Arc<CheckedProgram>,
    /// The lowered, optimized and re-certified BrookIR — the form every
    /// backend executes (flat interpreter on the CPU backends, GLSL
    /// generation on the device). Kernels that could not lower (possible
    /// only with certification disabled) are absent; backends fall back
    /// to the AST walker / AST shader generator for them.
    pub(crate) ir: Arc<IrProgram>,
    /// Lane-vectorization plans, decided once at compile time by
    /// `brook_ir::lanes::plan` and recorded in the report's
    /// `lane_plans`. CPU backends execute admitted kernels in element
    /// blocks; rejected kernels keep the scalar interpreter. Empty when
    /// the compiling context disabled lane execution.
    pub(crate) lanes: Arc<brook_ir::lanes::LaneProgram>,
    /// Tier-2 closure-chain plans, compiled once at compile time by
    /// `brook_ir::tier::compile` from the lane plans and recorded in
    /// the report's `tier_plans`. CPU backends execute admitted kernels
    /// as pre-compiled closure chains; rejected kernels keep the lane
    /// engine. Empty when the compiling context disabled tier (or lane)
    /// execution. Shared: closure chains are compiled once per module,
    /// never per clone.
    pub(crate) tiers: Arc<brook_ir::tier::TierProgram>,
    /// Vectorized-reduce plans, decided once at compile time by
    /// `brook_ir::simd::ReduceProgram::plan_program_with` and recorded
    /// in the report's `simd_reduces`. CPU backends fold admitted
    /// reduce kernels through the SIMD per-lane-partials path;
    /// rejected kernels fold serially through the scalar interpreter.
    /// Empty when the compiling context disabled lane execution.
    pub(crate) simds: Arc<brook_ir::simd::ReduceProgram>,
    /// The certification data produced at compile time (paper §4).
    pub report: ComplianceReport,
    /// Globally unique module identity (backends key compiled-artifact
    /// caches on it, so two contexts can never alias cache entries).
    pub(crate) id: u64,
    /// The context that compiled (and certified) this module. `run` and
    /// `reduce` reject modules from any other context: certification
    /// limits are per-context, so letting a module compiled under a lax
    /// [`CertConfig`] execute on a stricter context would bypass the
    /// gate.
    pub(crate) context_id: u64,
}

impl BrookModule {
    /// Kernel names defined by the module.
    pub fn kernels(&self) -> Vec<String> {
        self.checked.kernels.iter().map(|k| k.name.clone()).collect()
    }
}

/// A context-neutral compiled translation unit: everything
/// [`BrookContext::compile`] produces *except* the identity stamps. The
/// unit a compiled-module cache shares across tenants — cheap to clone
/// (the heavy pieces are `Arc`-shared) and [`Send`]/[`Sync`], so one
/// compilation can serve many contexts on many threads.
///
/// An artifact is inert until a context adopts it
/// ([`BrookContext::adopt_artifact`]), which re-stamps it with a fresh
/// module id and the adopting context's identity — so the foreign-module
/// rejection of `run`/`reduce` keeps holding on cache hits: the cache
/// hands out *artifacts*, never another tenant's stamped module.
#[derive(Debug, Clone)]
pub struct ModuleArtifact {
    checked: Arc<CheckedProgram>,
    ir: Arc<IrProgram>,
    lanes: Arc<brook_ir::lanes::LaneProgram>,
    tiers: Arc<brook_ir::tier::TierProgram>,
    simds: Arc<brook_ir::simd::ReduceProgram>,
    report: ComplianceReport,
    /// Digest of the [`CertConfig`] the artifact was certified under.
    cert_fingerprint: u64,
    /// The compiling context's pipeline toggles (the last component is
    /// the resolved SIMD level); adoption requires an exact match so a
    /// module compiled with (say) certification off — or for a
    /// different instruction set — can never sneak onto an enforcing
    /// context through a cache.
    toggles: (bool, bool, bool, bool, bool, u8),
}

impl ModuleArtifact {
    /// Kernel names defined by the artifact.
    pub fn kernels(&self) -> Vec<String> {
        self.checked.kernels.iter().map(|k| k.name.clone()).collect()
    }

    /// The certification data package produced at compile time — the
    /// static artifacts (instruction estimates, loop bounds, pass
    /// counts) an admission controller budgets against *before*
    /// adopting the artifact into a context.
    pub fn report(&self) -> &ComplianceReport {
        &self.report
    }

    /// Digest of the [`CertConfig`] the artifact was certified under —
    /// a component of any shared-cache key.
    pub fn cert_fingerprint(&self) -> u64 {
        self.cert_fingerprint
    }
}

/// A positional kernel argument.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'a> {
    /// A stream (input, gather or output, matched by parameter kind).
    Stream(&'a Stream),
    /// Scalar `float`.
    Float(f32),
    /// Scalar `int`.
    Int(i32),
    /// `float2` constant.
    Float2([f32; 2]),
    /// `float3` constant.
    Float3([f32; 3]),
    /// `float4` constant.
    Float4([f32; 4]),
}

/// The Brook Auto runtime context: owns streams, compiles kernels,
/// dispatches them on the selected backend.
pub struct BrookContext {
    pub(crate) backend: Box<dyn BackendExecutor + Send>,
    pub(crate) context_id: u64,
    cert_config: CertConfig,
    /// When false, `compile` accepts non-compliant programs (used for
    /// negative tests and for measuring what certification would reject).
    pub enforce_certification: bool,
    /// When false, `compile` skips the BrookIR optimization pipeline
    /// (used by the optimized-vs-unoptimized differential campaigns and
    /// the interpreter benches; execution still runs the flat IR).
    pub ir_optimize: bool,
    /// When false, `compile` skips lane-vectorization planning, so the
    /// CPU backends execute the scalar IR interpreter for every kernel
    /// (used by the lane differential campaigns and the lane benches as
    /// the scalar baseline).
    pub lane_execution: bool,
    /// When false, `compile` skips Tier-2 closure-chain compilation, so
    /// admitted kernels execute on the lane engine instead (used by the
    /// tier differential campaigns and the tier benches as the lane
    /// baseline). Has no effect when `lane_execution` is false: Tier-2
    /// builds on the lane plan.
    pub tier_execution: bool,
    /// When false, `compile` skips attaching the abstract interpreter's
    /// proven gather-index ranges to the IR, so every backend keeps the
    /// per-dimension clamp on every gather (used by the elision
    /// differential campaigns as the always-clamped baseline). Analysis
    /// itself still runs: provable-fault rejection and refined
    /// admission estimates don't depend on this toggle.
    pub clamp_elision: bool,
    /// Which explicit-SIMD kernels the tier closures and the
    /// vectorized reduce fold dispatch to. [`SimdMode::Auto`] follows
    /// the `BROOK_SIMD` environment override and runtime CPU
    /// detection; forcing a level is the differential-campaign /
    /// non-AVX2-CI control. Every level is bit-exact with the scalar
    /// bodies by construction, so this can only change speed, never
    /// results.
    pub simd_mode: brook_ir::simd::SimdMode,
    /// Fault-injection / recovery state: absent (one pointer-sized
    /// `Option` check per dispatch — the measured hook cost) until a
    /// [`FaultPlan`] or [`ResiliencePolicy`] is installed.
    pub(crate) resilience: Option<Box<ResilienceState>>,
    /// Streams created through this context, in backend-index order
    /// (backends allocate densely and never free) — lets a late
    /// [`set_resilience`](Self::set_resilience) snapshot shadows for
    /// streams that predate the policy.
    streams_created: usize,
}

impl BrookContext {
    /// A context executing kernels on the given backend, enforcing the
    /// given certification limits — the extension point for backends
    /// implemented outside this crate.
    pub fn with_backend(backend: Box<dyn BackendExecutor + Send>, cert_config: CertConfig) -> Self {
        BrookContext {
            backend,
            context_id: NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed),
            cert_config,
            enforce_certification: true,
            ir_optimize: true,
            lane_execution: true,
            tier_execution: true,
            clamp_elision: true,
            simd_mode: brook_ir::simd::SimdMode::Auto,
            resilience: None,
            streams_created: 0,
        }
    }

    /// A context executing kernels through the legacy AST tree walker —
    /// the differential oracle the IR interpreter is validated against.
    /// Not part of [`crate::backend::registered_backends`]; the fuzz
    /// campaigns and benches construct it explicitly.
    pub fn cpu_ast_oracle() -> Self {
        let mut ctx = Self::with_backend(Box::new(CpuBackend::ast_walker()), CertConfig::default());
        ctx.ir_optimize = false;
        ctx
    }

    /// A context executing kernels on the serial interpreted CPU backend
    /// (the reference semantics).
    pub fn cpu() -> Self {
        Self::with_backend(Box::new(CpuBackend::new()), CertConfig::default())
    }

    /// A context executing kernels on the data-parallel CPU backend: the
    /// same element semantics as [`BrookContext::cpu`], with the output
    /// domain split across worker threads. Results are bit-identical to
    /// the serial backend.
    pub fn cpu_parallel() -> Self {
        Self::with_backend(Box::new(ParallelCpuBackend::new()), CertConfig::default())
    }

    /// A context executing kernels on the simulated OpenGL ES 2.0 GPU.
    ///
    /// Storage mode follows the device: profiles without float textures
    /// use the packed RGBA8 path (paper §5.4).
    pub fn gles2(profile: DeviceProfile) -> Self {
        let cert_config = CertConfig {
            max_inputs: profile.texture_units,
            ..CertConfig::default()
        };
        Self::with_backend(Box::new(GpuState::new(profile)), cert_config)
    }

    /// The name of the backend this context executes on.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The certification limits this context enforces at compile time.
    pub fn cert_config(&self) -> &CertConfig {
        &self.cert_config
    }

    /// Compiles and certifies Brook source.
    ///
    /// # Errors
    /// Front-end diagnostics, or [`BrookError::Certification`] carrying
    /// the full compliance report when a rule is violated and enforcement
    /// is on.
    pub fn compile(&mut self, source: &str) -> Result<BrookModule> {
        let artifact = self.compile_artifact(source)?;
        self.adopt_artifact(&artifact)
    }

    /// Compiles and certifies Brook source into a context-neutral
    /// [`ModuleArtifact`] — the full `compile` pipeline minus the
    /// identity stamps. Intended for compiled-module caches: compile
    /// once, [`adopt_artifact`](Self::adopt_artifact) per tenant.
    ///
    /// # Errors
    /// Exactly those of [`compile`](Self::compile).
    pub fn compile_artifact(&mut self, source: &str) -> Result<ModuleArtifact> {
        let checked = brook_lang::parse_and_check(source)?;
        let mut report = certify(&checked, &self.cert_config);
        if self.enforce_certification && !report.is_compliant() {
            return Err(BrookError::Certification(Box::new(report)));
        }
        // Lower to BrookIR — the form every backend executes.
        let (mut ir, lower_errors) = brook_ir::lower::lower_program(&checked);
        if self.enforce_certification {
            // A certified program always lowers (no recursion, bounded
            // call depth); anything else is a toolchain bug surfaced
            // loudly rather than silently falling back.
            if let Some(e) = lower_errors.first() {
                return Err(BrookError::Usage(format!("internal lowering failure: {e}")));
            }
            // Lower → re-gate: the IR-level re-check must agree that the
            // lowered program is still certifiable.
            let (checks, ok) = brook_cert::ir_check::check_program(&ir, &self.cert_config);
            if !ok {
                let first = checks
                    .iter()
                    .flat_map(|c| c.findings.iter())
                    .find(|f| f.severity == brook_lang::diag::Severity::Error)
                    .map(|f| format!("[{}] {} (source {})", f.rule.code(), f.message, f.span))
                    .unwrap_or_else(|| "unspecified".into());
                return Err(BrookError::Usage(format!(
                    "internal: lowering broke certifiability: {first}"
                )));
            }
        }
        // Optimize under the cert rollback gate, recording provenance.
        if self.ir_optimize {
            report.passes = brook_cert::ir_check::optimize_program(
                &mut ir,
                &self.cert_config,
                &brook_ir::passes::default_passes(),
            );
        }
        // Abstract interpretation over the optimized IR: value-range
        // facts, provable-fault findings (BA013/BA014), gather proofs
        // for clamp elision, reachability for the planners, and the
        // refined admission estimate. Runs strictly after the pass
        // pipeline so passes never see (or have to preserve) proofs.
        let (analysis, facts) = brook_cert::absint::analyze_and_annotate_program(&mut ir, self.clamp_elision);
        for ka in &analysis.kernels {
            let Some(kr) = report.kernels.iter_mut().find(|r| r.kernel == ka.kernel) else {
                continue;
            };
            kr.findings.extend(ka.faults.iter().cloned());
            // Refined admission estimate: the reachability-pruned walk
            // over the optimized IR, capped by the AST-level figure
            // (both over-approximate the same worst case; bill the
            // tighter one).
            kr.refined_estimate = match (ka.pruned_estimate, kr.instruction_estimate) {
                (Some(p), Some(a)) => Some(p.min(a)),
                (p, a) => p.or(a),
            };
            debug_assert!(
                kr.refined_estimate <= kr.instruction_estimate || kr.instruction_estimate.is_none(),
                "refined estimate above the AST estimate — analyzer bug"
            );
        }
        report.analysis = analysis;
        if self.enforce_certification && !report.is_compliant() {
            return Err(BrookError::Certification(Box::new(report)));
        }
        // Lane-vectorization planning: consulted once here, recorded in
        // the report, executed by the CPU backends per launch. Rejected
        // kernels keep the scalar interpreter — semantics are identical
        // by construction, so this can only change speed, never results.
        let lanes = if self.lane_execution {
            brook_ir::lanes::LaneProgram::plan_program_with(&ir, &facts)
        } else {
            brook_ir::lanes::LaneProgram::default()
        };
        report.lane_plans = lane_plan_records(&lanes);
        // Tier-2 compilation: lane-admitted kernels become closure
        // chains here, once; the decision (and the compile summary) is
        // part of the certification data package. Same fallback story
        // as lanes — rejection changes speed, never results.
        let simd_level = self.simd_mode.resolve();
        let tiers = if self.lane_execution && self.tier_execution {
            brook_ir::tier::TierProgram::compile_program_simd(&ir, &lanes, &facts, simd_level)
        } else {
            brook_ir::tier::TierProgram::default()
        };
        report.tier_plans = tier_plan_records(&tiers);
        // Vectorized-reduce planning: structurally matched reduce
        // kernels whose combine operand the analyzer proved NaN-free
        // and sign-definite fold through SIMD per-lane partials; every
        // other reduce keeps the serial scalar fold. The decision is
        // recorded per kernel like every other admission.
        let simds = if self.lane_execution && simd_level != brook_ir::simd::SimdLevel::Scalar {
            brook_ir::simd::ReduceProgram::plan_program_with(&ir, &facts, simd_level)
        } else {
            brook_ir::simd::ReduceProgram::default()
        };
        report.simd_reduces = simd_reduce_records(&simds);
        Ok(ModuleArtifact {
            checked: Arc::new(checked),
            ir: Arc::new(ir),
            lanes: Arc::new(lanes),
            tiers: Arc::new(tiers),
            simds: Arc::new(simds),
            report,
            cert_fingerprint: self.cert_config.fingerprint(),
            toggles: (
                self.enforce_certification,
                self.ir_optimize,
                self.lane_execution,
                self.tier_execution,
                self.clamp_elision,
                simd_level as u8,
            ),
        })
    }

    /// Stamps a [`ModuleArtifact`] into a [`BrookModule`] owned by this
    /// context: a fresh globally unique module id (backend program
    /// caches can never alias entries across adoptions) plus this
    /// context's identity (so `run`/`reduce` foreign-module rejection
    /// applies to the adopted module exactly as to a locally compiled
    /// one).
    ///
    /// # Errors
    /// `Usage` when the artifact was compiled under a different
    /// [`CertConfig`] or different pipeline toggles than this context
    /// enforces — adopting it would bypass this context's gate.
    pub fn adopt_artifact(&mut self, artifact: &ModuleArtifact) -> Result<BrookModule> {
        if artifact.cert_fingerprint != self.cert_config.fingerprint() {
            return Err(BrookError::Usage(
                "artifact was certified under a different certification config than this \
                 context enforces"
                    .into(),
            ));
        }
        let toggles = (
            self.enforce_certification,
            self.ir_optimize,
            self.lane_execution,
            self.tier_execution,
            self.clamp_elision,
            self.simd_mode.resolve() as u8,
        );
        if artifact.toggles != toggles {
            return Err(BrookError::Usage(
                "artifact was compiled under different pipeline toggles (certification/\
                 optimization/lane/tier/elision/simd) than this context uses"
                    .into(),
            ));
        }
        Ok(BrookModule {
            checked: Arc::clone(&artifact.checked),
            ir: Arc::clone(&artifact.ir),
            lanes: Arc::clone(&artifact.lanes),
            tiers: Arc::clone(&artifact.tiers),
            simds: Arc::clone(&artifact.simds),
            report: artifact.report.clone(),
            id: fresh_module_id(),
            context_id: self.context_id,
        })
    }

    /// Renders the module's BrookIR in its canonical textual form — the
    /// debug surface golden IR snapshots pin.
    ///
    /// # Errors
    /// Foreign modules.
    pub fn emit_ir(&self, module: &BrookModule) -> Result<String> {
        self.check_module(module)?;
        Ok(brook_ir::pretty::print_program(&module.ir))
    }

    /// Builds a module around hand-built IR, bypassing lowering — for
    /// negative tests that must prove every backend path rejects
    /// malformed IR. The `source` still goes through the front-end so
    /// the module carries a valid checked program.
    #[doc(hidden)]
    pub fn module_with_raw_ir(&mut self, source: &str, ir: IrProgram) -> Result<BrookModule> {
        let checked = brook_lang::parse_and_check(source)?;
        let report = certify(&checked, &self.cert_config);
        Ok(BrookModule {
            checked: Arc::new(checked),
            ir: Arc::new(ir),
            // Hand-built IR is never lane-planned: it executes through
            // the scalar interpreter behind the launch-boundary verifier.
            lanes: Arc::new(brook_ir::lanes::LaneProgram::default()),
            tiers: Arc::new(brook_ir::tier::TierProgram::default()),
            simds: Arc::new(brook_ir::simd::ReduceProgram::default()),
            report,
            id: fresh_module_id(),
            context_id: self.context_id,
        })
    }

    /// Opens a deferred recording scope: kernel launches recorded through
    /// the returned [`crate::graph::BrookGraph`] are captured as a
    /// dataflow graph, optimized (producer→consumer chains fused into
    /// single passes, intermediates elided) and executed on this
    /// context's backend by `execute()`.
    pub fn graph(&mut self) -> crate::graph::BrookGraph<'_> {
        crate::graph::BrookGraph::new(self)
    }

    /// Creates a statically-sized scalar `float` stream.
    ///
    /// # Errors
    /// Shape/device violations (dimension count, texture limits, VRAM
    /// budget).
    pub fn stream(&mut self, shape: &[usize]) -> Result<Stream> {
        self.stream_with_width(shape, 1)
    }

    /// Creates a stream of `floatN` elements (`width` in 1..=4).
    ///
    /// # Errors
    /// As [`BrookContext::stream`]; additionally, packed-storage devices
    /// reject `width > 1`.
    pub fn stream_with_width(&mut self, shape: &[usize], width: u8) -> Result<Stream> {
        crate::stream::validate_stream_params(shape, width).map_err(BrookError::Usage)?;
        let desc = StreamDesc {
            shape: shape.to_vec(),
            width,
        };
        let index = self.backend.create_stream(desc.clone())?;
        self.streams_created += 1;
        if let Some(state) = self.resilience.as_mut() {
            state.note_stream(index, desc);
        }
        Ok(Stream {
            index,
            context_id: self.context_id,
        })
    }

    fn check_stream(&self, s: &Stream) -> Result<()> {
        if s.context_id != self.context_id {
            return Err(BrookError::Usage("stream belongs to a different context".into()));
        }
        Ok(())
    }

    /// A module is only valid on the context that compiled it: the
    /// certification gate ran with *this* context's limits, and backends
    /// key compiled-artifact caches on module identity.
    pub(crate) fn check_module(&self, module: &BrookModule) -> Result<()> {
        if module.context_id != self.context_id {
            return Err(BrookError::Usage(
                "module was compiled by a different context; certification limits are \
                 per-context, so modules must be recompiled on the context that runs them"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Stream element count.
    ///
    /// # Errors
    /// Foreign streams — a handle from another context indexes a
    /// different backend's stream table, so answering for it would
    /// return an unrelated stream's length (or panic out of bounds).
    pub fn stream_len(&self, s: &Stream) -> Result<usize> {
        self.check_stream(s)?;
        Ok(self.backend.stream_desc(s.index).len())
    }

    /// Copies values into a stream (`streamRead` in Brook terms).
    ///
    /// # Errors
    /// Size mismatches and foreign streams.
    pub fn write(&mut self, s: &Stream, values: &[f32]) -> Result<()> {
        self.check_stream(s)?;
        self.backend.write_stream(s.index, values)?;
        if let Some(state) = self.resilience.as_mut() {
            state.note_write(s.index, values);
        }
        Ok(())
    }

    /// Copies a stream back to the host (`streamWrite` in Brook terms).
    ///
    /// # Errors
    /// Foreign streams; backend transfer failures.
    pub fn read(&mut self, s: &Stream) -> Result<Vec<f32>> {
        self.check_stream(s)?;
        self.backend.read_stream(s.index)
    }

    /// Runs a kernel with positional arguments (one per parameter).
    /// Multi-output kernels execute one GPU pass per output — the
    /// splitting of paper §6.
    ///
    /// # Errors
    /// Argument/parameter mismatches, certification-mode violations and
    /// backend failures.
    pub fn run(&mut self, module: &BrookModule, kernel: &str, args: &[Arg<'_>]) -> Result<()> {
        self.check_module(module)?;
        let kdef = module
            .checked
            .program
            .kernel(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?
            .clone();
        let (handle_args, outputs) = classify_call(&kdef, kernel, args, &mut |s| {
            self.check_stream(s)?;
            Ok(self.backend.stream_desc(s.index).clone())
        })?;
        let bound_args = handle_args
            .iter()
            .map(|(n, h)| (n.clone(), h.to_bound()))
            .collect();
        // Every backend path executes through the IR: verify it at the
        // launch boundary so malformed IR (hand-built, corrupted, or a
        // pass-pipeline escape) is rejected uniformly on all substrates.
        verify_launch_ir(&module.ir, kernel)?;
        let launch = KernelLaunch {
            checked: &module.checked,
            ir: &module.ir,
            lanes: &module.lanes,
            tiers: &module.tiers,
            module_id: module.id,
            kernel,
            args: bound_args,
            outputs: outputs.iter().map(|(n, s)| (n.clone(), s.index)).collect(),
        };
        // The fault-injection / recovery hook: one `Option` check when
        // disarmed; the full ladder (deadlines, retries, failover,
        // redundant execution) when armed.
        match self.resilience.as_mut() {
            Some(state) => {
                crate::resilience::execute_resilient(&mut self.backend, state, kernel, Work::Launch(&launch))
                    .map(|_| ())
            }
            None => self.backend.dispatch(&launch),
        }
    }

    /// Applies a reduce kernel to a stream, producing a scalar.
    ///
    /// On the GPU this is the multi-pass ping-pong ladder of paper §5.5;
    /// on the CPU it folds the kernel body serially.
    ///
    /// # Errors
    /// Unknown/non-reduce kernels and backend failures.
    pub fn reduce(&mut self, module: &BrookModule, kernel: &str, input: &Stream) -> Result<f32> {
        self.check_module(module)?;
        self.check_stream(input)?;
        let summary = module
            .checked
            .summary(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
        if !summary.is_reduce {
            return Err(BrookError::Usage(format!(
                "kernel `{kernel}` is not a reduce kernel"
            )));
        }
        let op = summary
            .reduce_op
            .ok_or_else(|| BrookError::Usage("reduce kernel without a detected operation".into()))?;
        // The host ladder folds `width` lanes per element while the GL
        // ladder reduces one texel channel per step; a width mismatch
        // between the kernel's input parameter and the bound stream
        // would make the backends fold different lane counts — reject
        // it as the type error it is.
        if let Some(p) = module
            .checked
            .program
            .kernel(kernel)
            .and_then(|k| k.params.iter().find(|p| p.kind == ParamKind::Stream))
        {
            let desc = self.backend.stream_desc(input.index).clone();
            if desc.width != p.ty.width {
                return Err(BrookError::Usage(format!(
                    "reduce parameter `{}` has element type {} but the bound stream \
                     holds float{} elements",
                    p.name,
                    p.ty,
                    if desc.width == 1 {
                        String::new()
                    } else {
                        desc.width.to_string()
                    }
                )));
            }
        }
        verify_launch_ir(&module.ir, kernel)?;
        match self.resilience.as_mut() {
            Some(state) => crate::resilience::execute_resilient(
                &mut self.backend,
                state,
                kernel,
                Work::Reduce {
                    checked: &module.checked,
                    ir: &module.ir,
                    kernel,
                    op,
                    simd: module.simds.kernel(kernel),
                    input: input.index,
                },
            )
            .map(|v| v.expect("reduce work returns a scalar")),
            None => self.backend.reduce(
                &module.checked,
                &module.ir,
                kernel,
                op,
                module.simds.kernel(kernel),
                input.index,
            ),
        }
    }

    /// Switches device dispatch between full execution and sampled cost
    /// estimation (no effect on backends without a device cost model).
    pub fn set_dispatch(&mut self, mode: DrawMode) {
        self.backend.set_dispatch_mode(mode);
    }

    /// Installs a device memory budget in bytes (BA002's runtime
    /// enforcement); `None` removes it.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.backend.set_memory_budget(bytes);
    }

    /// Device execution counters for the performance model (zeros on
    /// backends without a cost model).
    pub fn gpu_counters(&self) -> GpuRun {
        self.backend.counters()
    }

    /// Resets device counters (e.g. to exclude warm-up and setup from a
    /// measurement window).
    pub fn reset_counters(&mut self) {
        self.backend.reset_counters();
    }

    /// Bytes of device memory currently allocated (0 on host backends).
    pub fn gpu_memory_used(&self) -> usize {
        self.backend.memory_used()
    }

    /// High-water mark of device memory over the context's lifetime (0
    /// on host backends). A correct static plan satisfies
    /// `plan.worst_case_bytes() >= ctx.gpu_memory_peak()` for the
    /// workload it models — the differential the BA002 artifact is
    /// audited against.
    pub fn gpu_memory_peak(&self) -> usize {
        self.backend.memory_peak()
    }

    // -- fault injection & recovery ---------------------------------------

    fn resilience_state(&mut self) -> &mut ResilienceState {
        self.resilience
            .get_or_insert_with(|| Box::new(ResilienceState::new()))
    }

    /// Arms deterministic fault injection: the plan's faults fire at
    /// their scheduled launch indices (runs and reduces share one
    /// logical launch counter; retries keep their launch's index).
    /// Without a [`ResiliencePolicy`], injected faults surface raw —
    /// errors return, panics unwind, hangs block until the installed
    /// [`CancelToken`] fires — which is exactly what the serve layer's
    /// shields are tested against. Install a policy to make the context
    /// recover instead.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.resilience_state().install_plan(plan);
    }

    /// Installs the recovery policy: deadlines, bounded retry with
    /// jittered backoff, panic containment, redundant-execution
    /// corruption detection and verified CPU failover. When the policy
    /// enables failover, host shadow copies of every stream are
    /// maintained from here on (streams created earlier are snapshotted
    /// now — which requires the device to still be readable).
    ///
    /// # Errors
    /// Shadow snapshotting of pre-existing streams can fail on a lost
    /// device.
    pub fn set_resilience(&mut self, policy: ResiliencePolicy) -> Result<()> {
        let count = self.streams_created;
        let state = self
            .resilience
            .get_or_insert_with(|| Box::new(ResilienceState::new()));
        state.policy = Some(policy);
        state.snapshot_missing(self.backend.as_mut(), count)
    }

    /// Installs the cancel token a watchdog uses to unwedge a hung or
    /// slow dispatch: cancelling it cuts every injected sleep short and
    /// fails the current attempt with [`BrookError::Timeout`]. The
    /// serve layer installs a fresh token per request.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.resilience_state().cancel = token;
    }

    /// Drains the per-launch resilience records accumulated since the
    /// last drain (the cumulative summary is unaffected). Empty when no
    /// fault plan or policy was ever installed.
    pub fn take_resilience_records(&mut self) -> Vec<LaunchResilience> {
        self.resilience
            .as_mut()
            .map(|s| s.take_records())
            .unwrap_or_default()
    }

    /// The cumulative resilience summary over this context's lifetime.
    pub fn resilience_summary(&self) -> ResilienceSummary {
        self.resilience.as_ref().map(|s| s.summary()).unwrap_or_default()
    }

    /// The full resilience evidence: undrained per-launch records plus
    /// the cumulative summary.
    pub fn resilience_report(&self) -> ResilienceReport {
        self.resilience.as_ref().map(|s| s.report()).unwrap_or_default()
    }

    /// The module's compliance report with this context's runtime
    /// resilience evidence folded in — the certification data package
    /// covering fault *response* as well as fault-free behavior.
    pub fn compliance_with_resilience(&self, module: &BrookModule) -> ComplianceReport {
        let mut report = module.report.clone();
        report.resilience = self.resilience_summary();
        report
    }

    /// Re-reads every failover shadow from the backend — the catch-up
    /// hook for execution paths that dispatch directly (the graph
    /// executor). No-op unless a failover-enabled policy is installed.
    pub(crate) fn resilience_sync_shadows(&mut self) -> Result<()> {
        match self.resilience.as_mut() {
            Some(state) => state.sync_shadows(self.backend.as_mut()),
            None => Ok(()),
        }
    }
}

/// Renders lane-plan decisions into the report records the compliance
/// data package carries. Shared by `compile` and the graph executor's
/// fused-module path.
pub(crate) fn lane_plan_records(lanes: &brook_ir::lanes::LaneProgram) -> Vec<brook_cert::LanePlan> {
    lanes
        .kernels
        .iter()
        .map(|(name, plan)| brook_cert::LanePlan {
            kernel: name.clone(),
            vectorized: plan.is_ok(),
            detail: match plan {
                Ok(_) => "lane-vectorized".into(),
                Err(reason) => reason.clone(),
            },
        })
        .collect()
}

/// Renders Tier-2 decisions into the report records the compliance
/// data package carries. Shared by `compile` and the graph executor's
/// fused-module path.
pub(crate) fn tier_plan_records(tiers: &brook_ir::tier::TierProgram) -> Vec<brook_cert::TierPlan> {
    tiers
        .kernels
        .iter()
        .map(|(name, plan)| brook_cert::TierPlan {
            kernel: name.clone(),
            compiled: plan.is_ok(),
            detail: match plan {
                Ok(t) => t.detail(),
                Err(reason) => reason.clone(),
            },
        })
        .collect()
}

/// Renders vectorized-reduce admission decisions into the report
/// records the compliance data package carries.
pub(crate) fn simd_reduce_records(simds: &brook_ir::simd::ReduceProgram) -> Vec<brook_cert::SimdReduce> {
    simds
        .kernels
        .iter()
        .map(|(name, plan)| brook_cert::SimdReduce {
            kernel: name.clone(),
            admitted: plan.is_ok(),
            detail: match plan {
                Ok(rk) => rk.detail.clone(),
                Err(reason) => reason.clone(),
            },
        })
        .collect()
}

/// Verifies the IR of a kernel about to launch; kernels absent from the
/// IR (AST fallback) pass through. Shared by the eager path and the
/// graph executor so no backend can receive malformed IR.
pub(crate) fn verify_launch_ir(ir: &IrProgram, kernel: &str) -> Result<()> {
    if let Some(k) = ir.kernel(kernel) {
        brook_ir::verify::verify(k).map_err(|e| BrookError::Usage(e.to_string()))?;
    }
    Ok(())
}

/// A classified kernel argument still carrying the *handle* (not a
/// backend index): the shared representation between the eager path
/// ([`BrookContext::run`], which resolves handles immediately) and the
/// deferred graph recorder (which resolves them at execute time, after
/// virtual streams have been materialized or fused away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum HandleArg {
    /// Elementwise input stream.
    Elem(Stream),
    /// Random-access gather stream.
    Gather(Stream),
    /// Scalar uniform, already converted to its parameter type.
    Scalar(Value),
    /// Output stream.
    Out(Stream),
}

impl HandleArg {
    /// The backend-index form, valid once every handle is real.
    pub(crate) fn to_bound(self) -> BoundArg {
        match self {
            HandleArg::Elem(s) => BoundArg::Elem(s.index),
            HandleArg::Gather(s) => BoundArg::Gather(s.index),
            HandleArg::Scalar(v) => BoundArg::Scalar(v),
            HandleArg::Out(s) => BoundArg::Out(s.index),
        }
    }

    /// The stream this binding refers to, if any.
    pub(crate) fn stream(&self) -> Option<Stream> {
        match self {
            HandleArg::Elem(s) | HandleArg::Gather(s) | HandleArg::Out(s) => Some(*s),
            HandleArg::Scalar(_) => None,
        }
    }
}

/// Converts one scalar argument to its parameter's value type.
///
/// Float arguments for `int` parameters must be integral and within
/// `i32` range: `Arg::Float(2.9)` used to truncate silently to `2`,
/// which for loop bounds and gather strides is a wrong answer, not a
/// convenience. (The comparison goes through `f64`, where every `f32` is
/// exact, so `2^31` — unrepresentable in `f32`, which would otherwise
/// round `i32::MAX` on top of it — is rejected rather than saturated.)
pub(crate) fn convert_scalar(p: &Param, arg: &Arg<'_>) -> Result<Value> {
    let v = match (p.ty.width, arg) {
        (_, Arg::Stream(_)) => {
            return Err(BrookError::Usage(format!(
                "parameter `{}` is a scalar but a stream was passed",
                p.name
            )))
        }
        (1, Arg::Float(f)) => {
            if p.ty.scalar == brook_lang::ast::ScalarKind::Int {
                let fd = f64::from(*f);
                if fd.fract() != 0.0 || fd < f64::from(i32::MIN) || fd > f64::from(i32::MAX) {
                    return Err(BrookError::Usage(format!(
                        "parameter `{}` is an int scalar but {f:?} is not an integral value \
                         in i32 range; pass Arg::Int or an exact integral float",
                        p.name
                    )));
                }
                Value::Int(fd as i32)
            } else {
                Value::Float(*f)
            }
        }
        (1, Arg::Int(i)) => {
            if p.ty.scalar == brook_lang::ast::ScalarKind::Int {
                Value::Int(*i)
            } else {
                Value::Float(*i as f32)
            }
        }
        (2, Arg::Float2(v)) => Value::Vec2(*v),
        (3, Arg::Float3(v)) => Value::Vec3(*v),
        (4, Arg::Float4(v)) => Value::Vec4(*v),
        _ => {
            return Err(BrookError::Usage(format!(
                "argument for `{}` does not match its type {}",
                p.name, p.ty
            )))
        }
    };
    Ok(v)
}

/// Classifies positional arguments against a kernel's parameters into
/// handle-level bindings plus the output list — every launch-validation
/// rule the backends rely on, shared verbatim between the eager path and
/// the graph recorder so deferred execution can never accept a launch
/// the eager path would reject.
///
/// `lookup` resolves a stream handle to its descriptor, rejecting
/// foreign handles; it is the only part that differs between callers
/// (the context accepts its own streams, a graph additionally accepts
/// its virtual ones).
#[allow(clippy::type_complexity)]
pub(crate) fn classify_call(
    kdef: &KernelDef,
    kernel: &str,
    args: &[Arg<'_>],
    lookup: &mut dyn FnMut(&Stream) -> Result<StreamDesc>,
) -> Result<(Vec<(String, HandleArg)>, Vec<(String, Stream)>)> {
    if kdef.is_reduce {
        return Err(BrookError::Usage(format!(
            "`{kernel}` is a reduce kernel; call `reduce` instead"
        )));
    }
    if args.len() != kdef.params.len() {
        return Err(BrookError::Usage(format!(
            "kernel `{kernel}` has {} parameters, {} arguments given",
            kdef.params.len(),
            args.len()
        )));
    }
    // A stream's element width must match the parameter's declared
    // width: the CPU engines slice buffers by the *declared* width (a
    // narrower stream panics out of bounds on the last element) and the
    // GL path silently truncates channels — both wrong answers for what
    // is a caller-side type error.
    let check_width = |p: &Param, desc: &StreamDesc| -> Result<()> {
        if desc.width != p.ty.width {
            return Err(BrookError::Usage(format!(
                "parameter `{}` has element type {} but the bound stream holds float{} \
                 elements",
                p.name,
                p.ty,
                if desc.width == 1 {
                    String::new()
                } else {
                    desc.width.to_string()
                }
            )));
        }
        Ok(())
    };
    let mut handle_args: Vec<(String, HandleArg)> = Vec::new();
    let mut outputs: Vec<(String, Stream)> = Vec::new();
    // All outputs execute over one domain (the first output's shape):
    // the CPU engines index every output buffer with it, so a smaller
    // second output would be written out of bounds, and the GL path
    // would render each output over its own viewport — diverging
    // domains. Enforced uniformly instead.
    let mut domain_shape: Option<Vec<usize>> = None;
    for (p, a) in kdef.params.iter().zip(args) {
        match (p.kind, a) {
            (ParamKind::Stream, Arg::Stream(s)) => {
                let desc = lookup(s)?;
                check_width(p, &desc)?;
                handle_args.push((p.name.clone(), HandleArg::Elem(**s)));
            }
            (ParamKind::Gather { rank }, Arg::Stream(s)) => {
                // A rank-R gather must be bound to a rank-R stream: the
                // backends translate indices through the stream's
                // layout, and the CPU fallback for mismatched ranks
                // (first-index clamp) is not expressible in the GL index
                // translation — enforced here so every backend computes
                // the same element.
                let desc = lookup(s)?;
                let srank = desc.shape.len();
                if srank != rank as usize {
                    return Err(BrookError::Usage(format!(
                        "gather `{}` has rank {rank} but the bound stream has {srank} \
                         dimension(s)",
                        p.name
                    )));
                }
                check_width(p, &desc)?;
                handle_args.push((p.name.clone(), HandleArg::Gather(**s)));
            }
            (ParamKind::OutStream, Arg::Stream(s)) => {
                let desc = lookup(s)?;
                check_width(p, &desc)?;
                match &domain_shape {
                    None => domain_shape = Some(desc.shape.clone()),
                    Some(d) if *d != desc.shape => {
                        return Err(BrookError::Usage(format!(
                            "output `{}` has shape {:?} but the kernel's output domain \
                             (the first output's shape) is {d:?}: all outputs of one \
                             launch share a single domain",
                            p.name, desc.shape
                        )))
                    }
                    Some(_) => {}
                }
                handle_args.push((p.name.clone(), HandleArg::Out(**s)));
                outputs.push((p.name.clone(), **s));
            }
            (ParamKind::Scalar, arg) => {
                handle_args.push((p.name.clone(), HandleArg::Scalar(convert_scalar(p, arg)?)));
            }
            (_, _) => {
                return Err(BrookError::Usage(format!(
                    "parameter `{}` needs a stream argument",
                    p.name
                )))
            }
        }
    }
    if outputs.is_empty() {
        return Err(BrookError::Usage(format!(
            "kernel `{kernel}` has no output streams"
        )));
    }
    // Brook kernels never read their own output (ping-pong streams
    // instead), and every output needs its own stream — enforced
    // uniformly so every backend may assume it.
    for (name, arg) in &handle_args {
        if let HandleArg::Elem(s) | HandleArg::Gather(s) = arg {
            if let Some((out_name, _)) = outputs.iter().find(|(_, o)| o == s) {
                return Err(BrookError::Usage(format!(
                    "stream bound to `{name}` is also the output `{out_name}`: Brook kernels \
                     cannot read their own output (use ping-pong streams)"
                )));
            }
        }
    }
    for (pos, (name, s)) in outputs.iter().enumerate() {
        if let Some((dup_name, _)) = outputs[..pos].iter().find(|(_, o)| o == s) {
            return Err(BrookError::Usage(format!(
                "outputs `{dup_name}` and `{name}` are bound to the same stream: each output \
                 parameter needs its own stream"
            )));
        }
    }
    Ok((handle_args, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: &str = "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }";

    /// One context per registered backend — every cross-backend test in
    /// this module runs the full matrix.
    fn all_contexts() -> Vec<BrookContext> {
        crate::backend::registered_backends()
            .iter()
            .map(|b| (b.make)())
            .collect()
    }

    #[test]
    fn add_kernel_on_both_backends() {
        for mut ctx in all_contexts() {
            let module = ctx.compile(ADD).unwrap();
            let a = ctx.stream(&[2, 3]).unwrap();
            let b = ctx.stream(&[2, 3]).unwrap();
            let c = ctx.stream(&[2, 3]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
            ctx.write(&b, &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
            ctx.run(
                &module,
                "add",
                &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)],
            )
            .unwrap();
            assert_eq!(ctx.read(&c).unwrap(), vec![11.0, 22.0, 33.0, 44.0, 55.0, 66.0]);
        }
    }

    #[test]
    fn scalar_uniform_argument() {
        for mut ctx in all_contexts() {
            let module = ctx
                .compile("kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) { r = alpha * x + y; }")
                .unwrap();
            let x = ctx.stream(&[4]).unwrap();
            let y = ctx.stream(&[4]).unwrap();
            let r = ctx.stream(&[4]).unwrap();
            ctx.write(&x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            ctx.write(&y, &[0.5, 0.5, 0.5, 0.5]).unwrap();
            ctx.run(
                &module,
                "saxpy",
                &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)],
            )
            .unwrap();
            assert_eq!(ctx.read(&r).unwrap(), vec![2.5, 4.5, 6.5, 8.5]);
        }
    }

    /// GLES2 program-cache hygiene: a failed GLSL compile must leave no
    /// stale or partial cache entry, so a corrected module under the
    /// *same module id* (hence the same cache key) compiles fresh and
    /// runs — on both storage variants.
    #[test]
    fn failed_compile_leaves_no_stale_program_cache_entry() {
        // A recursive helper passes the front-end with certification
        // disabled but cannot lower to IR, so the device falls back to
        // the AST shader generator, which fails to resolve the call —
        // a real compile failure at dispatch time.
        let broken = "float twice(float x) { return twice(x); }
            kernel void k(float a<>, out float o<>) { o = twice(a); }";
        let corrected = "float twice(float x) { return x * 2.0; }
            kernel void k(float a<>, out float o<>) { o = twice(a); }";
        for device in [
            gles2_sim::DeviceProfile::videocore_iv(),  // packed storage
            gles2_sim::DeviceProfile::radeon_hd3400(), // native storage
        ] {
            let mut ctx = BrookContext::gles2(device);
            ctx.enforce_certification = false;
            let bad = ctx.compile(broken).unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let o = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            let err = ctx
                .run(&bad, "k", &[Arg::Stream(&a), Arg::Stream(&o)])
                .unwrap_err();
            assert!(
                matches!(err, BrookError::Gl(_) | BrookError::Codegen(_)),
                "expected a compile failure, got: {err}"
            );
            // Same module id → same program-cache key as the failed
            // attempt. A stale entry would either re-fail or run the
            // broken shader; a clean cache compiles the fix.
            let mut good = ctx.compile(corrected).unwrap();
            good.id = bad.id;
            ctx.run(&good, "k", &[Arg::Stream(&a), Arg::Stream(&o)])
                .unwrap_or_else(|e| panic!("{}: corrected module must run: {e}", ctx.backend_name()));
            assert_eq!(ctx.read(&o).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
        }
    }

    #[test]
    fn certification_is_enforced_at_compile() {
        let mut ctx = BrookContext::cpu();
        let err = ctx
            .compile("kernel void f(float a<>, out float o<>) { while (a > 0.0) { } o = a; }")
            .unwrap_err();
        assert!(matches!(err, BrookError::Certification(_)));
    }

    #[test]
    fn reduce_on_both_backends() {
        for mut ctx in all_contexts() {
            let module = ctx
                .compile("reduce void sum(float a<>, reduce float r<>) { r += a; }")
                .unwrap();
            let a = ctx.stream(&[100]).unwrap();
            let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
            ctx.write(&a, &data).unwrap();
            let total = ctx.reduce(&module, "sum", &a).unwrap();
            assert_eq!(total, 5050.0);
        }
    }

    #[test]
    fn reduce_max_on_2d_stream() {
        for mut ctx in all_contexts() {
            let module = ctx
                .compile("reduce void m(float a<>, reduce float r<>) { r = max(r, a); }")
                .unwrap();
            let a = ctx.stream(&[8, 8]).unwrap();
            let mut data: Vec<f32> = (0..64).map(|i| (i as f32 * 37.0) % 53.0).collect();
            data[37] = 1000.0;
            ctx.write(&a, &data).unwrap();
            assert_eq!(ctx.reduce(&module, "m", &a).unwrap(), 1000.0);
        }
    }

    #[test]
    fn reduce_with_partial_tail_row() {
        // 2049 elements on a 2048-wide device: linear layout wraps to a
        // second row with a 1-element tail; masking must keep the sum
        // exact.
        for mut ctx in all_contexts() {
            let module = ctx
                .compile("reduce void sum(float a<>, reduce float r<>) { r += a; }")
                .unwrap();
            let n = 2049;
            let a = ctx.stream(&[n]).unwrap();
            let data: Vec<f32> = vec![1.0; n];
            ctx.write(&a, &data).unwrap();
            assert_eq!(ctx.reduce(&module, "sum", &a).unwrap(), n as f32);
        }
    }

    #[test]
    fn gather_kernel_matches_between_backends() {
        let src = "kernel void perm(float v[], float idx<>, out float o<>) { o = v[int(idx)]; }";
        let table: Vec<f32> = (0..16).map(|i| (i * i) as f32).collect();
        let idx: Vec<f32> = vec![3.0, 0.0, 15.0, 7.0];
        let mut results = Vec::new();
        for mut ctx in all_contexts() {
            let module = ctx.compile(src).unwrap();
            let v = ctx.stream(&[16]).unwrap();
            let ix = ctx.stream(&[4]).unwrap();
            let o = ctx.stream(&[4]).unwrap();
            ctx.write(&v, &table).unwrap();
            ctx.write(&ix, &idx).unwrap();
            ctx.run(
                &module,
                "perm",
                &[Arg::Stream(&v), Arg::Stream(&ix), Arg::Stream(&o)],
            )
            .unwrap();
            results.push(ctx.read(&o).unwrap());
        }
        assert_eq!(results[0], vec![9.0, 0.0, 225.0, 49.0]);
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    #[test]
    fn indexof_matches_between_backends() {
        let src =
            "kernel void idx(float a<>, out float o<>) { float2 p = indexof(o); o = p.y * 100.0 + p.x; }";
        let mut results = Vec::new();
        for mut ctx in all_contexts() {
            let module = ctx.compile(src).unwrap();
            let a = ctx.stream(&[3, 4]).unwrap();
            let o = ctx.stream(&[3, 4]).unwrap();
            ctx.write(&a, &[0.0; 12]).unwrap();
            ctx.run(&module, "idx", &[Arg::Stream(&a), Arg::Stream(&o)])
                .unwrap();
            results.push(ctx.read(&o).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
        assert_eq!(results[0][0], 0.0);
        assert_eq!(results[0][5], 101.0); // row 1, col 1
    }

    #[test]
    fn multi_output_kernel_splits_passes() {
        for mut ctx in all_contexts() {
            let module = ctx
                .compile(
                    "kernel void two(float a<>, out float x<>, out float y<>) { x = a * 2.0; y = a + 1.0; }",
                )
                .unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let x = ctx.stream(&[4]).unwrap();
            let y = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            ctx.run(
                &module,
                "two",
                &[Arg::Stream(&a), Arg::Stream(&x), Arg::Stream(&y)],
            )
            .unwrap();
            assert_eq!(ctx.read(&x).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
            assert_eq!(ctx.read(&y).unwrap(), vec![2.0, 3.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn duplicate_output_stream_rejected_on_every_backend() {
        // One stream bound to two `out` parameters must be a clean usage
        // error, not a backend-dependent panic or silent last-writer-wins.
        for mut ctx in all_contexts() {
            let module = ctx
                .compile("kernel void two(float a<>, out float x<>, out float y<>) { x = a; y = a + 1.0; }")
                .unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let o = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[0.0; 4]).unwrap();
            let err = ctx
                .run(
                    &module,
                    "two",
                    &[Arg::Stream(&a), Arg::Stream(&o), Arg::Stream(&o)],
                )
                .unwrap_err();
            assert!(matches!(err, BrookError::Usage(_)), "{}", ctx.backend_name());
        }
    }

    #[test]
    fn writing_wrong_size_rejected() {
        let mut ctx = BrookContext::cpu();
        let s = ctx.stream(&[4]).unwrap();
        assert!(matches!(ctx.write(&s, &[1.0, 2.0]), Err(BrookError::Usage(_))));
    }

    #[test]
    fn foreign_stream_rejected() {
        let mut a = BrookContext::cpu();
        let mut b = BrookContext::cpu();
        let s = a.stream(&[4]).unwrap();
        assert!(matches!(b.write(&s, &[0.0; 4]), Err(BrookError::Usage(_))));
    }

    #[test]
    fn in_place_kernel_rejected_on_every_backend() {
        for mut ctx in all_contexts() {
            let module = ctx.compile(ADD).unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let b = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[0.0; 4]).unwrap();
            ctx.write(&b, &[0.0; 4]).unwrap();
            let err = ctx
                .run(
                    &module,
                    "add",
                    &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&a)],
                )
                .unwrap_err();
            assert!(matches!(err, BrookError::Usage(_)), "{}", ctx.backend_name());
        }
    }

    #[test]
    fn memory_budget_enforced() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        ctx.set_memory_budget(Some(10_000));
        assert!(ctx.stream(&[32, 32]).is_ok()); // 4 KiB texture
        let err = ctx.stream(&[64, 64]).unwrap_err(); // 16 KiB > remaining
        assert!(matches!(err, BrookError::Gl(gles2_sim::GlError::OutOfMemory(_))));
    }

    #[test]
    fn gpu_counters_track_transfers() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[8, 8]).unwrap();
        let b = ctx.stream(&[8, 8]).unwrap();
        let c = ctx.stream(&[8, 8]).unwrap();
        ctx.write(&a, &vec![1.0; 64]).unwrap();
        ctx.write(&b, &vec![2.0; 64]).unwrap();
        ctx.run(
            &module,
            "add",
            &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)],
        )
        .unwrap();
        let _ = ctx.read(&c).unwrap();
        let counters = ctx.gpu_counters();
        assert_eq!(counters.draw_calls, 1);
        assert_eq!(counters.bytes_uploaded, 2 * 64 * 4);
        assert_eq!(counters.bytes_downloaded, 64 * 4);
        assert!(counters.alu_ops > 0);
        assert_eq!(counters.readbacks, 1);
    }

    #[test]
    fn large_linear_stream_roundtrip() {
        // Wraps across texture rows (stride translation, paper §5.3).
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let n = 5000;
        let s = ctx.stream(&[n]).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 100.0).collect();
        ctx.write(&s, &data).unwrap();
        assert_eq!(ctx.read(&s).unwrap(), data);
    }

    #[test]
    fn linear_kernel_across_rows() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx
            .compile("kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }")
            .unwrap();
        let n = 3000;
        let a = ctx.stream(&[n]).unwrap();
        let o = ctx.stream(&[n]).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        ctx.write(&a, &data).unwrap();
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap();
        let out = ctx.read(&o).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 * 2.0, "element {i}");
        }
    }
}
