//! `BrookContext` — the user-facing Brook Auto runtime.

use crate::cpu::{self, CpuBinding};
use crate::error::{BrookError, Result};
use crate::gpu::GpuState;
use crate::stream::{Stream, StreamDesc};
use brook_cert::{certify, CertConfig, ComplianceReport};
use brook_lang::ast::ParamKind;
use brook_lang::CheckedProgram;
use gles2_sim::{DeviceProfile, DrawMode, Value};
use perf_model::GpuRun;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_CONTEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A compiled, certified Brook Auto translation unit.
#[derive(Debug, Clone)]
pub struct BrookModule {
    pub(crate) checked: CheckedProgram,
    /// The certification data produced at compile time (paper §4).
    pub report: ComplianceReport,
    pub(crate) id: u64,
}

impl BrookModule {
    /// Kernel names defined by the module.
    pub fn kernels(&self) -> Vec<String> {
        self.checked.kernels.iter().map(|k| k.name.clone()).collect()
    }
}

/// A positional kernel argument.
#[derive(Debug, Clone, Copy)]
pub enum Arg<'a> {
    /// A stream (input, gather or output, matched by parameter kind).
    Stream(&'a Stream),
    /// Scalar `float`.
    Float(f32),
    /// Scalar `int`.
    Int(i32),
    /// `float2` constant.
    Float2([f32; 2]),
    /// `float3` constant.
    Float3([f32; 3]),
    /// `float4` constant.
    Float4([f32; 4]),
}

enum Backend {
    Cpu { streams: Vec<(StreamDesc, Vec<f32>)> },
    Gpu(Box<GpuState>),
}

/// The Brook Auto runtime context: owns streams, compiles kernels,
/// dispatches them on the selected backend.
pub struct BrookContext {
    backend: Backend,
    context_id: u64,
    next_module: u64,
    cert_config: CertConfig,
    /// When false, `compile` accepts non-compliant programs (used for
    /// negative tests and for measuring what certification would reject).
    pub enforce_certification: bool,
}

impl BrookContext {
    /// A context executing kernels on the interpreted CPU backend.
    pub fn cpu() -> Self {
        BrookContext {
            backend: Backend::Cpu { streams: Vec::new() },
            context_id: NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed),
            next_module: 1,
            cert_config: CertConfig::default(),
            enforce_certification: true,
        }
    }

    /// A context executing kernels on the simulated OpenGL ES 2.0 GPU.
    ///
    /// Storage mode follows the device: profiles without float textures
    /// use the packed RGBA8 path (paper §5.4).
    pub fn gles2(profile: DeviceProfile) -> Self {
        let cert_config = CertConfig {
            max_inputs: profile.texture_units,
            ..CertConfig::default()
        };
        BrookContext {
            backend: Backend::Gpu(Box::new(GpuState::new(profile))),
            context_id: NEXT_CONTEXT_ID.fetch_add(1, Ordering::Relaxed),
            next_module: 1,
            cert_config,
            enforce_certification: true,
        }
    }

    /// The certification limits this context enforces at compile time.
    pub fn cert_config(&self) -> &CertConfig {
        &self.cert_config
    }

    /// Compiles and certifies Brook source.
    ///
    /// # Errors
    /// Front-end diagnostics, or [`BrookError::Certification`] carrying
    /// the full compliance report when a rule is violated and enforcement
    /// is on.
    pub fn compile(&mut self, source: &str) -> Result<BrookModule> {
        let checked = brook_lang::parse_and_check(source)?;
        let report = certify(&checked, &self.cert_config);
        if self.enforce_certification && !report.is_compliant() {
            return Err(BrookError::Certification(Box::new(report)));
        }
        let id = self.next_module;
        self.next_module += 1;
        Ok(BrookModule { checked, report, id })
    }

    /// Creates a statically-sized scalar `float` stream.
    ///
    /// # Errors
    /// Shape/device violations (dimension count, texture limits, VRAM
    /// budget).
    pub fn stream(&mut self, shape: &[usize]) -> Result<Stream> {
        self.stream_with_width(shape, 1)
    }

    /// Creates a stream of `floatN` elements (`width` in 1..=4).
    ///
    /// # Errors
    /// As [`BrookContext::stream`]; additionally, packed-storage devices
    /// reject `width > 1`.
    pub fn stream_with_width(&mut self, shape: &[usize], width: u8) -> Result<Stream> {
        if !(1..=4).contains(&width) {
            return Err(BrookError::Usage(format!("element width {width} out of range 1..=4")));
        }
        let desc = StreamDesc { shape: shape.to_vec(), width };
        let index = match &mut self.backend {
            Backend::Cpu { streams } => {
                if desc.shape.is_empty() || desc.shape.len() > 4 || desc.shape.contains(&0) {
                    return Err(BrookError::Usage("streams have 1 to 4 positive dimensions".into()));
                }
                let len = desc.scalar_len();
                streams.push((desc, vec![0.0; len]));
                streams.len() - 1
            }
            Backend::Gpu(gpu) => gpu.create_stream(desc)?,
        };
        Ok(Stream { index, context_id: self.context_id })
    }

    fn check_stream(&self, s: &Stream) -> Result<()> {
        if s.context_id != self.context_id {
            return Err(BrookError::Usage("stream belongs to a different context".into()));
        }
        Ok(())
    }

    /// Stream element count.
    pub fn stream_len(&self, s: &Stream) -> usize {
        match &self.backend {
            Backend::Cpu { streams } => streams[s.index].0.len(),
            Backend::Gpu(gpu) => gpu.streams[s.index].desc.len(),
        }
    }

    /// Copies values into a stream (`streamRead` in Brook terms).
    ///
    /// # Errors
    /// Size mismatches and foreign streams.
    pub fn write(&mut self, s: &Stream, values: &[f32]) -> Result<()> {
        self.check_stream(s)?;
        match &mut self.backend {
            Backend::Cpu { streams } => {
                let (desc, buf) = &mut streams[s.index];
                if values.len() != desc.scalar_len() {
                    return Err(BrookError::Usage(format!(
                        "stream expects {} values, got {}",
                        desc.scalar_len(),
                        values.len()
                    )));
                }
                buf.copy_from_slice(values);
                Ok(())
            }
            Backend::Gpu(gpu) => gpu.write_stream(s.index, values),
        }
    }

    /// Copies a stream back to the host (`streamWrite` in Brook terms).
    ///
    /// # Errors
    /// Foreign streams; GL failures.
    pub fn read(&mut self, s: &Stream) -> Result<Vec<f32>> {
        self.check_stream(s)?;
        match &mut self.backend {
            Backend::Cpu { streams } => Ok(streams[s.index].1.clone()),
            Backend::Gpu(gpu) => gpu.read_stream(s.index),
        }
    }

    /// Runs a kernel with positional arguments (one per parameter).
    /// Multi-output kernels execute one GPU pass per output — the
    /// splitting of paper §6.
    ///
    /// # Errors
    /// Argument/parameter mismatches, certification-mode violations and
    /// backend failures.
    pub fn run(&mut self, module: &BrookModule, kernel: &str, args: &[Arg<'_>]) -> Result<()> {
        let kdef = module
            .checked
            .program
            .kernel(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?
            .clone();
        if kdef.is_reduce {
            return Err(BrookError::Usage(format!(
                "`{kernel}` is a reduce kernel; call `reduce` instead"
            )));
        }
        if args.len() != kdef.params.len() {
            return Err(BrookError::Usage(format!(
                "kernel `{kernel}` has {} parameters, {} arguments given",
                kdef.params.len(),
                args.len()
            )));
        }
        // Classify arguments against parameters.
        let mut stream_args: Vec<(String, Option<usize>)> = Vec::new();
        let mut scalar_args: Vec<(String, Value)> = Vec::new();
        let mut outputs: Vec<(String, usize)> = Vec::new();
        for (p, a) in kdef.params.iter().zip(args) {
            match (p.kind, a) {
                (ParamKind::Stream | ParamKind::Gather { .. }, Arg::Stream(s)) => {
                    self.check_stream(s)?;
                    stream_args.push((p.name.clone(), Some(s.index)));
                }
                (ParamKind::OutStream, Arg::Stream(s)) => {
                    self.check_stream(s)?;
                    stream_args.push((p.name.clone(), Some(s.index)));
                    outputs.push((p.name.clone(), s.index));
                }
                (ParamKind::Scalar, arg) => {
                    let v = match (p.ty.width, arg) {
                        (_, Arg::Stream(_)) => {
                            return Err(BrookError::Usage(format!(
                                "parameter `{}` is a scalar but a stream was passed",
                                p.name
                            )))
                        }
                        (1, Arg::Float(f)) => {
                            if p.ty.scalar == brook_lang::ast::ScalarKind::Int {
                                Value::Int(*f as i32)
                            } else {
                                Value::Float(*f)
                            }
                        }
                        (1, Arg::Int(i)) => {
                            if p.ty.scalar == brook_lang::ast::ScalarKind::Int {
                                Value::Int(*i)
                            } else {
                                Value::Float(*i as f32)
                            }
                        }
                        (2, Arg::Float2(v)) => Value::Vec2(*v),
                        (3, Arg::Float3(v)) => Value::Vec3(*v),
                        (4, Arg::Float4(v)) => Value::Vec4(*v),
                        _ => {
                            return Err(BrookError::Usage(format!(
                                "argument for `{}` does not match its type {}",
                                p.name, p.ty
                            )))
                        }
                    };
                    scalar_args.push((p.name.clone(), v));
                }
                (_, _) => {
                    return Err(BrookError::Usage(format!(
                        "parameter `{}` needs a stream argument",
                        p.name
                    )))
                }
            }
        }
        if outputs.is_empty() {
            return Err(BrookError::Usage(format!("kernel `{kernel}` has no output streams")));
        }
        match &mut self.backend {
            Backend::Gpu(gpu) => {
                for (out_name, _) in &outputs {
                    gpu.run_pass(&module.checked, module.id, kernel, out_name, &stream_args, &scalar_args)?;
                }
                Ok(())
            }
            Backend::Cpu { streams } => {
                // Move output buffers out to satisfy the borrow checker,
                // run, then put them back.
                let mut out_bufs: Vec<Vec<f32>> = Vec::new();
                let mut out_index_of: HashMap<String, usize> = HashMap::new();
                for (name, idx) in &outputs {
                    out_index_of.insert(name.clone(), out_bufs.len());
                    out_bufs.push(std::mem::take(&mut streams[*idx].1));
                }
                let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
                for (p, a) in kdef.params.iter().zip(args) {
                    match (p.kind, a) {
                        (ParamKind::Stream, Arg::Stream(s)) => {
                            let (desc, data) = &streams[s.index];
                            bindings.insert(
                                p.name.clone(),
                                CpuBinding::Elem { data, shape: &desc.shape, width: desc.width },
                            );
                        }
                        (ParamKind::Gather { .. }, Arg::Stream(s)) => {
                            let (desc, data) = &streams[s.index];
                            bindings.insert(
                                p.name.clone(),
                                CpuBinding::Gather { data, shape: &desc.shape, width: desc.width },
                            );
                        }
                        (ParamKind::OutStream, Arg::Stream(_)) => {
                            bindings.insert(p.name.clone(), CpuBinding::Out(out_index_of[&p.name]));
                        }
                        (ParamKind::Scalar, _) => {
                            let v = scalar_args
                                .iter()
                                .find(|(n, _)| n == &p.name)
                                .map(|(_, v)| *v)
                                .expect("scalar classified above");
                            bindings.insert(p.name.clone(), CpuBinding::Scalar(v));
                        }
                        _ => unreachable!("validated above"),
                    }
                }
                // The output domain is the first output stream's shape.
                let domain_shape = {
                    let first_out = outputs[0].1;
                    streams[first_out].0.shape.clone()
                };
                let result = cpu::run_kernel_shaped(
                    &module.checked,
                    kernel,
                    &bindings,
                    &mut out_bufs,
                    &domain_shape,
                );
                drop(bindings);
                for ((_, idx), buf) in outputs.iter().zip(out_bufs) {
                    streams[*idx].1 = buf;
                }
                result
            }
        }
    }

    /// Applies a reduce kernel to a stream, producing a scalar.
    ///
    /// On the GPU this is the multi-pass ping-pong ladder of paper §5.5;
    /// on the CPU it folds the kernel body serially.
    ///
    /// # Errors
    /// Unknown/non-reduce kernels and backend failures.
    pub fn reduce(&mut self, module: &BrookModule, kernel: &str, input: &Stream) -> Result<f32> {
        self.check_stream(input)?;
        let summary = module
            .checked
            .summary(kernel)
            .ok_or_else(|| BrookError::Usage(format!("unknown kernel `{kernel}`")))?;
        if !summary.is_reduce {
            return Err(BrookError::Usage(format!("kernel `{kernel}` is not a reduce kernel")));
        }
        let op = summary
            .reduce_op
            .ok_or_else(|| BrookError::Usage("reduce kernel without a detected operation".into()))?;
        match &mut self.backend {
            Backend::Gpu(gpu) => gpu.reduce(op, input.index),
            Backend::Cpu { streams } => {
                let data = streams[input.index].1.clone();
                cpu::run_reduce(&module.checked, kernel, &data)
            }
        }
    }

    /// Switches GPU dispatch between full execution and sampled cost
    /// estimation (no effect on the CPU backend).
    pub fn set_dispatch(&mut self, mode: DrawMode) {
        if let Backend::Gpu(gpu) = &mut self.backend {
            gpu.dispatch = mode;
        }
    }

    /// Installs a GPU memory budget in bytes (BA002's runtime
    /// enforcement); `None` removes it.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        if let Backend::Gpu(gpu) = &mut self.backend {
            gpu.gl.set_vram_budget(bytes);
        }
    }

    /// GPU execution counters for the performance model (zeros on the
    /// CPU backend).
    pub fn gpu_counters(&self) -> GpuRun {
        match &self.backend {
            Backend::Cpu { .. } => GpuRun::default(),
            Backend::Gpu(gpu) => {
                let s = gpu.gl.stats();
                GpuRun {
                    alu_ops: s.alu_ops,
                    tex_fetches: s.tex_fetches,
                    fragments: s.fragments_shaded,
                    draw_calls: s.draw_calls,
                    readbacks: gpu.readbacks,
                    bytes_uploaded: s.bytes_uploaded,
                    bytes_downloaded: s.bytes_downloaded,
                }
            }
        }
    }

    /// Resets GPU counters (e.g. to exclude warm-up and setup from a
    /// measurement window).
    pub fn reset_counters(&mut self) {
        if let Backend::Gpu(gpu) = &mut self.backend {
            gpu.gl.reset_stats();
            gpu.readbacks = 0;
        }
    }

    /// Bytes of GPU texture memory currently allocated (0 on CPU).
    pub fn gpu_memory_used(&self) -> usize {
        match &self.backend {
            Backend::Cpu { .. } => 0,
            Backend::Gpu(gpu) => gpu.gl.vram_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: &str = "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }";

    fn both_contexts() -> Vec<BrookContext> {
        vec![BrookContext::cpu(), BrookContext::gles2(DeviceProfile::videocore_iv())]
    }

    #[test]
    fn add_kernel_on_both_backends() {
        for mut ctx in both_contexts() {
            let module = ctx.compile(ADD).unwrap();
            let a = ctx.stream(&[2, 3]).unwrap();
            let b = ctx.stream(&[2, 3]).unwrap();
            let c = ctx.stream(&[2, 3]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
            ctx.write(&b, &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).unwrap();
            ctx.run(&module, "add", &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)]).unwrap();
            assert_eq!(ctx.read(&c).unwrap(), vec![11.0, 22.0, 33.0, 44.0, 55.0, 66.0]);
        }
    }

    #[test]
    fn scalar_uniform_argument() {
        for mut ctx in both_contexts() {
            let module = ctx
                .compile("kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) { r = alpha * x + y; }")
                .unwrap();
            let x = ctx.stream(&[4]).unwrap();
            let y = ctx.stream(&[4]).unwrap();
            let r = ctx.stream(&[4]).unwrap();
            ctx.write(&x, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            ctx.write(&y, &[0.5, 0.5, 0.5, 0.5]).unwrap();
            ctx.run(&module, "saxpy", &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)])
                .unwrap();
            assert_eq!(ctx.read(&r).unwrap(), vec![2.5, 4.5, 6.5, 8.5]);
        }
    }

    #[test]
    fn certification_is_enforced_at_compile() {
        let mut ctx = BrookContext::cpu();
        let err = ctx
            .compile("kernel void f(float a<>, out float o<>) { while (a > 0.0) { } o = a; }")
            .unwrap_err();
        assert!(matches!(err, BrookError::Certification(_)));
    }

    #[test]
    fn reduce_on_both_backends() {
        for mut ctx in both_contexts() {
            let module = ctx.compile("reduce void sum(float a<>, reduce float r<>) { r += a; }").unwrap();
            let a = ctx.stream(&[100]).unwrap();
            let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
            ctx.write(&a, &data).unwrap();
            let total = ctx.reduce(&module, "sum", &a).unwrap();
            assert_eq!(total, 5050.0);
        }
    }

    #[test]
    fn reduce_max_on_2d_stream() {
        for mut ctx in both_contexts() {
            let module = ctx.compile("reduce void m(float a<>, reduce float r<>) { r = max(r, a); }").unwrap();
            let a = ctx.stream(&[8, 8]).unwrap();
            let mut data: Vec<f32> = (0..64).map(|i| (i as f32 * 37.0) % 53.0).collect();
            data[37] = 1000.0;
            ctx.write(&a, &data).unwrap();
            assert_eq!(ctx.reduce(&module, "m", &a).unwrap(), 1000.0);
        }
    }

    #[test]
    fn reduce_with_partial_tail_row() {
        // 2049 elements on a 2048-wide device: linear layout wraps to a
        // second row with a 1-element tail; masking must keep the sum
        // exact.
        for mut ctx in both_contexts() {
            let module = ctx.compile("reduce void sum(float a<>, reduce float r<>) { r += a; }").unwrap();
            let n = 2049;
            let a = ctx.stream(&[n]).unwrap();
            let data: Vec<f32> = vec![1.0; n];
            ctx.write(&a, &data).unwrap();
            assert_eq!(ctx.reduce(&module, "sum", &a).unwrap(), n as f32);
        }
    }

    #[test]
    fn gather_kernel_matches_between_backends() {
        let src = "kernel void perm(float v[], float idx<>, out float o<>) { o = v[int(idx)]; }";
        let table: Vec<f32> = (0..16).map(|i| (i * i) as f32).collect();
        let idx: Vec<f32> = vec![3.0, 0.0, 15.0, 7.0];
        let mut results = Vec::new();
        for mut ctx in both_contexts() {
            let module = ctx.compile(src).unwrap();
            let v = ctx.stream(&[16]).unwrap();
            let ix = ctx.stream(&[4]).unwrap();
            let o = ctx.stream(&[4]).unwrap();
            ctx.write(&v, &table).unwrap();
            ctx.write(&ix, &idx).unwrap();
            ctx.run(&module, "perm", &[Arg::Stream(&v), Arg::Stream(&ix), Arg::Stream(&o)]).unwrap();
            results.push(ctx.read(&o).unwrap());
        }
        assert_eq!(results[0], vec![9.0, 0.0, 225.0, 49.0]);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn indexof_matches_between_backends() {
        let src = "kernel void idx(float a<>, out float o<>) { float2 p = indexof(o); o = p.y * 100.0 + p.x; }";
        let mut results = Vec::new();
        for mut ctx in both_contexts() {
            let module = ctx.compile(src).unwrap();
            let a = ctx.stream(&[3, 4]).unwrap();
            let o = ctx.stream(&[3, 4]).unwrap();
            ctx.write(&a, &[0.0; 12]).unwrap();
            ctx.run(&module, "idx", &[Arg::Stream(&a), Arg::Stream(&o)]).unwrap();
            results.push(ctx.read(&o).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0][0], 0.0);
        assert_eq!(results[0][5], 101.0); // row 1, col 1
    }

    #[test]
    fn multi_output_kernel_splits_passes() {
        for mut ctx in both_contexts() {
            let module = ctx
                .compile("kernel void two(float a<>, out float x<>, out float y<>) { x = a * 2.0; y = a + 1.0; }")
                .unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let x = ctx.stream(&[4]).unwrap();
            let y = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            ctx.run(&module, "two", &[Arg::Stream(&a), Arg::Stream(&x), Arg::Stream(&y)]).unwrap();
            assert_eq!(ctx.read(&x).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
            assert_eq!(ctx.read(&y).unwrap(), vec![2.0, 3.0, 4.0, 5.0]);
        }
    }

    #[test]
    fn writing_wrong_size_rejected() {
        let mut ctx = BrookContext::cpu();
        let s = ctx.stream(&[4]).unwrap();
        assert!(matches!(ctx.write(&s, &[1.0, 2.0]), Err(BrookError::Usage(_))));
    }

    #[test]
    fn foreign_stream_rejected() {
        let mut a = BrookContext::cpu();
        let mut b = BrookContext::cpu();
        let s = a.stream(&[4]).unwrap();
        assert!(matches!(b.write(&s, &[0.0; 4]), Err(BrookError::Usage(_))));
    }

    #[test]
    fn in_place_kernel_rejected_on_gpu() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let b = ctx.stream(&[4]).unwrap();
        ctx.write(&a, &[0.0; 4]).unwrap();
        ctx.write(&b, &[0.0; 4]).unwrap();
        let err = ctx.run(&module, "add", &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&a)]).unwrap_err();
        assert!(matches!(err, BrookError::Usage(_)));
    }

    #[test]
    fn memory_budget_enforced() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        ctx.set_memory_budget(Some(10_000));
        assert!(ctx.stream(&[32, 32]).is_ok()); // 4 KiB texture
        let err = ctx.stream(&[64, 64]).unwrap_err(); // 16 KiB > remaining
        assert!(matches!(err, BrookError::Gl(gles2_sim::GlError::OutOfMemory(_))));
    }

    #[test]
    fn gpu_counters_track_transfers() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[8, 8]).unwrap();
        let b = ctx.stream(&[8, 8]).unwrap();
        let c = ctx.stream(&[8, 8]).unwrap();
        ctx.write(&a, &vec![1.0; 64]).unwrap();
        ctx.write(&b, &vec![2.0; 64]).unwrap();
        ctx.run(&module, "add", &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)]).unwrap();
        let _ = ctx.read(&c).unwrap();
        let counters = ctx.gpu_counters();
        assert_eq!(counters.draw_calls, 1);
        assert_eq!(counters.bytes_uploaded, 2 * 64 * 4);
        assert_eq!(counters.bytes_downloaded, 64 * 4);
        assert!(counters.alu_ops > 0);
        assert_eq!(counters.readbacks, 1);
    }

    #[test]
    fn large_linear_stream_roundtrip() {
        // Wraps across texture rows (stride translation, paper §5.3).
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let n = 5000;
        let s = ctx.stream(&[n]).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 100.0).collect();
        ctx.write(&s, &data).unwrap();
        assert_eq!(ctx.read(&s).unwrap(), data);
    }

    #[test]
    fn linear_kernel_across_rows() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx.compile("kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }").unwrap();
        let n = 3000;
        let a = ctx.stream(&[n]).unwrap();
        let o = ctx.stream(&[n]).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        ctx.write(&a, &data).unwrap();
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)]).unwrap();
        let out = ctx.read(&o).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 * 2.0, "element {i}");
        }
    }
}
