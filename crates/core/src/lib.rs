//! # brook-auto — certification-friendly GPU streaming for automotive systems
//!
//! A from-scratch reproduction of *Brook Auto: High-Level
//! Certification-Friendly Programming for GPU-powered Automotive Systems*
//! (Trompouki & Kosmidis, DAC 2018). Brook Auto is an ISO 26262-amenable
//! subset of the Brook GPU streaming language, compiled to OpenGL ES 2.0
//! fragment shaders so it runs on *any* embedded GPU — including the
//! low-end, graphics-only parts shipped in automotive platforms.
//!
//! The crate ties the toolchain together:
//!
//! * `brook-lang` front-end (lexer/parser/type checker),
//! * `brook-cert` certification rule engine — every [`compile`] runs the
//!   full ISO 26262 rule catalogue and refuses non-compliant kernels,
//! * `brook-codegen` GLSL ES 1.00 generation with hidden size uniforms,
//! * `gles2-sim` + `glsl-es` as the simulated device, and
//! * a CPU interpreter backend providing the reference semantics.
//!
//! ```
//! use brook_auto::{Arg, BrookContext};
//! let mut ctx = BrookContext::gles2(gles2_sim::DeviceProfile::videocore_iv());
//! let module = ctx.compile(
//!     "kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }",
//! )?;
//! let x = ctx.stream(&[4])?;
//! let y = ctx.stream(&[4])?;
//! let r = ctx.stream(&[4])?;
//! ctx.write(&x, &[1.0, 2.0, 3.0, 4.0])?;
//! ctx.write(&y, &[10.0, 10.0, 10.0, 10.0])?;
//! ctx.run(&module, "saxpy", &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)])?;
//! assert_eq!(ctx.read(&r)?, vec![12.0, 14.0, 16.0, 18.0]);
//! # Ok::<(), brook_auto::BrookError>(())
//! ```
//!
//! [`compile`]: BrookContext::compile

pub mod budget;
pub mod context;
pub mod cpu;
pub mod error;
pub(crate) mod gpu;
pub mod stream;

pub use budget::{plan_memory, MemoryPlan, PlannedStream};
pub use context::{Arg, BrookContext, BrookModule};
pub use error::{BrookError, Result};
pub use stream::{Stream, StreamDesc, StreamLayout};

// Re-exports so applications only need this crate.
pub use brook_cert::{CertConfig, ComplianceReport};
pub use brook_codegen::StorageMode;
pub use brook_lang::ReduceOp;
pub use gles2_sim::{DeviceProfile, DrawMode};
