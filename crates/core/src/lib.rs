//! # brook-auto — certification-friendly GPU streaming for automotive systems
//!
//! A from-scratch reproduction of *Brook Auto: High-Level
//! Certification-Friendly Programming for GPU-powered Automotive Systems*
//! (Trompouki & Kosmidis, DAC 2018). Brook Auto is an ISO 26262-amenable
//! subset of the Brook GPU streaming language, compiled to OpenGL ES 2.0
//! fragment shaders so it runs on *any* embedded GPU — including the
//! low-end, graphics-only parts shipped in automotive platforms.
//!
//! The crate ties the toolchain together:
//!
//! * `brook-lang` front-end (lexer/parser/type checker),
//! * `brook-cert` certification rule engine — every [`compile`] runs the
//!   full ISO 26262 rule catalogue and refuses non-compliant kernels,
//! * `brook-ir` — BrookIR, the typed flat register-based mid-level IR
//!   every backend executes: [`compile`] lowers the checked program,
//!   re-gates it at the IR level and runs the cert-gated optimization
//!   pipeline (rollback on any violation, provenance recorded in the
//!   module's `ComplianceReport`),
//! * `brook-codegen` GLSL ES 1.00 generation from the optimized IR,
//! * the pluggable [`backend`] layer: a [`BackendExecutor`] trait with
//!   three in-tree implementations — the serial CPU interpreter (the
//!   reference semantics), a data-parallel CPU backend, and the
//!   `gles2-sim` + `glsl-es` simulated device in native-float or packed
//!   RGBA8 storage.
//!
//! ```
//! use brook_auto::{Arg, BrookContext};
//! let mut ctx = BrookContext::gles2(gles2_sim::DeviceProfile::videocore_iv());
//! let module = ctx.compile(
//!     "kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }",
//! )?;
//! let x = ctx.stream(&[4])?;
//! let y = ctx.stream(&[4])?;
//! let r = ctx.stream(&[4])?;
//! ctx.write(&x, &[1.0, 2.0, 3.0, 4.0])?;
//! ctx.write(&y, &[10.0, 10.0, 10.0, 10.0])?;
//! ctx.run(&module, "saxpy", &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(2.0), Arg::Stream(&r)])?;
//! assert_eq!(ctx.read(&r)?, vec![12.0, 14.0, 16.0, 18.0]);
//! # Ok::<(), brook_auto::BrookError>(())
//! ```
//!
//! The same program runs unchanged on every registered backend — the
//! paper's portability claim, executable:
//!
//! ```
//! use brook_auto::{registered_backends, Arg};
//! let mut results = Vec::new();
//! for spec in registered_backends() {
//!     let mut ctx = (spec.make)();
//!     let module = ctx.compile(
//!         "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }",
//!     )?;
//!     let a = ctx.stream(&[3])?;
//!     let o = ctx.stream(&[3])?;
//!     ctx.write(&a, &[1.0, 2.0, 3.0])?;
//!     ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])?;
//!     results.push((spec.name, ctx.read(&o)?));
//! }
//! assert!(results.iter().all(|(_, r)| r == &vec![2.0, 4.0, 6.0]));
//! assert_eq!(results.len(), 4); // cpu, cpu-parallel, gles2-native, gles2-packed
//! # Ok::<(), brook_auto::BrookError>(())
//! ```
//!
//! [`compile`]: BrookContext::compile

pub mod backend;
pub mod budget;
pub mod context;
pub mod cpu;
pub mod cpu_parallel;
pub mod error;
pub(crate) mod gpu;
pub mod graph;
pub mod resilience;
pub mod stream;

pub use backend::{registered_backends, BackendExecutor, BackendSpec, BoundArg, KernelLaunch};
pub use budget::{plan_memory, plan_memory_with_widths, MemoryPlan, PlannedStream};
pub use context::{Arg, BrookContext, BrookModule, ModuleArtifact};
pub use cpu::CpuBackend;
pub use cpu_parallel::ParallelCpuBackend;
pub use error::{BrookError, Result};
pub use graph::{BrookGraph, FusedKernel, GraphReport, ReduceHandle};
pub use resilience::{ResiliencePolicy, ResilienceReport};
pub use stream::{Stream, StreamDesc, StreamLayout};

// Re-exports so applications only need this crate.
pub use brook_cert::{CertConfig, ComplianceReport, PassAction, PassRecord};
pub use brook_codegen::StorageMode;
pub use brook_inject as inject;
pub use brook_inject::{
    CancelToken, FaultInjector, FaultKind, FaultMix, FaultPlan, InjectedFault, LaunchResilience,
    ResilienceSummary, ScheduledFault,
};
pub use brook_ir;
pub use brook_lang::ReduceOp;
pub use gles2_sim::{DeviceProfile, DrawMode};
