//! Stream handles and texture layout computation.
//!
//! Brook Auto forces every stream handle to a static size (paper §4) so
//! maximum GPU memory usage is statically determinable. A stream's
//! logical shape (1 to 4 dimensions) maps onto a 2D texture allocation
//! (paper §5.3), possibly padded to power-of-two dimensions; the runtime
//! keeps both so generated code can scale indices correctly.

use brook_codegen::StreamRank;
use gles2_sim::next_pow2;

/// Opaque handle to a stream owned by a `BrookContext`.
///
/// There is deliberately no way to obtain a pointer or to resize the
/// stream: the handle *is* the certification story (BA001/BA002).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream {
    pub(crate) index: usize,
    pub(crate) context_id: u64,
}

/// Static description of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDesc {
    /// Logical extents, outermost first (e.g. `[rows, cols]`).
    pub shape: Vec<usize>,
    /// Element vector width (1 = `float`, 4 = `float4`).
    pub width: u8,
}

impl StreamDesc {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True when the stream has no elements (never constructible through
    /// the public API, which validates shapes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `f32` values backing the stream.
    pub fn scalar_len(&self) -> usize {
        self.len() * self.width as usize
    }
}

/// The public stream-creation rules, shared by real streams
/// ([`crate::BrookContext::stream_with_width`]) and virtual ones
/// ([`crate::graph::BrookGraph::stream_with_width`]) so both surfaces
/// accept exactly the same shapes with exactly the same diagnostics.
pub(crate) fn validate_stream_params(shape: &[usize], width: u8) -> std::result::Result<(), String> {
    if !(1..=4).contains(&width) {
        return Err(format!("element width {width} out of range 1..=4"));
    }
    if shape.is_empty() || shape.len() > 4 {
        return Err(format!("streams have 1 to 4 dimensions, got {}", shape.len()));
    }
    if shape.contains(&0) {
        return Err("stream dimensions must be positive".into());
    }
    Ok(())
}

/// Computed 2D texture layout for a stream on a particular device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamLayout {
    /// Shape class used by generated code.
    pub rank: StreamRank,
    /// Allocated texture width in texels.
    pub alloc_w: u32,
    /// Allocated texture height in texels.
    pub alloc_h: u32,
    /// Logical innermost extent (columns for `Grid`, total length for
    /// `Linear`).
    pub logical_x: u32,
    /// Logical row count (`Grid`) or rows actually used (`Linear`).
    pub logical_y: u32,
    /// Viewport used when this stream is the kernel output.
    pub viewport: (u32, u32),
    /// Texels per element along x (elements with width > 1 in native
    /// storage still use one texel; packed storage requires width 1).
    pub texels_per_elem: u32,
}

impl StreamLayout {
    /// The `_meta_*` uniform payload: `(alloc_w, alloc_h, logical_x,
    /// logical_y)`.
    pub fn meta(&self) -> [f32; 4] {
        [
            self.alloc_w as f32,
            self.alloc_h as f32,
            self.logical_x as f32,
            self.logical_y as f32,
        ]
    }

    /// Allocated texture size in bytes for the given texel size.
    pub fn alloc_bytes(&self, bytes_per_texel: usize) -> usize {
        self.alloc_w as usize * self.alloc_h as usize * bytes_per_texel
    }
}

/// Computes the texture layout for a logical shape on a device with the
/// given maximum texture size and power-of-two requirement.
///
/// * rank 2 shapes map directly: element `(row, col)` at texel
///   `(col, row)`;
/// * rank 1, 3 and 4 shapes pack linearly, row-major with the allocated
///   width as stride.
///
/// # Errors
/// Returns a human-readable description when the shape cannot fit the
/// device (paper §6.1: SpMV is capped at 1024 on the target because the
/// decompressed matrix reaches the 2048 texture limit).
pub fn layout_for(
    shape: &[usize],
    pow2_required: bool,
    max_texture_size: u32,
) -> std::result::Result<StreamLayout, String> {
    if shape.is_empty() || shape.len() > 4 {
        return Err(format!("streams have 1 to 4 dimensions, got {}", shape.len()));
    }
    if shape.contains(&0) {
        return Err("stream dimensions must be positive".into());
    }
    let round = |v: u32| if pow2_required { next_pow2(v) } else { v };
    if shape.len() == 2 {
        let (rows, cols) = (shape[0] as u32, shape[1] as u32);
        let (aw, ah) = (round(cols), round(rows));
        if aw > max_texture_size || ah > max_texture_size {
            return Err(format!(
                "2D stream {rows}x{cols} needs a {ah}x{aw} texture, exceeding the device limit {max_texture_size}"
            ));
        }
        return Ok(StreamLayout {
            rank: StreamRank::Grid,
            alloc_w: aw,
            alloc_h: ah,
            logical_x: cols,
            logical_y: rows,
            viewport: (cols, rows),
            texels_per_elem: 1,
        });
    }
    // Linear packing for ranks 1, 3, 4.
    let len: usize = shape.iter().product();
    let len = len as u64;
    let max = max_texture_size as u64;
    let width = round(len.min(max) as u32).min(max_texture_size);
    let rows_needed = len.div_ceil(width as u64);
    let height = round(rows_needed as u32);
    if height > max_texture_size {
        return Err(format!(
            "stream of {len} elements needs {rows_needed} rows of {width}, exceeding the device limit {max_texture_size}"
        ));
    }
    Ok(StreamLayout {
        rank: StreamRank::Linear,
        alloc_w: width,
        alloc_h: height,
        logical_x: len as u32,
        logical_y: rows_needed as u32,
        viewport: (width, rows_needed as u32),
        texels_per_elem: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank2_maps_directly() {
        let l = layout_for(&[100, 200], true, 2048).unwrap();
        assert_eq!(l.rank, StreamRank::Grid);
        assert_eq!((l.alloc_w, l.alloc_h), (256, 128));
        assert_eq!((l.logical_x, l.logical_y), (200, 100));
        assert_eq!(l.viewport, (200, 100));
    }

    #[test]
    fn rank2_exact_pow2_not_padded() {
        let l = layout_for(&[128, 128], true, 2048).unwrap();
        assert_eq!((l.alloc_w, l.alloc_h), (128, 128));
    }

    #[test]
    fn rank1_small_fits_one_row() {
        let l = layout_for(&[1000], true, 2048).unwrap();
        assert_eq!(l.rank, StreamRank::Linear);
        assert_eq!(l.alloc_w, 1024);
        assert_eq!(l.alloc_h, 1);
        assert_eq!(l.logical_x, 1000);
        assert_eq!(l.viewport, (1024, 1));
    }

    #[test]
    fn rank1_large_wraps_rows() {
        // 2048^2 elements (the binary-search case at the texture limit).
        let l = layout_for(&[2048 * 2048], true, 2048).unwrap();
        assert_eq!(l.alloc_w, 2048);
        assert_eq!(l.alloc_h, 2048);
        assert_eq!(l.logical_y, 2048);
    }

    #[test]
    fn rank1_too_large_rejected() {
        assert!(layout_for(&[2048 * 2048 + 1], true, 2048).is_err());
    }

    #[test]
    fn rank2_too_large_rejected() {
        assert!(layout_for(&[4096, 4096], true, 2048).is_err());
        assert!(layout_for(&[4096, 4096], false, 4096).is_ok());
    }

    #[test]
    fn rank3_packs_linearly() {
        let l = layout_for(&[4, 8, 16], true, 2048).unwrap();
        assert_eq!(l.rank, StreamRank::Linear);
        assert_eq!(l.logical_x, 4 * 8 * 16);
    }

    #[test]
    fn npot_device_gets_exact_sizes() {
        let l = layout_for(&[100, 200], false, 4096).unwrap();
        assert_eq!((l.alloc_w, l.alloc_h), (200, 100));
    }

    #[test]
    fn zero_and_overrank_shapes_rejected() {
        assert!(layout_for(&[], true, 2048).is_err());
        assert!(layout_for(&[0], true, 2048).is_err());
        assert!(layout_for(&[1, 1, 1, 1, 1], true, 2048).is_err());
    }

    #[test]
    fn meta_matches_fields() {
        let l = layout_for(&[64, 64], true, 2048).unwrap();
        assert_eq!(l.meta(), [64.0, 64.0, 64.0, 64.0]);
    }

    #[test]
    fn desc_lengths() {
        let d = StreamDesc {
            shape: vec![3, 4],
            width: 2,
        };
        assert_eq!(d.len(), 12);
        assert_eq!(d.scalar_len(), 24);
        assert!(!d.is_empty());
    }
}
