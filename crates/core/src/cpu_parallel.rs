//! The data-parallel CPU backend: Brook's "every output element is
//! independent" guarantee, cashed in on multi-core hosts.
//!
//! Brook kernels are forbidden from communicating between elements (no
//! shared mutable state, no scatter), which is the paper's certification
//! argument *and* a parallelization licence: the output domain can be
//! split into contiguous chunks evaluated on worker threads with zero
//! synchronization beyond the final join. Each worker runs the same
//! interpreter core as [`crate::cpu::CpuBackend`]
//! ([`crate::cpu::run_kernel_range`]) over a disjoint domain range,
//! writing into a disjoint slice of each output buffer, so results are
//! **bit-identical** to the serial backend no matter how many workers
//! run.
//!
//! Reductions stay serial by default: a chunked tree fold would change
//! the floating-point association order and break bit-equality with
//! the reference backend, which the differential-test layer asserts.
//! The one exception is the **admitted vectorized reduce path**
//! (`brook_ir::simd::ReduceKernel`): its admission proof (NaN-free,
//! sign-definite `min`/`max` operands) makes the combine a lattice
//! operation whose result is one unique bit pattern under *any*
//! association, so the map phase parallelizes across workers and the
//! fold stays bit-identical to the serial backend by construction.

use crate::backend::{BackendExecutor, KernelLaunch};
use crate::cpu::{self, CpuBinding};
use crate::error::{BrookError, Result};
use crate::stream::StreamDesc;
use brook_ir::interp as ir_interp;
use brook_ir::IrKernel;
use brook_lang::{CheckedProgram, ReduceOp};
use std::collections::HashMap;
use std::ops::Range;

/// Below this many output elements the thread fan-out costs more than it
/// saves; dispatches fall back to the serial interpreter path.
pub const PARALLEL_THRESHOLD: usize = 256;

/// Upper bound on worker threads (beyond this the interpreter is memory-
/// bound and extra workers only add scheduling noise).
const MAX_WORKERS: usize = 16;

/// The parallel CPU interpreter backend.
///
/// See the module docs for the parallel dispatch and (vectorized)
/// reduce contracts.
pub struct ParallelCpuBackend {
    streams: Vec<(StreamDesc, Vec<f32>)>,
    workers: usize,
}

impl ParallelCpuBackend {
    /// A backend using one worker per available core (capped).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(MAX_WORKERS);
        Self::with_workers(workers)
    }

    /// A backend with an explicit worker count (`0` is clamped to 1;
    /// `1` degenerates to the serial path).
    pub fn with_workers(workers: usize) -> Self {
        ParallelCpuBackend {
            streams: Vec::new(),
            workers: workers.max(1),
        }
    }

    /// The admitted vectorized reduce: per-element combine operands are
    /// produced by the map phase in parallel over disjoint slices of a
    /// fixed partials buffer, then folded in index order with the SIMD
    /// combine. Deterministic regardless of worker count or timing —
    /// and, by the admission proof, bitwise equal to the serial fold.
    /// Any worker fault discards the partials and reruns the serial
    /// fold so error surfaces stay canonical.
    fn reduce_vectorized(
        &self,
        rk: &brook_ir::simd::ReduceKernel,
        kernel: &IrKernel,
        input: usize,
    ) -> Result<f32> {
        let data = &self.streams[input].1;
        let n = data.len();
        if n < PARALLEL_THRESHOLD || self.workers == 1 {
            return brook_ir::simd::run_reduce(rk, kernel, data).map_err(cpu::exec_err);
        }
        let mut xs = vec![rk.op.identity(); n];
        let chunk = n.div_ceil(self.workers).div_ceil(brook_ir::lanes::LANES) * brook_ir::lanes::LANES;
        let ranges: Vec<Range<usize>> = (0..self.workers)
            .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
            .filter(|r| !r.is_empty())
            .collect();
        let mut slices: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
        let mut rest: &mut [f32] = &mut xs;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        let ok = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .zip(slices)
                .map(|(range, out)| {
                    let range = range.clone();
                    scope.spawn(move || rk.run_map(data, out, n, range))
                })
                .collect();
            handles
                .into_iter()
                .all(|h| h.join().map(|r| r.is_ok()).unwrap_or(false))
        });
        if !ok {
            // Canonical error surface: the serial fold reproduces the
            // exact element attribution and message.
            return ir_interp::run_reduce(kernel, data).map_err(cpu::exec_err);
        }
        Ok(brook_ir::simd::fold(rk.op, rk.level, &xs))
    }

    /// The worker count this backend fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when a launch with this domain and output set takes the
    /// parallel path (used by tests to pin coverage of both paths).
    fn parallelizable(&self, total: usize, uniform_outputs: bool) -> bool {
        self.workers > 1 && total >= PARALLEL_THRESHOLD && uniform_outputs
    }
}

impl Default for ParallelCpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `launch` over `domain_shape`, fanning contiguous domain chunks
/// out to scoped worker threads. Output buffers are pre-split into
/// per-chunk slices so workers never share mutable state.
fn run_parallel(
    checked: &CheckedProgram,
    kernel: &str,
    bindings: &HashMap<String, CpuBinding<'_>>,
    outputs: &mut [Vec<f32>],
    domain_shape: &[usize],
    workers: usize,
) -> Result<()> {
    let (dx, dy, _) = cpu::domain_extents(domain_shape);
    let total = dx * dy;
    let widths: Vec<usize> = outputs
        .iter()
        .map(|buf| {
            debug_assert!(buf.len().is_multiple_of(total.max(1)));
            buf.len() / total.max(1)
        })
        .collect();
    let chunk = total.div_ceil(workers);
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|w| (w * chunk).min(total)..((w + 1) * chunk).min(total))
        .filter(|r| !r.is_empty())
        .collect();
    // Carve each output buffer into one disjoint slice per chunk.
    let mut per_chunk: Vec<Vec<&mut [f32]>> = ranges.iter().map(|_| Vec::new()).collect();
    for (oi, buf) in outputs.iter_mut().enumerate() {
        let mut rest: &mut [f32] = buf;
        for (ci, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.len() * widths[oi]);
            per_chunk[ci].push(head);
            rest = tail;
        }
    }
    let results: Vec<Result<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(per_chunk)
            .map(|(range, mut outs)| {
                let range = range.clone();
                scope.spawn(move || {
                    cpu::run_kernel_range(checked, kernel, bindings, &mut outs, domain_shape, range)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(BrookError::Usage("parallel CPU worker panicked".into())))
            })
            .collect()
    });
    results.into_iter().collect()
}

/// IR flavour of [`run_parallel`]: the same chunking, with each worker
/// running the flat IR engine over its disjoint range. Bit-exact with
/// the serial IR backend for any worker count, by the same disjointness
/// argument. When the kernel carries a lane plan, each worker executes
/// the lane engine and chunk boundaries are aligned to lane-block
/// multiples, so workers iterate whole register slabs — only the final
/// chunk sees a remainder block.
#[allow(clippy::too_many_arguments)]
fn run_parallel_ir(
    kernel: &IrKernel,
    lane: Option<&brook_ir::lanes::LaneKernel>,
    tier: Option<&brook_ir::tier::TierKernel>,
    bindings: &[ir_interp::Binding<'_>],
    outputs: &mut [Vec<f32>],
    domain_shape: &[usize],
    workers: usize,
) -> Result<()> {
    let (dx, dy, _) = ir_interp::domain_extents(domain_shape);
    let total = dx * dy;
    let widths: Vec<usize> = outputs
        .iter()
        .map(|buf| {
            debug_assert!(buf.len().is_multiple_of(total.max(1)));
            buf.len() / total.max(1)
        })
        .collect();
    let mut chunk = total.div_ceil(workers);
    if lane.is_some() {
        chunk = chunk.div_ceil(brook_ir::lanes::LANES) * brook_ir::lanes::LANES;
    }
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|w| (w * chunk).min(total)..((w + 1) * chunk).min(total))
        .filter(|r| !r.is_empty())
        .collect();
    let mut per_chunk: Vec<Vec<&mut [f32]>> = ranges.iter().map(|_| Vec::new()).collect();
    for (oi, buf) in outputs.iter_mut().enumerate() {
        let mut rest: &mut [f32] = buf;
        for (ci, r) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(r.len() * widths[oi]);
            per_chunk[ci].push(head);
            rest = tail;
        }
    }
    let results: Vec<Result<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .zip(per_chunk)
            .map(|(range, mut outs)| {
                let range = range.clone();
                scope.spawn(move || match (tier, lane) {
                    // The worker's slab frame: allocated once here and
                    // reused across every block in the chunk (`_in`
                    // entry points), instead of rebuilt per dispatch.
                    (Some(tk), Some(lk)) => {
                        let mut slabs = brook_ir::lanes::LaneSlabs::new();
                        brook_ir::tier::run_kernel_range_in(
                            &mut slabs,
                            tk,
                            lk,
                            kernel,
                            bindings,
                            &mut outs,
                            domain_shape,
                            range,
                        )
                        .map_err(cpu::exec_err)
                    }
                    (None, Some(lk)) => {
                        let mut slabs = brook_ir::lanes::LaneSlabs::new();
                        brook_ir::lanes::run_kernel_range_in(
                            &mut slabs,
                            lk,
                            kernel,
                            bindings,
                            &mut outs,
                            domain_shape,
                            range,
                        )
                        .map_err(cpu::exec_err)
                    }
                    _ => ir_interp::run_kernel_range(kernel, bindings, &mut outs, domain_shape, range)
                        .map_err(cpu::exec_err),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(BrookError::Usage("parallel CPU worker panicked".into())))
            })
            .collect()
    });
    results.into_iter().collect()
}

impl BackendExecutor for ParallelCpuBackend {
    fn name(&self) -> &'static str {
        "cpu-parallel"
    }

    fn create_stream(&mut self, desc: StreamDesc) -> Result<usize> {
        cpu::host_create_stream(&mut self.streams, desc)
    }

    fn stream_desc(&self, index: usize) -> &StreamDesc {
        &self.streams[index].0
    }

    fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()> {
        cpu::host_write_stream(&mut self.streams, index, values)
    }

    fn read_stream(&mut self, index: usize) -> Result<Vec<f32>> {
        Ok(self.streams[index].1.clone())
    }

    fn dispatch(&mut self, launch: &KernelLaunch<'_>) -> Result<()> {
        let domain_shape = self.streams[launch.outputs[0].1].0.shape.clone();
        let (dx, dy, _) = cpu::domain_extents(&domain_shape);
        // Chunked output slicing assumes every output spans the whole
        // domain; kernels with shape-mismatched extra outputs (none in
        // the app suite, but expressible) run serially.
        let uniform = launch
            .outputs
            .iter()
            .all(|(_, i)| self.streams[*i].0.shape == domain_shape);
        let workers = self.workers;
        if let Some(kernel) = launch.ir.kernel(launch.kernel) {
            let lane = launch.lanes.kernel(launch.kernel);
            let tier = launch.tiers.kernel(launch.kernel);
            if self.parallelizable(dx * dy, uniform) {
                cpu::dispatch_ir_on_host(&mut self.streams, launch, kernel, |k, bindings, outs, domain| {
                    run_parallel_ir(k, lane, tier, bindings, outs, domain, workers)
                })
            } else {
                cpu::dispatch_ir_on_host(&mut self.streams, launch, kernel, |k, bindings, outs, domain| {
                    cpu::ir_run_full(k, lane, tier, bindings, outs, domain)
                })
            }
        } else if self.parallelizable(dx * dy, uniform) {
            // AST fallback (kernels that could not lower).
            cpu::dispatch_on_host(
                &mut self.streams,
                launch,
                |checked, kernel, bindings, outs, domain| {
                    run_parallel(checked, kernel, bindings, outs, domain, workers)
                },
            )
        } else {
            cpu::dispatch_on_host(&mut self.streams, launch, cpu::run_kernel_shaped)
        }
    }

    fn reduce(
        &mut self,
        checked: &CheckedProgram,
        ir: &brook_ir::IrProgram,
        kernel: &str,
        _op: ReduceOp,
        simd: Option<&brook_ir::simd::ReduceKernel>,
        input: usize,
    ) -> Result<f32> {
        if let Some(k) = ir.kernel(kernel) {
            // Admitted vectorized reduce: the map phase parallelizes
            // across workers over disjoint partial slices, and the
            // combine is deterministic regardless of worker timing —
            // partials land at fixed element indices and the fold walks
            // them in index order (the admission proof makes any order
            // bitwise-equal anyway). Any worker fault discards the
            // partials and reruns the serial fold for the canonical
            // error surface.
            if let Some(rk) = simd {
                return self.reduce_vectorized(rk, k, input);
            }
            // Serial on purpose — see the module docs.
            return ir_interp::run_reduce(k, &self.streams[input].1).map_err(cpu::exec_err);
        }
        cpu::reduce_on_host(&self.streams, checked, kernel, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arg, BrookContext};

    /// Serial and parallel backends must agree bit-for-bit on a domain
    /// large enough to take the parallel path, for every worker count.
    #[test]
    fn parallel_matches_serial_bitwise() {
        let src = "kernel void f(float a<>, float k, out float o<>) {
            o = sin(a) * k + sqrt(abs(a)) - fmod(a, 3.0);
        }";
        let n = 4096; // >= PARALLEL_THRESHOLD
        let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 700.0).collect();
        let mut reference: Option<Vec<f32>> = None;
        for workers in [1usize, 2, 3, 7, 16] {
            let mut ctx = BrookContext::with_backend(
                Box::new(ParallelCpuBackend::with_workers(workers)),
                brook_cert::CertConfig::default(),
            );
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Float(2.5), Arg::Stream(&o)])
                .expect("run");
            let out = ctx.read(&o).expect("read");
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "worker count {workers} changed results"),
            }
        }
        // And the serial backend agrees with all of them.
        let mut ctx = BrookContext::cpu();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Float(2.5), Arg::Stream(&o)])
            .expect("run");
        assert_eq!(ctx.read(&o).expect("read"), reference.expect("reference"));
    }

    /// 2D domains chunk across rows mid-row too; indexof must stay
    /// consistent with the serial interpreter.
    #[test]
    fn parallel_indexof_2d_matches_serial() {
        let src = "kernel void idx(float a<>, out float o<>) {
            float2 p = indexof(o);
            o = p.y * 1000.0 + p.x + a * 0.0;
        }";
        let (rows, cols) = (48usize, 32usize);
        let data = vec![0.0f32; rows * cols];
        let mut outs = Vec::new();
        for make in [
            BrookContext::cpu as fn() -> BrookContext,
            BrookContext::cpu_parallel,
        ] {
            let mut ctx = make();
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream(&[rows, cols]).expect("a");
            let o = ctx.stream(&[rows, cols]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "idx", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            outs.push(ctx.read(&o).expect("read"));
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0][cols + 1], 1001.0, "row 1, col 1");
    }

    /// Multi-output kernels split correctly: each output buffer is carved
    /// into per-chunk slices independently.
    #[test]
    fn parallel_multi_output_matches_serial() {
        let src = "kernel void two(float a<>, out float x<>, out float y<>) {
            x = a * 2.0; y = a + 1.0;
        }";
        let n = 2000;
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let mut all = Vec::new();
        for make in [
            BrookContext::cpu as fn() -> BrookContext,
            BrookContext::cpu_parallel,
        ] {
            let mut ctx = make();
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream(&[n]).expect("a");
            let x = ctx.stream(&[n]).expect("x");
            let y = ctx.stream(&[n]).expect("y");
            ctx.write(&a, &data).expect("write");
            ctx.run(
                &module,
                "two",
                &[Arg::Stream(&a), Arg::Stream(&x), Arg::Stream(&y)],
            )
            .expect("run");
            all.push((ctx.read(&x).expect("x"), ctx.read(&y).expect("y")));
        }
        assert_eq!(all[0], all[1]);
    }

    /// Gathers read the full input stream from every chunk.
    #[test]
    fn parallel_gather_matches_serial() {
        let src = "kernel void rev(float t[], float a<>, out float o<>) {
            float2 p = indexof(o);
            o = t[2047.0 - p.x] + a * 0.0;
        }";
        let n = 2048;
        let table: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let zeros = vec![0.0f32; n];
        let mut outs = Vec::new();
        for make in [
            BrookContext::cpu as fn() -> BrookContext,
            BrookContext::cpu_parallel,
        ] {
            let mut ctx = make();
            let module = ctx.compile(src).expect("compile");
            let t = ctx.stream(&[n]).expect("t");
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            ctx.write(&t, &table).expect("write t");
            ctx.write(&a, &zeros).expect("write a");
            ctx.run(
                &module,
                "rev",
                &[Arg::Stream(&t), Arg::Stream(&a), Arg::Stream(&o)],
            )
            .expect("run");
            outs.push(ctx.read(&o).expect("read"));
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0][0], 2047.0);
    }

    /// Reductions are bit-identical to the serial backend (serial fold by
    /// design).
    #[test]
    fn parallel_reduce_is_bit_identical() {
        let src = "reduce void sum(float a<>, reduce float r<>) { r += a; }";
        let n = 3000;
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.123).sin()).collect();
        let mut totals = Vec::new();
        for make in [
            BrookContext::cpu as fn() -> BrookContext,
            BrookContext::cpu_parallel,
        ] {
            let mut ctx = make();
            let module = ctx.compile(src).expect("compile");
            let s = ctx.stream(&[n]).expect("s");
            ctx.write(&s, &data).expect("write");
            totals.push(ctx.reduce(&module, "sum", &s).expect("reduce"));
        }
        assert_eq!(totals[0].to_bits(), totals[1].to_bits());
    }

    /// A zero-length domain produces zero chunks: every range is empty
    /// and filtered out, no worker spawns, and the call succeeds with
    /// untouched (empty) outputs. The public API rejects zero-sized
    /// streams, so this pins the internal chunking edge directly.
    #[test]
    fn zero_length_domain_spawns_no_workers() {
        let checked =
            brook_lang::parse_and_check("kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }")
                .expect("check");
        let shape: Vec<usize> = vec![0];
        let bindings: HashMap<String, CpuBinding<'_>> = [
            (
                "a".to_string(),
                CpuBinding::Elem {
                    data: &[],
                    shape: &shape,
                    width: 1,
                },
            ),
            ("o".to_string(), CpuBinding::Out(0)),
        ]
        .into_iter()
        .collect();
        let mut outputs = vec![Vec::<f32>::new()];
        for workers in [1usize, 4, 16] {
            run_parallel(&checked, "dbl", &bindings, &mut outputs, &shape, workers)
                .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            assert!(outputs[0].is_empty());
        }
    }

    /// More workers than elements: trailing chunks are empty and must be
    /// filtered, and the populated chunks still tile the domain exactly.
    #[test]
    fn more_workers_than_elements_matches_serial() {
        let src = "kernel void f(float a<>, out float o<>) { o = a * 3.0 + 1.0; }";
        // 300 >= PARALLEL_THRESHOLD so the fan-out path runs; 17 workers
        // over 300 elements leaves the last chunk short.
        let n = 300;
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut serial_ctx = BrookContext::cpu();
        let module = serial_ctx.compile(src).expect("compile");
        let a = serial_ctx.stream(&[n]).expect("a");
        let o = serial_ctx.stream(&[n]).expect("o");
        serial_ctx.write(&a, &data).expect("write");
        serial_ctx
            .run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect("run");
        let reference = serial_ctx.read(&o).expect("read");

        // 17 > 16 = MAX_WORKERS is reachable through with_workers, and
        // 301 workers exceed the element count outright.
        for workers in [17usize, 301] {
            let mut ctx = BrookContext::with_backend(
                Box::new(ParallelCpuBackend::with_workers(workers)),
                brook_cert::CertConfig::default(),
            );
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            assert_eq!(ctx.read(&o).expect("read"), reference, "workers={workers}");
        }
    }

    /// The serial/parallel decision boundary: one element below
    /// `PARALLEL_THRESHOLD` takes the serial path, at and above it the
    /// fan-out path — all three bit-identical to the serial backend.
    #[test]
    fn threshold_boundary_is_bit_exact_on_both_paths() {
        let src = "kernel void f(float a<>, out float o<>) { o = sin(a) + a * 0.5; }";
        for n in [PARALLEL_THRESHOLD - 1, PARALLEL_THRESHOLD, PARALLEL_THRESHOLD + 1] {
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.11 - 9.0).collect();
            let mut serial_ctx = BrookContext::cpu();
            let module = serial_ctx.compile(src).expect("compile");
            let a = serial_ctx.stream(&[n]).expect("a");
            let o = serial_ctx.stream(&[n]).expect("o");
            serial_ctx.write(&a, &data).expect("write");
            serial_ctx
                .run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            let reference = serial_ctx.read(&o).expect("read");

            let backend = ParallelCpuBackend::with_workers(4);
            assert_eq!(
                backend.parallelizable(n, true),
                n >= PARALLEL_THRESHOLD,
                "path selection at n={n}"
            );
            let mut ctx = BrookContext::with_backend(Box::new(backend), brook_cert::CertConfig::default());
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            let out = ctx.read(&o).expect("read");
            assert_eq!(out.len(), reference.len());
            for (i, (r, p)) in reference.iter().zip(&out).enumerate() {
                assert_eq!(r.to_bits(), p.to_bits(), "n={n} element {i}");
            }
        }
    }

    /// Errors inside worker chunks surface as errors, not hangs or
    /// poisoned state.
    #[test]
    fn worker_errors_propagate() {
        // An unbounded loop trips the per-element iteration budget inside
        // the workers; certification is disabled to let it compile.
        let mut ctx = BrookContext::cpu_parallel();
        ctx.enforce_certification = false;
        let module = ctx
            .compile("kernel void spin(float a<>, out float o<>) { float s = a + 1.0; while (s > 0.0) { s += 1.0; } o = s; }")
            .expect("compile (uncertified)");
        let n = 1024;
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        ctx.write(&a, &vec![1.0; n]).expect("write");
        let err = ctx
            .run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect_err("must fail");
        assert!(
            err.to_string().contains("iteration budget"),
            "unexpected error: {err}"
        );
        // The context stays usable after the failed dispatch.
        assert_eq!(ctx.read(&a).expect("read"), vec![1.0; n]);
    }

    /// The Tier-2 closure chain runs inside every worker with its own
    /// reused slab frame; a degenerate single worker and an
    /// over-subscribed seventeen must stay bit-exact (branchy, loopy
    /// kernel so divergence crosses chunk boundaries).
    #[test]
    fn tier_workers_one_and_seventeen_bit_exact() {
        let src = "kernel void f(float a<>, out float o<>) {
            float s = a * 0.5 + 0.25;
            int i;
            for (i = 0; i < 24; i++) {
                if (s < 10.0) { s = s * 1.5 + 1.0; } else { s = s - 7.75; }
            }
            o = s * 2.0 + a;
        }";
        let n = 4096; // >= PARALLEL_THRESHOLD
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.83) % 37.0).collect();
        let mut results = Vec::new();
        for workers in [1usize, 17] {
            let mut ctx = BrookContext::with_backend(
                Box::new(ParallelCpuBackend::with_workers(workers)),
                brook_cert::CertConfig::default(),
            );
            let module = ctx.compile(src).expect("compile");
            assert!(
                module
                    .report
                    .tier_plans
                    .iter()
                    .any(|t| t.kernel == "f" && t.compiled),
                "kernel must be tier-admitted for this test to cover Tier-2"
            );
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            results.push(ctx.read(&o).expect("read"));
        }
        let bits = |v: &Vec<f32>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&results[0]),
            bits(&results[1]),
            "worker count changed results"
        );
    }
}
